//! Drift test for the "who draws what" substream table.
//!
//! `crates/core/src/substreams.rs` documents every RNG substream in a
//! rustdoc table and re-exports the full set as `ALL`. This test derives
//! the real consumer map from the semantic index — which names are bound
//! to which tags, and where they draw — and cross-checks three ways:
//!
//! 1. the rustdoc table lists exactly the declared constants (no stale
//!    or missing rows);
//! 2. every *extension* tag (the ones `draw-guardedness` tracks in
//!    `lint.toml`) is bound to at least one stream field and actually
//!    drawn from — a tracked tag nobody draws means the table or the
//!    config is stale;
//! 3. every remaining tag is at least mentioned in `dqa-core` (the
//!    workload streams are consumed via `substreams::per_site` wiring).

use std::collections::BTreeSet;
use std::path::Path;

use dqa_lint::engine::{self, SourceFile};
use dqa_lint::graph::Index;

fn real_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

fn registry_text() -> String {
    std::fs::read_to_string(real_root().join("crates/core/src/substreams.rs"))
        .expect("substreams.rs exists")
}

/// Names from the rustdoc table rows: `//! | [`NAME`] | tag | … |`.
fn doc_table_names(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("//! | [`")?;
            let (name, _) = rest.split_once("`]")?;
            Some(name.to_string())
        })
        .collect()
}

/// Names from `pub const NAME: u64 = …;` declarations.
fn declared_names(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| {
            let rest = l.trim().strip_prefix("pub const ")?;
            let (name, tail) = rest.split_once(':')?;
            tail.trim_start()
                .starts_with("u64")
                .then(|| name.to_string())
        })
        .collect()
}

/// Tags tracked by `draw-guardedness` in the real `lint.toml`.
fn tracked_tags() -> Vec<String> {
    let text = std::fs::read_to_string(real_root().join("lint.toml")).expect("lint.toml");
    let config = dqa_lint::config::parse(&text).expect("lint.toml parses");
    let rule = config
        .rules
        .get("draw-guardedness")
        .expect("draw-guardedness configured");
    rule.options
        .keys()
        .filter_map(|k| k.strip_prefix("guard-"))
        .map(str::to_string)
        .collect()
}

#[test]
fn doc_table_matches_declared_constants() {
    let text = registry_text();
    let table = doc_table_names(&text);
    let declared = declared_names(&text);
    assert!(!table.is_empty() && !declared.is_empty());
    assert_eq!(
        table, declared,
        "the rustdoc 'who draws what' table drifted from the declared constants"
    );
}

#[test]
fn every_tracked_tag_is_bound_and_drawn() {
    let ws = engine::load_workspace(real_root()).expect("workspace loads");
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.crate_name == "dqa-core" && !f.kind.is_testish())
        .collect();
    let idx = Index::build(files, false);

    let tracked = tracked_tags();
    assert!(tracked.len() >= 10, "tracked extension tags: {tracked:?}");
    let bindings = idx.stream_bindings(&tracked);
    let drawn: BTreeSet<&str> = idx
        .draw_sites(&bindings)
        .iter()
        .map(|s| {
            bindings
                .get(&s.name)
                .and_then(|tags| tags.iter().find(|t| *t == &s.tag))
                .expect("site tag comes from bindings")
                .as_str()
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect();
    for tag in &tracked {
        assert!(
            bindings.values().any(|tags| tags.contains(tag)),
            "extension tag {tag} is tracked by draw-guardedness but bound to no stream \
             field — lint.toml or the registry is stale (bindings: {bindings:?})"
        );
        assert!(
            drawn.contains(tag.as_str()),
            "extension tag {tag} is bound but never drawn from in dqa-core"
        );
    }
}

#[test]
fn every_other_tag_is_at_least_consumed_somewhere() {
    let text = registry_text();
    let declared = declared_names(&text);
    let tracked: BTreeSet<String> = tracked_tags().into_iter().collect();
    let ws = engine::load_workspace(real_root()).expect("workspace loads");
    // The workload streams are wired via `substreams::<TAG>` mentions in
    // any workspace crate (the CLI owns POLICY_RANDOM wiring).
    for tag in declared.iter().filter(|t| !tracked.contains(*t)) {
        let mentioned = ws.files.iter().any(|f| {
            !std::ptr::eq(f.text.as_str(), text.as_str())
                && !f.rel_path.ends_with("substreams.rs")
                && f.code_tokens().any(|tok| tok.text(&f.text) == *tag)
        });
        assert!(
            mentioned,
            "substream tag {tag} is declared in the registry but consumed nowhere"
        );
    }
}
