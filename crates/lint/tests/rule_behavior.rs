//! End-to-end rule behavior on small synthetic workspaces: each rule
//! catches its seeded violation with a correctly-spanned diagnostic, and
//! the suppression machinery behaves as specified.

use std::fs;
use std::path::{Path, PathBuf};

use dqa_lint::config::{self, Config};
use dqa_lint::diagnostics::Finding;
use dqa_lint::engine;

/// A throwaway workspace under the system temp dir.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(name: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("dqa-lint-test-{}-{name}", std::process::id()));
        if root.exists() {
            fs::remove_dir_all(&root).expect("clear stale temp workspace");
        }
        fs::create_dir_all(&root).expect("create temp workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write root manifest");
        TempWorkspace { root }
    }

    fn add_crate(&self, name: &str) -> &Self {
        let dir = self.root.join("crates").join(name);
        fs::create_dir_all(dir.join("src")).expect("create crate dirs");
        fs::write(
            dir.join("Cargo.toml"),
            format!("[package]\nname = \"{name}\"\n"),
        )
        .expect("write crate manifest");
        self
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("create parent dirs");
        fs::write(path, content).expect("write source file");
        self
    }

    /// Runs the engine with `config_text`, with every rule the text does
    /// not mention explicitly disabled — so each test sees only the rule
    /// it seeds a violation for. (In a real workspace, unconfigured
    /// rules run everywhere by default; the meta suppression-hygiene
    /// pass is not a rule and always runs.)
    fn run(&self, config_text: &str) -> Vec<Finding> {
        let mut config: Config = config::parse(config_text).expect("test config parses");
        for rule in dqa_lint::rules::all() {
            config
                .rules
                .entry(rule.name().to_string())
                .or_insert_with(|| dqa_lint::config::RuleConfig {
                    enabled: Some(false),
                    ..Default::default()
                });
        }
        engine::run(&self.root, &config).expect("engine runs")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn substream_literal_is_flagged_with_span() {
    let ws = TempWorkspace::new("substream-literal");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        "fn f(root: &R) {\n    let s = root.substream(7);\n}\n",
    );
    let findings = ws.run(
        "[rules.substream-registry]\ncrates = [\"app\"]\nregistry = \"crates/app/src/tags.rs\"\n",
    );
    // The missing registry is also reported; the literal finding is the
    // one with a span.
    let lit = findings
        .iter()
        .find(|f| f.message.contains("numeric literal"))
        .expect("literal finding");
    assert_eq!(lit.rule, "substream-registry");
    assert_eq!(lit.path, Path::new("crates/app/src/lib.rs"));
    assert_eq!((lit.line, lit.col), (2, 28));
    assert!(lit
        .snippet
        .as_deref()
        .is_some_and(|s| s.contains("substream(7)")));
}

#[test]
fn variable_substream_tag_is_flagged_outside_the_registry() {
    let ws = TempWorkspace::new("substream-variable");
    ws.add_crate("app")
        .write(
            "crates/app/src/lib.rs",
            "fn f(root: &R, site: u64) {\n    let s = root.substream(TAG).substream(site);\n}\n",
        )
        .write(
            "crates/app/src/tags.rs",
            "pub const TAG: u64 = 1;\n\
             pub fn per_site(root: &R, tag: u64, site: u64) -> R {\n\
                 root.substream(tag).substream(site)\n\
             }\n",
        );
    let findings = ws.run(
        "[rules.substream-registry]\ncrates = [\"app\"]\nregistry = \"crates/app/src/tags.rs\"\n",
    );
    // `substream(TAG)` passes (registered constant); `substream(site)`
    // is a hand-rolled per-site derivation and must be flagged — but
    // only outside the registry file, whose per_site helper is the one
    // place variable tags are allowed.
    assert_eq!(rules_of(&findings), ["substream-registry"]);
    assert!(findings[0].message.contains("`site`"));
    assert_eq!(findings[0].path, Path::new("crates/app/src/lib.rs"));
    assert!(findings[0]
        .help
        .as_deref()
        .is_some_and(|h| h.contains("per_site")));
}

#[test]
fn duplicate_registry_tag_is_flagged() {
    let ws = TempWorkspace::new("dup-tag");
    ws.add_crate("app").write(
        "crates/app/src/tags.rs",
        "pub const A: u64 = 3;\npub const B: u64 = 0x3;\n",
    );
    let findings = ws.run(
        "[rules.substream-registry]\ncrates = [\"app\"]\nregistry = \"crates/app/src/tags.rs\"\n",
    );
    assert_eq!(rules_of(&findings), ["substream-registry"]);
    assert!(findings[0].message.contains("registered twice"));
    assert!(findings[0].message.contains('A') && findings[0].message.contains('B'));
    assert_eq!(findings[0].line, 2);
}

#[test]
fn hash_container_flagged_outside_tests_only() {
    let ws = TempWorkspace::new("hash");
    ws.add_crate("model").write(
        "crates/model/src/lib.rs",
        "use std::collections::HashMap;\n\
         pub fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             use std::collections::HashSet;\n\
             #[test]\n\
             fn t() { let _ = HashSet::<u32>::new(); }\n\
         }\n",
    );
    let findings = ws.run("[rules.no-hash-iteration]\ncrates = [\"model\"]\n");
    // Three non-test mentions (use, type, constructor), zero from the
    // #[cfg(test)] module.
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().all(|f| f.rule == "no-hash-iteration"));
    assert!(findings.iter().all(|f| f.line <= 2));
}

#[test]
fn wall_clock_flagged() {
    let ws = TempWorkspace::new("wall-clock");
    ws.add_crate("model").write(
        "crates/model/src/lib.rs",
        "use std::time::Instant;\npub fn f() -> Instant { Instant::now() }\n",
    );
    let findings = ws.run("[rules.no-wall-clock]\ncrates = [\"model\"]\n");
    assert_eq!(findings.len(), 3);
    assert!(findings.iter().all(|f| f.rule == "no-wall-clock"));
}

#[test]
fn float_eq_flagged_on_either_side_and_casts() {
    let ws = TempWorkspace::new("float-eq");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "pub fn f(x: f64, n: u32) -> bool {\n\
             let a = x == 0.5;\n\
             let b = 1.0 != x;\n\
             let c = x == n as f64;\n\
             let ok = n == 3;\n\
             a && b && c && ok\n\
         }\n",
    );
    let findings = ws.run("[rules.no-float-eq]\ncrates = [\"m\"]\n");
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        [2, 3, 4]
    );
}

#[test]
fn int_comparisons_and_doc_fences_do_not_trip_rules() {
    let ws = TempWorkspace::new("clean");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         //! ```\n\
         //! let x = map.get(&k).unwrap();\n\
         //! let h: HashMap<u8, u8> = HashMap::new();\n\
         //! let t = Instant::now();\n\
         //! ```\n\
         /// Returns `true` when `a == 0.0` — doc prose, not code.\n\
         pub fn f(a: u32, b: u32) -> bool { a == b }\n\
         pub fn g() { let s = \"Instant::now() .unwrap() HashMap 0.5 == x\"; let _ = s; }\n",
    );
    let findings = ws.run(
        "[rules.no-hash-iteration]\ncrates = [\"m\"]\n\
         [rules.no-wall-clock]\ncrates = [\"m\"]\n\
         [rules.no-float-eq]\ncrates = [\"m\"]\n\
         [rules.unwrap-budget]\ncrates = [\"m\"]\n\
         [rules.forbid-unsafe-header]\ncrates = [\"m\"]\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn missing_forbid_unsafe_header_flagged() {
    let ws = TempWorkspace::new("no-forbid");
    ws.add_crate("m")
        .write("crates/m/src/lib.rs", "pub fn f() {}\n");
    let findings = ws.run("[rules.forbid-unsafe-header]\ncrates = [\"m\"]\n");
    assert_eq!(rules_of(&findings), ["forbid-unsafe-header"]);
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn unwrap_budget_ratchets() {
    let ws = TempWorkspace::new("budget");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"set\") }\n",
    );
    // Budget 2: within budget, nothing reported.
    let ok =
        ws.run("[rules.unwrap-budget]\ncrates = [\"m\"]\n[rules.unwrap-budget.budgets]\nm = 2\n");
    assert!(ok.is_empty(), "{ok:?}");
    // Budget 1: over budget — both sites plus the summary are reported.
    let over =
        ws.run("[rules.unwrap-budget]\ncrates = [\"m\"]\n[rules.unwrap-budget.budgets]\nm = 1\n");
    assert_eq!(over.len(), 3, "{over:?}");
    assert!(over.iter().any(|f| f.message.contains("budget is 1")));
    // No budget configured means zero.
    let zero = ws.run("[rules.unwrap-budget]\ncrates = [\"m\"]\n");
    assert_eq!(zero.len(), 3, "{zero:?}");
}

#[test]
fn unwrap_in_test_module_and_test_dirs_is_free() {
    let ws = TempWorkspace::new("budget-tests");
    ws.add_crate("m")
        .write(
            "crates/m/src/lib.rs",
            "pub fn f() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { Some(1).unwrap(); }\n\
             }\n",
        )
        .write(
            "crates/m/tests/integration.rs",
            "#[test]\nfn t() { Some(1).unwrap(); }\n",
        );
    let findings = ws.run("[rules.unwrap-budget]\ncrates = [\"m\"]\n");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn justified_suppression_silences_finding() {
    let ws = TempWorkspace::new("suppress-ok");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "pub fn f(x: f64) -> bool {\n\
             // dqa-lint: allow(no-float-eq) -- exact sentinel, never computed\n\
             x == 0.0\n\
         }\n\
         pub fn g(x: f64) -> bool {\n\
             x != 1.0 // dqa-lint: allow(no-float-eq) -- trailing form, also sound\n\
         }\n",
    );
    let findings = ws.run("[rules.no-float-eq]\ncrates = [\"m\"]\n");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unjustified_suppression_is_itself_a_finding_and_does_not_silence() {
    let ws = TempWorkspace::new("suppress-bad");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "pub fn f(x: f64) -> bool {\n\
             // dqa-lint: allow(no-float-eq)\n\
             x == 0.0\n\
         }\n",
    );
    let findings = ws.run("[rules.no-float-eq]\ncrates = [\"m\"]\n");
    let rules = rules_of(&findings);
    assert!(rules.contains(&"suppression-hygiene"), "{findings:?}");
    assert!(rules.contains(&"no-float-eq"), "{findings:?}");
}

#[test]
fn unknown_rule_in_allow_is_flagged() {
    let ws = TempWorkspace::new("suppress-typo");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "// dqa-lint: allow(no-flaot-eq) -- typo'd rule name\npub fn f() {}\n",
    );
    let findings = ws.run("");
    assert_eq!(rules_of(&findings), ["suppression-hygiene"]);
    assert!(findings[0].message.contains("no-flaot-eq"));
}

#[test]
fn suppression_only_covers_its_rule() {
    let ws = TempWorkspace::new("suppress-wrong-rule");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "pub fn f(x: f64) -> bool {\n\
             // dqa-lint: allow(no-wall-clock) -- wrong rule for this line\n\
             x == 0.0\n\
         }\n",
    );
    let findings =
        ws.run("[rules.no-float-eq]\ncrates = [\"m\"]\n[rules.no-wall-clock]\ncrates = [\"m\"]\n");
    assert!(rules_of(&findings).contains(&"no-float-eq"), "{findings:?}");
}

#[test]
fn crate_scoping_and_allow_paths_respected() {
    let ws = TempWorkspace::new("scoping");
    ws.add_crate("in-scope")
        .add_crate("out-of-scope")
        .write(
            "crates/in-scope/src/lib.rs",
            "use std::collections::HashMap;\n",
        )
        .write(
            "crates/in-scope/src/generated/table.rs",
            "use std::collections::HashMap;\n",
        )
        .write(
            "crates/out-of-scope/src/lib.rs",
            "use std::collections::HashMap;\n",
        );
    let findings = ws.run(
        "[rules.no-hash-iteration]\ncrates = [\"in-scope\"]\nallow-paths = [\"src/generated/\"]\n",
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].path, Path::new("crates/in-scope/src/lib.rs"));
}

#[test]
fn disabled_rule_reports_nothing() {
    let ws = TempWorkspace::new("disabled");
    ws.add_crate("m")
        .write("crates/m/src/lib.rs", "use std::time::Instant;\n");
    let findings = ws.run("[rules.no-wall-clock]\ncrates = [\"m\"]\nenabled = false\n");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn findings_are_sorted_and_deterministic() {
    let ws = TempWorkspace::new("sorted");
    ws.add_crate("m").write(
        "crates/m/src/lib.rs",
        "use std::collections::HashMap;\nuse std::time::Instant;\nuse std::collections::HashSet;\n",
    );
    let cfg =
        "[rules.no-hash-iteration]\ncrates = [\"m\"]\n[rules.no-wall-clock]\ncrates = [\"m\"]\n";
    let a = ws.run(cfg);
    let b = ws.run(cfg);
    let render = |fs: &[Finding]| fs.iter().map(|f| f.render()).collect::<Vec<_>>();
    assert_eq!(render(&a), render(&b));
    let lines: Vec<usize> = a.iter().map(|f| f.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}

// ---------------------------------------------------------------------
// draw-guardedness: flow-aware CRN guardedness on synthetic workspaces.

const GUARD_CFG: &str =
    "[rules.draw-guardedness]\ncrates = [\"app\"]\nguard-DEADLINE = \"deadlines : is_active\"\n";

/// A struct binding `rng_deadline` to the DEADLINE tag, plus `body`
/// inside the impl.
fn deadline_crate(body: &str) -> String {
    format!(
        "struct Lp {{ rng_deadline: R }}\n\
         impl Lp {{\n\
             fn new(root: &R) -> Self {{\n\
                 Lp {{ rng_deadline: root.substream(DEADLINE) }}\n\
             }}\n\
         {body}\n\
         }}\n"
    )
}

#[test]
fn guarded_draw_in_same_fn_is_clean() {
    let ws = TempWorkspace::new("guard-local");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        &deadline_crate(
            "fn arm(&mut self, params: &P) -> f64 {\n\
                 if params.deadlines.is_some_and(|d| d.is_active()) {\n\
                     self.rng_deadline.next_f64()\n\
                 } else { 0.0 }\n\
             }",
        ),
    );
    assert_eq!(rules_of(&ws.run(GUARD_CFG)), Vec::<&str>::new());
}

#[test]
fn guard_at_every_call_site_is_clean() {
    let ws = TempWorkspace::new("guard-caller");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        &deadline_crate(
            "fn draw(&mut self) -> f64 { self.rng_deadline.next_f64() }\n\
             fn caller(&mut self, params: &P) {\n\
                 if params.deadlines.is_some_and(|d| d.is_active()) {\n\
                     let _ = self.draw();\n\
                 }\n\
             }",
        ),
    );
    assert_eq!(rules_of(&ws.run(GUARD_CFG)), Vec::<&str>::new());
}

#[test]
fn unguarded_draw_is_flagged() {
    let ws = TempWorkspace::new("guard-missing");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        &deadline_crate("fn arm(&mut self) -> f64 { self.rng_deadline.next_f64() }"),
    );
    let findings = ws.run(GUARD_CFG);
    assert_eq!(rules_of(&findings), ["draw-guardedness"]);
    assert!(findings[0].message.contains("DEADLINE"), "{findings:?}");
    assert!(findings[0].message.contains("rng_deadline"), "{findings:?}");
}

#[test]
fn one_unguarded_call_site_among_guarded_ones_is_flagged() {
    // Caller-level guarding must hold at EVERY call site.
    let ws = TempWorkspace::new("guard-partial");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        &deadline_crate(
            "fn draw(&mut self) -> f64 { self.rng_deadline.next_f64() }\n\
             fn guarded(&mut self, params: &P) {\n\
                 if params.deadlines.is_some_and(|d| d.is_active()) {\n\
                     let _ = self.draw();\n\
                 }\n\
             }\n\
             fn unguarded(&mut self) { let _ = self.draw(); }",
        ),
    );
    assert_eq!(rules_of(&ws.run(GUARD_CFG)), ["draw-guardedness"]);
}

#[test]
fn justified_allow_silences_draw_finding() {
    let ws = TempWorkspace::new("guard-allowed");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        &deadline_crate(
            "fn arm(&mut self) -> f64 {\n\
                 // dqa-lint: allow(draw-guardedness) -- warmup calibration draw, spec-independent\n\
                 self.rng_deadline.next_f64()\n\
             }",
        ),
    );
    assert_eq!(rules_of(&ws.run(GUARD_CFG)), Vec::<&str>::new());
}

#[test]
fn unjustified_allow_does_not_silence_draw_finding() {
    let ws = TempWorkspace::new("guard-unjustified");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        &deadline_crate(
            "fn arm(&mut self) -> f64 {\n\
                 // dqa-lint: allow(draw-guardedness)\n\
                 self.rng_deadline.next_f64()\n\
             }",
        ),
    );
    let findings = ws.run(GUARD_CFG);
    let rules = rules_of(&findings);
    assert!(rules.contains(&"draw-guardedness"), "{rules:?}");
    assert!(rules.contains(&"suppression-hygiene"), "{rules:?}");
}

// ---------------------------------------------------------------------
// shard-isolation: reachability-scoped field-access audit.

#[test]
fn reachable_cross_site_access_is_flagged_but_unreachable_is_not() {
    let ws = TempWorkspace::new("shard-reach");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        "struct Lp { deferred: Vec<u32> }\n\
         impl Lp {\n\
             fn handle(&mut self) { self.push_it(); }\n\
             fn push_it(&mut self) { self.deferred.push(1); }\n\
         }\n\
         struct Db { deferred: Vec<u32> }\n\
         impl Db {\n\
             fn not_reachable(&mut self) { self.deferred.push(2); }\n\
         }\n",
    );
    let findings = ws.run(
        "[rules.shard-isolation]\ncrates = [\"app\"]\nroots = \"Lp::handle\"\nfields = \"deferred\"\n",
    );
    assert_eq!(rules_of(&findings), ["shard-isolation"]);
    assert!(findings[0].message.contains("push_it"), "{findings:?}");
}

#[test]
fn shard_allow_requires_justification_and_claims_gate() {
    let cfg = "[rules.shard-isolation]\ncrates = [\"app\"]\nroots = \"Lp::handle\"\n\
               fields = \"deferred\"\ngates = \"Deadlines\"\n";
    // Justified with the gate named: access silenced, gate claimed.
    let ws = TempWorkspace::new("shard-allowed");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        "enum ShardGate { Deadlines }\n\
         struct Lp { deferred: Vec<u32> }\n\
         impl Lp {\n\
             fn handle(&mut self) {\n\
                 // dqa-lint: allow(shard-isolation) -- ShardGate::Deadlines: drained at the barrier\n\
                 self.deferred.push(1);\n\
             }\n\
         }\n",
    );
    assert_eq!(rules_of(&ws.run(cfg)), Vec::<&str>::new());
}

#[test]
fn unclaimed_gate_is_a_stale_refusal_finding() {
    let cfg = "[rules.shard-isolation]\ncrates = [\"app\"]\nroots = \"Lp::handle\"\n\
               fields = \"deferred\"\ngates = \"Deadlines\"\n";
    let ws = TempWorkspace::new("shard-stale-gate");
    ws.add_crate("app").write(
        "crates/app/src/lib.rs",
        "enum ShardGate { Deadlines }\n\
         struct Lp { deferred: Vec<u32> }\n\
         impl Lp {\n\
             fn handle(&mut self) {}\n\
         }\n",
    );
    let findings = ws.run(cfg);
    assert_eq!(rules_of(&findings), ["shard-isolation"]);
    assert!(
        findings[0].message.contains("ShardGate::Deadlines"),
        "{findings:?}"
    );
    assert!(findings[0].message.contains("no justified"), "{findings:?}");
}
