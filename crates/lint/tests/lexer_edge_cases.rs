//! Lexer edge cases: the constructs that break substring scanners and
//! that the rules rely on the lexer to classify correctly.

use dqa_lint::lexer::{lex, TokenKind};

fn texts(src: &str) -> Vec<String> {
    lex(src).iter().map(|t| t.text(src).to_string()).collect()
}

fn kind_of(src: &str, needle: &str) -> TokenKind {
    let toks = lex(src);
    toks.iter()
        .find(|t| t.text(src) == needle)
        .unwrap_or_else(|| panic!("token `{needle}` not found in {src:?}"))
        .kind
}

#[test]
fn raw_strings_swallow_their_contents() {
    // A substring scanner would see `unwrap()` and a fake `"` boundary.
    let src = r####"let x = r#"contains .unwrap() and a " quote"#; x.len()"####;
    let toks = lex(src);
    let raw = toks
        .iter()
        .find(|t| t.kind == TokenKind::RawStr)
        .expect("raw string token");
    assert_eq!(
        raw.text(src),
        r####"r#"contains .unwrap() and a " quote"#"####
    );
    // Nothing inside the raw string leaks out as an identifier.
    assert!(!texts(src).iter().any(|t| t == "unwrap"));
}

#[test]
fn raw_strings_with_more_hashes() {
    let src = r#####"r##"inner "# still inside"## + 1"#####;
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::RawStr);
    assert_eq!(toks[0].text(src), r#####"r##"inner "# still inside"##"#####);
    assert_eq!(toks[1].text(src), "+");
}

#[test]
fn byte_and_raw_byte_strings() {
    let src = r###"b"bytes" br#"raw bytes"# b'x'"###;
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::Str);
    assert_eq!(toks[1].kind, TokenKind::RawStr);
    assert_eq!(toks[2].kind, TokenKind::Char);
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner */ still comment */ code";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::BlockComment { doc: false });
    assert_eq!(toks[0].text(src), "/* outer /* inner */ still comment */");
    assert_eq!(toks[1].text(src), "code");
}

#[test]
fn lifetime_vs_char_literal() {
    // `'a` in generics is a lifetime; `'a'` is a char.
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert_eq!(chars, ["'a'"]);
}

#[test]
fn escaped_char_literals() {
    assert_eq!(kind_of(r"let c = '\n';", r"'\n'"), TokenKind::Char);
    assert_eq!(kind_of(r"let c = '\'';", r"'\''"), TokenKind::Char);
    assert_eq!(
        kind_of(r"let c = '\u{1F600}';", r"'\u{1F600}'"),
        TokenKind::Char
    );
    // `'_` is a lifetime (the placeholder), not an unterminated char.
    assert_eq!(kind_of("fn f(x: &'_ str) {}", "'_"), TokenKind::Lifetime);
}

#[test]
fn static_lifetime_is_not_a_char() {
    assert_eq!(kind_of("&'static str", "'static"), TokenKind::Lifetime);
}

#[test]
fn doc_comments_are_comments_even_with_code_fences() {
    let src = "\
/// Example:
///
/// ```
/// let x = map.get(&k).unwrap();
/// ```
fn real() {}
";
    let toks = lex(src);
    // Every `unwrap` mention is inside a doc-comment token.
    for t in toks.iter().filter(|t| t.text(src).contains("unwrap")) {
        assert_eq!(t.kind, TokenKind::LineComment { doc: true });
    }
    // And the only code identifiers are the function item.
    let idents: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(idents, ["fn", "real"]);
}

#[test]
fn block_doc_comments_classified() {
    let src = "/** outer doc */ /*! inner doc */ /* plain */ x";
    let kinds: Vec<TokenKind> = lex(src).iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        [
            TokenKind::BlockComment { doc: true },
            TokenKind::BlockComment { doc: true },
            TokenKind::BlockComment { doc: false },
            TokenKind::Ident,
        ]
    );
}

#[test]
fn numeric_literals() {
    assert_eq!(kind_of("x(0xD1CE)", "0xD1CE"), TokenKind::Int);
    assert_eq!(kind_of("x(0b1010_1010u8)", "0b1010_1010u8"), TokenKind::Int);
    assert_eq!(kind_of("x(1_000_000)", "1_000_000"), TokenKind::Int);
    assert_eq!(kind_of("x(1.5e-3)", "1.5e-3"), TokenKind::Float);
    assert_eq!(kind_of("x(2f64)", "2f64"), TokenKind::Float);
    assert_eq!(kind_of("x(7e9)", "7e9"), TokenKind::Float);
}

#[test]
fn int_method_calls_and_ranges_stay_ints() {
    let src = "for i in 0..10 { let m = 3.max(i); }";
    assert_eq!(kind_of(src, "0"), TokenKind::Int);
    assert_eq!(kind_of(src, "10"), TokenKind::Int);
    assert_eq!(kind_of(src, "3"), TokenKind::Int);
    assert_eq!(kind_of(src, ".."), TokenKind::Punct);
}

#[test]
fn strings_with_escapes_do_not_leak() {
    let src = r#"let s = "quote \" inside // not a comment"; done"#;
    let toks = lex(src);
    let strings: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(strings, [r#""quote \" inside // not a comment""#]);
    assert!(texts(src).iter().any(|t| t == "done"));
}

#[test]
fn operators_needed_by_rules_are_whole_tokens() {
    let src = "a == b; c != d; e :: f; g => h; i -> j; k ..= l";
    for op in ["==", "!=", "::", "=>", "->", "..="] {
        assert_eq!(kind_of(src, op), TokenKind::Punct, "operator {op}");
    }
}

#[test]
fn spans_are_exact_byte_ranges() {
    let src = "alpha 0x10 'b'";
    let toks = lex(src);
    assert_eq!((toks[0].start, toks[0].end), (0, 5));
    assert_eq!((toks[1].start, toks[1].end), (6, 10));
    assert_eq!((toks[2].start, toks[2].end), (11, 14));
}

#[test]
fn line_col_conversion() {
    let src = "one\ntwo three\nfour";
    let starts = dqa_lint::lexer::line_starts(src);
    assert_eq!(dqa_lint::lexer::line_col(&starts, 0), (1, 1));
    assert_eq!(dqa_lint::lexer::line_col(&starts, 4), (2, 1));
    assert_eq!(dqa_lint::lexer::line_col(&starts, 8), (2, 5));
    assert_eq!(dqa_lint::lexer::line_col(&starts, 14), (3, 1));
}

#[test]
fn unterminated_constructs_do_not_hang_or_panic() {
    // Torture inputs: the lexer must terminate and produce *something*.
    for src in [
        "/* never closed",
        "\"never closed",
        "r#\"never closed",
        "'",
        "'\\",
        "1.",
        "0x",
    ] {
        let _ = lex(src);
    }
}
