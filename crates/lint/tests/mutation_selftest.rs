//! Mutation self-tests: the flow-aware rules must catch seeded
//! violations in a copy of the *real* `dqa-core` sources, under the
//! *real* `lint.toml` vocabulary. This pins the analysis end-to-end — a
//! refactor that silently blinds the guard-pool expansion or the
//! reachability scan fails here, not in a future PR that trips the
//! invariant for real.
//!
//! Each test copies `crates/core/src` into a throwaway workspace (the
//! engine only lexes, so nothing needs to compile against dependencies),
//! verifies the baseline is clean, applies one textual mutation, and
//! asserts the seeded violation is reported deterministically.

use std::fs;
use std::path::{Path, PathBuf};

use dqa_lint::config::{self, Config};
use dqa_lint::diagnostics::Finding;
use dqa_lint::engine;

fn real_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

/// Copies every `.rs` file under `src` into `dst`, preserving layout.
fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create dir");
    for entry in fs::read_dir(src).expect("read src dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        if path.is_dir() {
            copy_tree(&path, &dst.join(entry.file_name()));
        } else if path.extension().is_some_and(|e| e == "rs") {
            fs::copy(&path, dst.join(entry.file_name())).expect("copy source");
        }
    }
}

struct CoreCopy {
    root: PathBuf,
}

impl CoreCopy {
    /// A temp workspace holding a copy of the real `dqa-core` sources.
    fn new(name: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("dqa-lint-mutation-{}-{name}", std::process::id()));
        if root.exists() {
            fs::remove_dir_all(&root).expect("clear stale copy");
        }
        let core = root.join("crates").join("core");
        fs::create_dir_all(&core).expect("create core dir");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write root manifest");
        fs::write(core.join("Cargo.toml"), "[package]\nname = \"dqa-core\"\n")
            .expect("write core manifest");
        copy_tree(&real_root().join("crates/core/src"), &core.join("src"));
        CoreCopy { root }
    }

    /// The real `lint.toml`, with every rule but `keep` disabled.
    fn config(&self, keep: &str) -> Config {
        let text = fs::read_to_string(real_root().join("lint.toml")).expect("lint.toml");
        let mut config = config::parse(&text).expect("lint.toml parses");
        for rule in dqa_lint::rules::all() {
            if rule.name() != keep {
                config
                    .rules
                    .entry(rule.name().to_string())
                    .or_default()
                    .enabled = Some(false);
            }
        }
        config
    }

    fn run(&self, keep: &str) -> Vec<Finding> {
        engine::run(&self.root, &self.config(keep)).expect("engine runs")
    }

    fn mutate_model(&self, f: impl Fn(String) -> String) {
        let path = self.root.join("crates/core/src/model/mod.rs");
        let text = fs::read_to_string(&path).expect("read model");
        fs::write(&path, f(text)).expect("write mutated model");
    }
}

impl Drop for CoreCopy {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_unguarded_draw_is_caught() {
    let ws = CoreCopy::new("draw");
    assert_eq!(
        ws.run("draw-guardedness").len(),
        0,
        "baseline core copy must be clean"
    );
    // A helper that draws from the deadline stream with no dominating
    // guard and no caller: unreachable for the pool, unguardable at any
    // call site — the shape no approximation slack can excuse.
    ws.mutate_model(|text| {
        text + "\nimpl Lp { fn sneak(&mut self) -> f64 { self.rng_deadline.next_f64() } }\n"
    });
    let findings = ws.run("draw-guardedness");
    assert_eq!(findings.len(), 1, "exactly the seeded draw: {findings:?}");
    assert!(findings[0].message.contains("DEADLINE"), "{findings:?}");
    assert!(findings[0].message.contains("rng_deadline"), "{findings:?}");
}

#[test]
fn seeded_cross_site_access_is_caught() {
    let ws = CoreCopy::new("shard");
    assert_eq!(
        ws.run("shard-isolation").len(),
        0,
        "baseline core copy must be clean"
    );
    // Insert a bare `.deferred` read at the top of `Lp::handle` itself —
    // the first `fn handle(` in the file is the LP's (DbSystem's Model
    // impl comes later).
    ws.mutate_model(|text| {
        let fn_at = text.find("fn handle(").expect("Lp::handle exists");
        let brace = fn_at + text[fn_at..].find('{').expect("handle has a body");
        let mut mutated = text;
        mutated.insert_str(brace + 1, "\n        let _mutation = self.deferred.len();");
        mutated
    });
    let findings = ws.run("shard-isolation");
    assert_eq!(findings.len(), 1, "exactly the seeded access: {findings:?}");
    assert!(findings[0].message.contains(".deferred"), "{findings:?}");
    assert!(findings[0].message.contains("Lp::handle"), "{findings:?}");
}
