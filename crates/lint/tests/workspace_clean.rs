//! Tier-1 gate: the real workspace must be finding-free under the real
//! `lint.toml`. This is the test that makes the determinism invariants
//! regression-gated — a PR that reintroduces a magic substream tag, a
//! `HashMap` on the model path, or a wall-clock read fails `cargo test`,
//! not just the CI lint step.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let findings = dqa_lint::run_workspace(root).expect("lint pass runs");
    assert!(
        findings.is_empty(),
        "dqa-lint found {} violation(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(dqa_lint::diagnostics::Finding::render)
            .collect::<String>()
    );
}

#[test]
fn every_configured_crate_exists() {
    // Guard against lint.toml drifting from the workspace layout: a rule
    // scoped to a renamed/removed crate would silently stop checking it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists at the root");
    let config = dqa_lint::config::parse(&config_text).expect("lint.toml parses");
    let workspace = dqa_lint::engine::load_workspace(root).expect("workspace loads");
    let names = workspace.crate_names();
    for (rule, rule_config) in &config.rules {
        for crate_name in rule_config.crates.iter().chain(rule_config.budgets.keys()) {
            assert!(
                names.contains(crate_name),
                "lint.toml rule `{rule}` references unknown crate `{crate_name}` \
                 (workspace has: {names:?})"
            );
        }
    }
}
