//! A lightweight item/block parser on top of the [`crate::lexer`] token
//! stream.
//!
//! The flow-aware rules (`draw-guardedness`, `shard-isolation`) need more
//! than a flat token stream: they ask *"is this byte offset dominated by
//! a guard?"* and *"which function encloses this call site?"*. Answering
//! that does not require a full Rust grammar — only the block structure
//! that determines domination:
//!
//! * `fn` items with their impl-type context (`Lp::handle`), signature
//!   and body span;
//! * statement boundaries inside blocks, so *preceding-sibling* guard
//!   statements (early-exit `if … { return; }`, `let … else { return; }`,
//!   `assert!`/`expect()` assertions) are visible;
//! * `if`/`while`/`for` conditions and `match` scrutinees + arm heads, so
//!   *enclosing* guards are visible — including control structures in
//!   expression position (`let x = match … { … }`) and blocks nested in
//!   closures;
//! * `let` bindings with their initializer spans, for one-hop name
//!   resolution (`let f = self.fault_mut();` → what fed `f`).
//!
//! The parser is permissive in the same spirit as the lexer: it never
//! fails, and on token sequences it does not model (macros, const
//! generics in odd positions) it degrades to coarse `Plain` statements —
//! which makes the downstream analysis *less* able to prove guardedness,
//! never more, so parser blind spots surface as findings rather than as
//! silently-passed draws.

use crate::lexer::{Token, TokenKind};

/// A byte span `[start, end)` into the source text.
pub type Span = (usize, usize);

/// Whether `span` contains `offset`.
#[must_use]
pub fn span_contains(span: Span, offset: usize) -> bool {
    offset >= span.0 && offset < span.1
}

/// One `fn` item: name, impl-type qualification, and parsed body.
#[derive(Debug)]
pub struct FnDef {
    /// The bare function name (`handle`).
    pub name: String,
    /// `Type::name` inside an `impl Type` block, else the bare name.
    pub qualified: String,
    /// Byte offset of the `fn` keyword.
    pub sig_start: usize,
    /// Span of the body including braces; `(0, 0)` for bodyless decls.
    pub body_span: Span,
    /// The parsed body block.
    pub body: Block,
}

/// A `{ … }` block: its span (braces included) and statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Byte span including the braces.
    pub span: Span,
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement (or embedded control structure) inside a block.
#[derive(Debug)]
pub struct Stmt {
    /// Byte span of the whole statement.
    pub span: Span,
    /// What the statement is.
    pub kind: StmtKind,
}

/// Statement shapes the guard analysis distinguishes.
#[derive(Debug)]
pub enum StmtKind {
    /// `let <pat> (= <init>)? (else { … })? ;`
    Let {
        /// Identifiers appearing in the pattern (over-approximate: path
        /// segments like `Some` are included; lookups are by exact name
        /// so the noise is inert).
        names: Vec<String>,
        /// Span of the initializer expression, if any.
        init: Option<Span>,
        /// Control structures embedded in the initializer.
        nested: Vec<Stmt>,
        /// The diverging `else` block of a `let … else`.
        else_block: Option<Block>,
    },
    /// `if <cond> { … } (else if …)* (else { … })?` — else-if chains are
    /// represented as a nested `If` inside `else_block`.
    If {
        /// Span of the condition (covers `let pat = expr` for if-let).
        cond: Span,
        /// The then-block.
        then_block: Block,
        /// The else branch, when present (a one-statement block for
        /// `else if`).
        else_block: Option<Block>,
    },
    /// `match <scrutinee> { <arms> }`
    Match {
        /// Span of the scrutinee expression.
        scrutinee: Span,
        /// The arms, in order.
        arms: Vec<Arm>,
    },
    /// `while <cond> { … }`, `for <pat> in <iter> { … }`, `loop { … }`.
    Loop {
        /// The `while` condition / `for` header span, `None` for `loop`.
        header: Option<Span>,
        /// The loop body.
        body: Block,
    },
    /// A bare `{ … }` or `unsafe { … }` block statement.
    Block(Block),
    /// Anything else: an expression statement, macro call, item we do
    /// not model. Control structures and blocks found inside it (clo-
    /// sures, match-in-expression) are parsed into `nested`.
    Plain {
        /// Embedded control structures and blocks.
        nested: Vec<Stmt>,
    },
}

/// One `pat (if guard)? => body` arm of a `match`.
#[derive(Debug)]
pub struct Arm {
    /// Span of the pattern plus optional `if` guard (everything left of
    /// `=>`).
    pub head: Span,
    /// Span of the arm body.
    pub body_span: Span,
    /// Statements of the arm body: a parsed block when the body is
    /// `{ … }`, otherwise embedded structures of the body expression.
    pub body: Vec<Stmt>,
}

/// The parsed structure of one source file: its `fn` items.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// Every function item found, in source order (nested fns included).
    pub fns: Vec<FnDef>,
}

impl FileSyntax {
    /// The innermost function whose body contains `offset`.
    #[must_use]
    pub fn fn_at(&self, offset: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| span_contains(f.body_span, offset))
            .min_by_key(|f| f.body_span.1 - f.body_span.0)
    }
}

/// Parses the code-token structure of `src`.
#[must_use]
pub fn parse(src: &str, tokens: &[Token]) -> FileSyntax {
    let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    let mut p = Parser { src, code: &code };
    let mut fns = Vec::new();
    p.scan_items(0, code.len(), "", &mut fns);
    FileSyntax { fns }
}

struct Parser<'s> {
    src: &'s str,
    code: &'s [Token],
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.code[i].text(self.src)
    }

    fn is_ident(&self, i: usize, word: &str) -> bool {
        i < self.code.len() && self.code[i].kind == TokenKind::Ident && self.text(i) == word
    }

    /// Index one past the delimiter matching the opener at `open`.
    fn skip_group(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.text(open) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            let t = self.text(i);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Finds the first token with text `what` in `[from, end)` at
    /// delimiter depth 0 relative to `from`, skipping nested groups.
    fn find_at_depth0(&self, from: usize, end: usize, what: &[&str]) -> Option<usize> {
        let mut i = from;
        while i < end {
            let t = self.text(i);
            if what.contains(&t) {
                return Some(i);
            }
            if matches!(t, "(" | "[" | "{") {
                i = self.skip_group(i, end);
            } else {
                i += 1;
            }
        }
        None
    }

    /// Scans `[from, end)` for items: `impl` blocks (tracking the type
    /// name for qualification), `mod` bodies, and `fn` items whose bodies
    /// are parsed and then re-scanned for nested fns.
    fn scan_items(&mut self, from: usize, end: usize, impl_ty: &str, out: &mut Vec<FnDef>) {
        let mut i = from;
        while i < end {
            if self.is_ident(i, "impl") {
                if let Some((ty, body_open)) = self.parse_impl_header(i, end) {
                    let body_end = self.skip_group(body_open, end);
                    self.scan_items(body_open + 1, body_end.saturating_sub(1), &ty, out);
                    i = body_end;
                    continue;
                }
            }
            if self.is_ident(i, "mod") {
                if let Some(open) = self.find_at_depth0(i + 1, end, &["{", ";"]) {
                    if self.text(open) == "{" {
                        let body_end = self.skip_group(open, end);
                        self.scan_items(open + 1, body_end.saturating_sub(1), "", out);
                        i = body_end;
                        continue;
                    }
                }
            }
            if self.is_ident(i, "fn") {
                if let Some(next) = self.parse_fn(i, end, impl_ty, out) {
                    i = next;
                    continue;
                }
            }
            // Skip token-trees we are not descending into at item level
            // (const arrays, trait bodies reached via `fn` above, …).
            if matches!(self.text(i), "(" | "[" | "{") {
                // Descend into unknown brace groups too: trait bodies and
                // nested modules written without `mod` keywords still
                // contain fns worth indexing; duplicates cannot arise
                // because `fn` consumption advances past each body.
                i += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Parses `impl … (for Type)? {`, returning the implemented type's
    /// head identifier and the index of the body `{`.
    fn parse_impl_header(&self, impl_idx: usize, end: usize) -> Option<(String, usize)> {
        let open = self.find_at_depth0(impl_idx + 1, end, &["{", ";"])?;
        if self.text(open) != "{" {
            return None;
        }
        // Between `impl` and `{`: `<generics>? TraitPath (for TypePath)?
        // where …`. The implemented type is the first identifier after
        // `for` when present, else the first identifier after generics.
        let mut j = impl_idx + 1;
        let mut angle = 0i32;
        let mut ty: Option<String> = None;
        let mut after_for = false;
        while j < open {
            let t = self.text(j);
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "where" if angle == 0 => break,
                "for" if angle == 0 && self.code[j].kind == TokenKind::Ident => {
                    after_for = true;
                    ty = None;
                }
                _ => {
                    if angle == 0 && ty.is_none() && self.code[j].kind == TokenKind::Ident {
                        ty = Some(t.to_string());
                    }
                    let _ = after_for;
                }
            }
            j += 1;
        }
        Some((ty.unwrap_or_default(), open))
    }

    /// Parses one `fn` item starting at `fn_idx`; returns the index past
    /// the item, or `None` if the shape is not a function definition.
    fn parse_fn(
        &mut self,
        fn_idx: usize,
        end: usize,
        impl_ty: &str,
        out: &mut Vec<FnDef>,
    ) -> Option<usize> {
        let name_idx = fn_idx + 1;
        if name_idx >= end || self.code[name_idx].kind != TokenKind::Ident {
            return None;
        }
        let name = self.text(name_idx).to_string();
        // Skip generics `<…>` (may contain `(` from Fn-trait bounds; `->`
        // and `=>` are single tokens so a bare `>` only closes angles).
        let mut j = name_idx + 1;
        if j < end && self.text(j) == "<" {
            let mut angle = 0i32;
            while j < end {
                match self.text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" => {
                        j = self.skip_group(j, end);
                        continue;
                    }
                    _ => {}
                }
                j += 1;
                if angle == 0 {
                    break;
                }
            }
        }
        // Parameter list.
        if j >= end || self.text(j) != "(" {
            return None;
        }
        j = self.skip_group(j, end);
        // Return type / where clause up to the body `{` or a `;`.
        let open = self.find_at_depth0(j, end, &["{", ";"])?;
        if self.text(open) != "{" {
            return Some(open + 1); // trait method declaration, no body
        }
        let close = self.skip_group(open, end);
        let body_span = (
            self.code[open].start,
            self.code
                .get(close - 1)
                .map_or(self.code[open].end, |t| t.end),
        );
        let body = self.parse_block(open, close);
        out.push(FnDef {
            qualified: if impl_ty.is_empty() {
                name.clone()
            } else {
                format!("{impl_ty}::{name}")
            },
            name,
            sig_start: self.code[fn_idx].start,
            body_span,
            body,
        });
        // Re-scan the body for nested `fn` items (they qualify bare).
        self.scan_items(open + 1, close.saturating_sub(1), "", out);
        Some(close)
    }

    fn span_of(&self, from: usize, to: usize) -> Span {
        if from >= to || from >= self.code.len() {
            return (0, 0);
        }
        (self.code[from].start, self.code[to - 1].end)
    }

    /// Parses the interior of the brace group opening at `open`
    /// (`close` = index one past the matching `}`).
    fn parse_block(&mut self, open: usize, close: usize) -> Block {
        let inner_end = close.saturating_sub(1);
        let stmts = self.parse_stmts(open + 1, inner_end);
        Block {
            span: (
                self.code[open].start,
                self.code
                    .get(close - 1)
                    .map_or(self.code[open].end, |t| t.end),
            ),
            stmts,
        }
    }

    /// Splits `[from, end)` into statements.
    fn parse_stmts(&mut self, from: usize, end: usize) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        let mut i = from;
        while i < end {
            let t = self.text(i);
            if t == ";" {
                i += 1;
                continue;
            }
            if self.is_ident(i, "let") {
                let (stmt, next) = self.parse_let(i, end);
                stmts.push(stmt);
                i = next;
            } else if self.is_ident(i, "if") {
                let (stmt, next) = self.parse_if(i, end);
                stmts.push(stmt);
                i = next;
            } else if self.is_ident(i, "match") {
                if let Some((stmt, next)) = self.parse_match(i, end) {
                    stmts.push(stmt);
                    i = next;
                } else {
                    let (stmt, next) = self.parse_plain(i, end);
                    stmts.push(stmt);
                    i = next;
                }
            } else if self.is_ident(i, "while") || self.is_ident(i, "for") {
                let (stmt, next) = self.parse_headed_loop(i, end);
                stmts.push(stmt);
                i = next;
            } else if self.is_ident(i, "loop") {
                if i + 1 < end && self.text(i + 1) == "{" {
                    let close = self.skip_group(i + 1, end);
                    let body = self.parse_block(i + 1, close);
                    stmts.push(Stmt {
                        span: (self.code[i].start, body.span.1),
                        kind: StmtKind::Loop { header: None, body },
                    });
                    i = close;
                } else {
                    let (stmt, next) = self.parse_plain(i, end);
                    stmts.push(stmt);
                    i = next;
                }
            } else if t == "{"
                || (self.is_ident(i, "unsafe") && i + 1 < end && self.text(i + 1) == "{")
            {
                let open = if t == "{" { i } else { i + 1 };
                let close = self.skip_group(open, end);
                let block = self.parse_block(open, close);
                stmts.push(Stmt {
                    span: (self.code[i].start, block.span.1),
                    kind: StmtKind::Block(block),
                });
                i = close;
            } else {
                let (stmt, next) = self.parse_plain(i, end);
                stmts.push(stmt);
                i = next;
            }
        }
        stmts
    }

    /// `let <pat> (= init)? (else { … })? ;`
    fn parse_let(&mut self, let_idx: usize, end: usize) -> (Stmt, usize) {
        // Pattern runs to `=` at depth 0 (a `==` is a single distinct
        // token, so a bare `=` is unambiguous), or to `;` for a decl.
        let stop = self
            .find_at_depth0(let_idx + 1, end, &["=", ";"])
            .unwrap_or(end);
        let mut names = Vec::new();
        for k in let_idx + 1..stop.min(end) {
            if self.code[k].kind == TokenKind::Ident {
                names.push(self.text(k).to_string());
            }
        }
        if stop >= end || self.text(stop) == ";" {
            let next = (stop + 1).min(end);
            return (
                Stmt {
                    span: self.span_of(let_idx, next.max(let_idx + 1)),
                    kind: StmtKind::Let {
                        names,
                        init: None,
                        nested: Vec::new(),
                        else_block: None,
                    },
                },
                next,
            );
        }
        // Initializer runs to a depth-0 `else` (let-else) or `;`.
        let init_start = stop + 1;
        let mut j = init_start;
        let mut init_end = end;
        let mut else_block = None;
        while j < end {
            let t = self.text(j);
            if t == ";" {
                init_end = j;
                j += 1;
                break;
            }
            if self.is_ident(j, "else") && j + 1 < end && self.text(j + 1) == "{" {
                init_end = j;
                let close = self.skip_group(j + 1, end);
                else_block = Some(self.parse_block(j + 1, close));
                j = close;
                if j < end && self.text(j) == ";" {
                    j += 1;
                }
                break;
            }
            if matches!(t, "(" | "[" | "{") {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
        }
        let init_span = self.span_of(init_start, init_end.max(init_start));
        let nested = self.embedded(init_start, init_end);
        (
            Stmt {
                span: self.span_of(let_idx, j.max(let_idx + 1)),
                kind: StmtKind::Let {
                    names,
                    init: (init_span != (0, 0)).then_some(init_span),
                    nested,
                    else_block,
                },
            },
            j,
        )
    }

    /// `if <cond> { … } (else (if …|{ … }))?`
    /// The index of the body `{` of an `if`/`while` header starting
    /// after `kw_idx`. For `if let PAT = expr {` the pattern may itself
    /// contain a brace group (`Workload::Open { arrival_rate }`), so the
    /// depth-0 `=` is located first and the body brace searched after it.
    fn cond_body_open(&self, kw_idx: usize, end: usize) -> Option<usize> {
        let mut from = kw_idx + 1;
        if from < end && self.is_ident(from, "let") {
            from = self.find_at_depth0(from + 1, end, &["="])? + 1;
        }
        self.find_at_depth0(from, end, &["{"])
    }

    fn parse_if(&mut self, if_idx: usize, end: usize) -> (Stmt, usize) {
        let Some(open) = self.cond_body_open(if_idx, end) else {
            return self.parse_plain(if_idx, end);
        };
        let cond = self.span_of(if_idx + 1, open);
        let close = self.skip_group(open, end);
        let then_block = self.parse_block(open, close);
        let mut j = close;
        let mut else_block = None;
        if j < end && self.is_ident(j, "else") {
            if j + 1 < end && self.is_ident(j + 1, "if") {
                let (nested_if, next) = self.parse_if(j + 1, end);
                else_block = Some(Block {
                    span: nested_if.span,
                    stmts: vec![nested_if],
                });
                j = next;
            } else if j + 1 < end && self.text(j + 1) == "{" {
                let eclose = self.skip_group(j + 1, end);
                else_block = Some(self.parse_block(j + 1, eclose));
                j = eclose;
            }
        }
        let span_end = else_block.as_ref().map_or(then_block.span.1, |b| b.span.1);
        (
            Stmt {
                span: (self.code[if_idx].start, span_end),
                kind: StmtKind::If {
                    cond,
                    then_block,
                    else_block,
                },
            },
            j,
        )
    }

    /// `match <scrutinee> { <arms> }`
    fn parse_match(&mut self, match_idx: usize, end: usize) -> Option<(Stmt, usize)> {
        let open = self.find_at_depth0(match_idx + 1, end, &["{"])?;
        let scrutinee = self.span_of(match_idx + 1, open);
        let close = self.skip_group(open, end);
        let mut arms = Vec::new();
        let mut i = open + 1;
        let inner_end = close.saturating_sub(1);
        while i < inner_end {
            let Some(arrow) = self.find_at_depth0(i, inner_end, &["=>"]) else {
                break;
            };
            let head = self.span_of(i, arrow);
            let body_start = arrow + 1;
            if body_start >= inner_end {
                break;
            }
            let (body_span, body, next) = if self.text(body_start) == "{" {
                let bclose = self.skip_group(body_start, inner_end);
                let block = self.parse_block(body_start, bclose);
                let span = block.span;
                let mut next = bclose;
                if next < inner_end && self.text(next) == "," {
                    next += 1;
                }
                (
                    span,
                    vec![Stmt {
                        span,
                        kind: StmtKind::Block(block),
                    }],
                    next,
                )
            } else {
                let stop = self
                    .find_at_depth0(body_start, inner_end, &[","])
                    .unwrap_or(inner_end);
                let span = self.span_of(body_start, stop);
                (
                    span,
                    self.embedded(body_start, stop),
                    (stop + 1).min(inner_end),
                )
            };
            arms.push(Arm {
                head,
                body_span,
                body,
            });
            i = next;
        }
        let span_end = self
            .code
            .get(close - 1)
            .map_or(self.code[open].end, |t| t.end);
        Some((
            Stmt {
                span: (self.code[match_idx].start, span_end),
                kind: StmtKind::Match { scrutinee, arms },
            },
            close,
        ))
    }

    /// `while <cond> { … }` / `for <pat> in <iter> { … }`
    fn parse_headed_loop(&mut self, kw_idx: usize, end: usize) -> (Stmt, usize) {
        let Some(open) = self.cond_body_open(kw_idx, end) else {
            return self.parse_plain(kw_idx, end);
        };
        let header = self.span_of(kw_idx + 1, open);
        let close = self.skip_group(open, end);
        let body = self.parse_block(open, close);
        (
            Stmt {
                span: (self.code[kw_idx].start, body.span.1),
                kind: StmtKind::Loop {
                    header: (header != (0, 0)).then_some(header),
                    body,
                },
            },
            close,
        )
    }

    /// Anything else: consume to `;` at depth 0 (or to `end`), then parse
    /// embedded control structures/blocks inside the consumed span.
    fn parse_plain(&mut self, from: usize, end: usize) -> (Stmt, usize) {
        let stop = self.find_at_depth0(from, end, &[";"]).unwrap_or(end);
        let next = (stop + 1).min(end);
        let nested = self.embedded(from, stop);
        (
            Stmt {
                span: self.span_of(from, stop.max(from + 1)),
                kind: StmtKind::Plain { nested },
            },
            next,
        )
    }

    /// Scans an *expression* token range (any nesting depth) for control
    /// structures and blocks, parsing each: this is how `let x = match …`
    /// scrutinees, closure bodies, and `foo(if c { a } else { b })`
    /// arguments become visible to the guard analysis.
    fn embedded(&mut self, from: usize, end: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        let mut i = from;
        while i < end {
            if self.is_ident(i, "match") {
                if let Some((stmt, next)) = self.parse_match(i, end) {
                    out.push(stmt);
                    i = next;
                    continue;
                }
            } else if self.is_ident(i, "if") {
                let before = out.len();
                let (stmt, next) = self.parse_if(i, end);
                if matches!(stmt.kind, StmtKind::If { .. }) {
                    out.push(stmt);
                    i = next;
                    continue;
                }
                out.truncate(before);
            } else if self.is_ident(i, "while") || self.is_ident(i, "for") {
                let (stmt, next) = self.parse_headed_loop(i, end);
                if matches!(stmt.kind, StmtKind::Loop { .. }) {
                    out.push(stmt);
                    i = next;
                    continue;
                }
            } else if self.text(i) == "{" {
                let close = self.skip_group(i, end);
                let block = self.parse_block(i, close);
                out.push(Stmt {
                    span: block.span,
                    kind: StmtKind::Block(block),
                });
                i = close;
                continue;
            }
            i += 1;
        }
        out
    }
}

// ------------------------------------------------------------------
// Guard / binding queries over the parsed structure.
// ------------------------------------------------------------------

/// Whether a statement is an early-exit or assertion guard: executing
/// past it narrows the state. Recognized shapes:
///
/// * `if <cond> { return/break/continue/panic!/unreachable! … }` with no
///   else branch (the cond's *negation* holds afterwards — the analysis
///   pools keywords without polarity, a documented caveat);
/// * `let <pat> = <init> else { … }` (the else block must diverge by
///   language rule, so the pattern matched afterwards);
/// * a statement invoking `assert!`/`assert_eq!`/`assert_ne!`, or
///   `.expect(`/`.unwrap(` (a runtime domination proof; `debug_assert*`
///   deliberately does **not** count — it vanishes in release builds,
///   which is exactly what the experiments run).
#[must_use]
pub fn is_guard_stmt(stmt: &Stmt, src: &str, tokens: &[Token]) -> bool {
    match &stmt.kind {
        StmtKind::Let { else_block, .. } => {
            else_block.is_some() || stmt_has_assertion(stmt.span, src, tokens)
        }
        StmtKind::If {
            then_block,
            else_block: None,
            ..
        } => then_block.stmts.iter().any(|s| {
            let text = &src[s.span.0..s.span.1.min(src.len())];
            let head = text.trim_start();
            head.starts_with("return")
                || head.starts_with("break")
                || head.starts_with("continue")
                || head.starts_with("panic!")
                || head.starts_with("unreachable!")
        }),
        _ => stmt_has_assertion(stmt.span, src, tokens),
    }
}

/// Whether the span contains an `assert!`-family macro or an
/// `.expect(`/`.unwrap(` call (see [`is_guard_stmt`]).
fn stmt_has_assertion(span: Span, src: &str, tokens: &[Token]) -> bool {
    let mut toks = tokens
        .iter()
        .filter(|t| !t.is_comment() && t.start >= span.0 && t.end <= span.1)
        .peekable();
    while let Some(t) = toks.next() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        let next = toks.peek().map(|n| n.text(src));
        match name {
            "assert" | "assert_eq" | "assert_ne" if next == Some("!") => return true,
            "expect" | "unwrap" if next == Some("(") => return true,
            _ => {}
        }
    }
    false
}

/// Collects the guard-context spans dominating `offset` inside `def`:
/// enclosing `if`/`while`/`for` headers, `match` scrutinees + arm heads,
/// and preceding-sibling guard statements ([`is_guard_stmt`]) in every
/// enclosing block. Spans index the file text.
#[must_use]
pub fn guard_spans(def: &FnDef, offset: usize, src: &str, tokens: &[Token]) -> Vec<Span> {
    let mut out = Vec::new();
    walk_stmts(&def.body.stmts, offset, src, tokens, &mut out);
    out
}

fn walk_stmts(stmts: &[Stmt], offset: usize, src: &str, tokens: &[Token], out: &mut Vec<Span>) {
    let Some(pos) = stmts.iter().position(|s| span_contains(s.span, offset)) else {
        return;
    };
    for prev in &stmts[..pos] {
        if is_guard_stmt(prev, src, tokens) {
            out.push(prev.span);
        }
    }
    walk_stmt(&stmts[pos], offset, src, tokens, out);
}

fn walk_stmt(stmt: &Stmt, offset: usize, src: &str, tokens: &[Token], out: &mut Vec<Span>) {
    match &stmt.kind {
        StmtKind::Let {
            nested, else_block, ..
        } => {
            if let Some(b) = else_block {
                if span_contains(b.span, offset) {
                    walk_stmts(&b.stmts, offset, src, tokens, out);
                    return;
                }
            }
            for s in nested {
                if span_contains(s.span, offset) {
                    walk_stmt(s, offset, src, tokens, out);
                }
            }
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            if span_contains(*cond, offset) {
                // A draw inside the condition itself is dominated by the
                // short-circuit prefix of that same condition.
                out.push(*cond);
                return;
            }
            if span_contains(then_block.span, offset) {
                out.push(*cond);
                walk_stmts(&then_block.stmts, offset, src, tokens, out);
                return;
            }
            if let Some(b) = else_block {
                if span_contains(b.span, offset) {
                    // The else branch holds the cond's negation; pooling
                    // the cond there would be wrong-polarity, so skip it.
                    walk_stmts(&b.stmts, offset, src, tokens, out);
                }
            }
        }
        StmtKind::Match { scrutinee, arms } => {
            for arm in arms {
                if span_contains(arm.head, offset) {
                    out.push(*scrutinee);
                    return;
                }
                if span_contains(arm.body_span, offset) {
                    out.push(*scrutinee);
                    out.push(arm.head);
                    walk_stmts(&arm.body, offset, src, tokens, out);
                    return;
                }
            }
        }
        StmtKind::Loop { header, body } => {
            if span_contains(body.span, offset) {
                if let Some(h) = header {
                    out.push(*h);
                }
                walk_stmts(&body.stmts, offset, src, tokens, out);
            }
        }
        StmtKind::Block(b) => {
            if span_contains(b.span, offset) {
                walk_stmts(&b.stmts, offset, src, tokens, out);
            }
        }
        StmtKind::Plain { nested } => {
            for s in nested {
                if span_contains(s.span, offset) {
                    walk_stmt(s, offset, src, tokens, out);
                }
            }
        }
    }
}

/// The nearest binding of `name` dominating `offset`: a preceding `let`
/// initializer, an `if let`/`while let` condition, or the scrutinee of a
/// `match` whose arm head binds `name`. Returns the span of the feeding
/// expression.
#[must_use]
pub fn binding_init(
    def: &FnDef,
    name: &str,
    offset: usize,
    src: &str,
    tokens: &[Token],
) -> Option<Span> {
    let mut best: Option<(usize, Span)> = None;
    let cx = BindCx {
        name,
        offset,
        src,
        tokens,
    };
    collect_bindings(&def.body.stmts, &cx, &mut best);
    best.map(|(_, span)| span)
}

/// Shared context for the binding walk.
struct BindCx<'a> {
    name: &'a str,
    offset: usize,
    src: &'a str,
    tokens: &'a [Token],
}

impl BindCx<'_> {
    /// Whether `span` mentions `self.name` as an identifier token.
    fn mentions(&self, span: Span) -> bool {
        self.tokens.iter().any(|t| {
            !t.is_comment()
                && t.kind == TokenKind::Ident
                && t.start >= span.0
                && t.end <= span.1
                && t.text(self.src) == self.name
        })
    }

    /// Whether `span` starts with the `let` keyword (an `if let` /
    /// `while let` condition, which is the only kind of condition that
    /// binds names).
    fn starts_with_let(&self, span: Span) -> bool {
        self.tokens
            .iter()
            .find(|t| !t.is_comment() && t.start >= span.0 && t.end <= span.1)
            .is_some_and(|t| t.text(self.src) == "let")
    }
}

fn collect_bindings(stmts: &[Stmt], cx: &BindCx<'_>, best: &mut Option<(usize, Span)>) {
    let consider = |best: &mut Option<(usize, Span)>, at: usize, span: Span| {
        if at < cx.offset && best.is_none_or(|(b, _)| at > b) && span != (0, 0) {
            *best = Some((at, span));
        }
    };
    for stmt in stmts {
        if stmt.span.0 >= cx.offset {
            break;
        }
        match &stmt.kind {
            StmtKind::Let {
                names,
                init,
                nested,
                else_block,
            } => {
                if names.iter().any(|n| n == cx.name) {
                    if let Some(init) = init {
                        consider(best, stmt.span.0, *init);
                    }
                }
                for s in nested {
                    if span_contains(s.span, cx.offset) {
                        collect_inner(s, cx, best);
                    }
                }
                if let Some(b) = else_block {
                    if span_contains(b.span, cx.offset) {
                        collect_bindings(&b.stmts, cx, best);
                    }
                }
            }
            other => {
                let _ = other;
                collect_inner(stmt, cx, best);
            }
        }
    }
}

fn collect_inner(stmt: &Stmt, cx: &BindCx<'_>, best: &mut Option<(usize, Span)>) {
    let consider = |best: &mut Option<(usize, Span)>, at: usize, span: Span| {
        if at < cx.offset && best.is_none_or(|(b, _)| at > b) && span != (0, 0) {
            *best = Some((at, span));
        }
    };
    match &stmt.kind {
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            if span_contains(then_block.span, cx.offset) || span_contains(*cond, cx.offset) {
                // Only an `if let Some(f) = expr` condition binds a name
                // for the then-block; a boolean condition mentioning the
                // name must not shadow the real (earlier) binding.
                if cx.starts_with_let(*cond) && cx.mentions(*cond) {
                    consider(best, cond.0, *cond);
                }
                collect_bindings(&then_block.stmts, cx, best);
            } else if let Some(b) = else_block {
                if span_contains(b.span, cx.offset) {
                    collect_bindings(&b.stmts, cx, best);
                }
            }
        }
        StmtKind::Match { scrutinee, arms } => {
            for arm in arms {
                if span_contains(arm.body_span, cx.offset) {
                    // An arm rebinds a name from the scrutinee only when
                    // its pattern (the head, left of `=>`) mentions it.
                    if cx.mentions(arm.head) {
                        consider(best, scrutinee.0, *scrutinee);
                    }
                    for s in &arm.body {
                        if span_contains(s.span, cx.offset) {
                            collect_inner(s, cx, best);
                        }
                    }
                    collect_arm_blocks(&arm.body, cx, best);
                }
            }
        }
        StmtKind::Loop { body, .. } | StmtKind::Block(body) => {
            if span_contains(body.span, cx.offset) {
                collect_bindings(&body.stmts, cx, best);
            }
        }
        StmtKind::Plain { nested } | StmtKind::Let { nested, .. } => {
            for s in nested {
                if span_contains(s.span, cx.offset) {
                    collect_inner(s, cx, best);
                }
            }
        }
    }
}

fn collect_arm_blocks(stmts: &[Stmt], cx: &BindCx<'_>, best: &mut Option<(usize, Span)>) {
    for s in stmts {
        if let StmtKind::Block(b) = &s.kind {
            if span_contains(b.span, cx.offset) {
                collect_bindings(&b.stmts, cx, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parsed(src: &str) -> (FileSyntax, Vec<lexer::Token>) {
        let tokens = lexer::lex(src);
        (parse(src, &tokens), tokens)
    }

    fn span_text(src: &str, span: Span) -> &str {
        &src[span.0..span.1]
    }

    #[test]
    fn finds_fns_with_impl_qualification() {
        let src = r"
            struct Lp;
            impl Lp {
                fn handle(&mut self) {}
                fn helper<F: Fn(usize) -> bool>(&self, f: F) -> bool { f(0) }
            }
            impl Clone for Lp { fn clone(&self) -> Self { Lp } }
            fn free() {}
        ";
        let (syn, _) = parsed(src);
        let names: Vec<&str> = syn.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, ["Lp::handle", "Lp::helper", "Lp::clone", "free"]);
    }

    #[test]
    fn nested_blocks_and_closures() {
        let src = r"
            fn f(xs: &[u32]) -> u32 {
                let total = xs.iter().map(|x| { x + 1 }).sum();
                { total }
            }
        ";
        let (syn, _) = parsed(src);
        let f = &syn.fns[0];
        // let-stmt with an embedded closure block, then a bare block.
        assert_eq!(f.body.stmts.len(), 2);
        let StmtKind::Let { nested, .. } = &f.body.stmts[0].kind else {
            panic!("expected let");
        };
        assert!(matches!(nested[0].kind, StmtKind::Block(_)));
        assert!(matches!(f.body.stmts[1].kind, StmtKind::Block(_)));
    }

    #[test]
    fn enclosing_if_and_match_guard_contexts() {
        let src = r"
            fn f(spec: Option<Spec>, x: u32) -> u32 {
                match spec {
                    Some(s) if s.is_active() => draw(x),
                    _ => 0,
                }
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("draw").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        let texts: Vec<&str> = spans.iter().map(|&s| span_text(src, s).trim()).collect();
        assert_eq!(texts, ["spec", "Some(s) if s.is_active()"]);
    }

    #[test]
    fn early_exit_siblings_count_let_else_counts_debug_assert_does_not() {
        let src = r"
            fn f(spec: Option<Spec>) -> f64 {
                let Some(s) = spec else { return 0.0; };
                if !s.is_active() { return 0.0; }
                debug_assert!(s.ok());
                draw(s)
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("draw(s)").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        let texts: Vec<String> = spans
            .iter()
            .map(|&s| span_text(src, s).trim().to_string())
            .collect();
        assert!(texts.iter().any(|t| t.contains("let Some(s) = spec")));
        assert!(texts.iter().any(|t| t.contains("!s.is_active()")));
        assert!(
            !texts.iter().any(|t| t.contains("debug_assert")),
            "debug_assert is compiled out of release builds and must not guard"
        );
    }

    #[test]
    fn assertion_statements_count_as_guards() {
        let src = r#"
            fn f(spec: Option<Spec>) -> f64 {
                let s = spec.filter(Spec::is_active).expect("layer active");
                draw(s)
            }
        "#;
        let (syn, toks) = parsed(src);
        let off = src.find("draw(s)").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        assert!(spans
            .iter()
            .any(|&s| span_text(src, s).contains("is_active")));
    }

    #[test]
    fn else_branch_does_not_inherit_the_condition() {
        let src = r"
            fn f(active: bool) -> f64 {
                if active { 0.0 } else { draw() }
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("draw()").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        assert!(
            !spans.iter().any(|&s| span_text(src, s).contains("active")),
            "the else branch holds the negation, the cond must not pool"
        );
    }

    #[test]
    fn match_in_expression_position_is_visible() {
        let src = r"
            fn f(spec: Option<Spec>) -> f64 {
                let v = match spec {
                    Some(s) if s.is_active() => draw(s),
                    None => 0.0,
                };
                v
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("draw(s)").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        assert!(spans
            .iter()
            .any(|&s| span_text(src, s).contains("is_active")));
    }

    #[test]
    fn binding_resolution_let_and_match_arm() {
        let src = r"
            fn f(&mut self) {
                let g = self.fault_mut();
                use_it(g);
                match self.fault {
                    Some(f) => consume(f),
                    None => {}
                }
            }
        ";
        let (syn, toks) = parsed(src);
        let use_off = src.find("use_it").unwrap();
        let init = binding_init(&syn.fns[0], "g", use_off, src, &toks).unwrap();
        assert_eq!(span_text(src, init), "self.fault_mut()");
        let consume_off = src.find("consume").unwrap();
        let init = binding_init(&syn.fns[0], "f", consume_off, src, &toks).unwrap();
        assert_eq!(span_text(src, init), "self.fault");
    }

    #[test]
    fn boolean_conditions_do_not_shadow_real_bindings() {
        // `if g.spec.mttr > 0.0` is not an `if let`: it must not hijack
        // the binding of `g`, which comes from the earlier `let`. And a
        // match arm whose pattern does not mention the name must not
        // rebind it from the scrutinee.
        let src = r"
            fn f(&mut self) {
                let g = self.fault_mut();
                let repair = if g.spec.mttr > 0.0 { draw(g) } else { 0.0 };
                match self.other {
                    Some(x) => consume(g),
                    None => {}
                }
            }
        ";
        let (syn, toks) = parsed(src);
        let draw_off = src.find("draw").unwrap();
        let init = binding_init(&syn.fns[0], "g", draw_off, src, &toks).unwrap();
        assert_eq!(span_text(src, init), "self.fault_mut()");
        let consume_off = src.find("consume").unwrap();
        let init = binding_init(&syn.fns[0], "g", consume_off, src, &toks).unwrap();
        assert_eq!(span_text(src, init), "self.fault_mut()");
        // But a genuine `if let` that mentions the name still binds it.
        let src2 = r"
            fn f(&mut self) {
                if let Some(g) = self.fault.as_mut() { draw(g) }
            }
        ";
        let (syn2, toks2) = parsed(src2);
        let off2 = src2.find("draw").unwrap();
        let init = binding_init(&syn2.fns[0], "g", off2, src2, &toks2).unwrap();
        assert!(span_text(src2, init).contains("self.fault.as_mut()"));
    }

    #[test]
    fn if_let_struct_pattern_brace_is_not_the_body() {
        // The pattern's brace group must not be mistaken for the
        // then-block: the body starts after the depth-0 `=`.
        let src = r"
            fn f(&mut self) {
                if let Workload::Open { arrival_rate } = sh.params.workload {
                    let gap = draw(arrival_rate);
                    use_it(gap);
                }
                after();
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("draw").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        assert!(
            spans
                .iter()
                .any(|&s| span_text(src, s).contains("sh.params.workload")),
            "cond should dominate the draw: {spans:?}"
        );
        // The statement after the if must be a sibling, not swallowed.
        let body = &syn.fns[0].body.stmts;
        assert_eq!(body.len(), 2, "if + after(): {body:#?}");
        // And the binding of `arrival_rate` resolves to the if-let cond.
        let init = binding_init(&syn.fns[0], "arrival_rate", off, src, &toks).unwrap();
        assert!(span_text(src, init).contains("sh.params.workload"));
    }

    #[test]
    fn else_if_chains_nest() {
        let src = r"
            fn f(a: bool, b: bool) -> u32 {
                if a { 1 } else if b { inner() } else { 3 }
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("inner").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        let texts: Vec<&str> = spans.iter().map(|&s| span_text(src, s).trim()).collect();
        assert_eq!(texts, ["b"]);
    }

    #[test]
    fn while_header_pools_for_body() {
        let src = r"
            fn f(q: &mut Q) {
                while q.is_active() { step(q); }
            }
        ";
        let (syn, toks) = parsed(src);
        let off = src.find("step").unwrap();
        let spans = guard_spans(&syn.fns[0], off, src, &toks);
        assert!(spans
            .iter()
            .any(|&s| span_text(src, s).contains("is_active")));
    }
}
