//! A small hand-rolled Rust lexer.
//!
//! `dqa-lint` cannot depend on `rustc`'s own lexer (offline container, no
//! external crates), and naive regex/substring scanning over Rust source
//! is exactly the failure mode a linter must avoid: `unwrap()` inside a
//! doc-comment code fence, `HashMap` in a string literal, or `'a` in a
//! generic parameter list must not look like code. This lexer produces a
//! token stream with byte spans and handles the constructs that break
//! substring scanners:
//!
//! * raw strings `r"…"`, `r#"…"#` (any number of `#`s), `br#"…"#`;
//! * nested block comments `/* /* */ */`;
//! * `'a` lifetimes vs `'a'` char literals (including escapes);
//! * line/block doc comments (kept as comment tokens so rules skip them);
//! * numeric literals with radix prefixes, underscores, exponents and
//!   suffixes (so `0xD1CE` is one integer token and `1.0f64` one float).
//!
//! The lexer is intentionally permissive: it never fails. Input that is
//! not valid Rust still produces *some* token stream (stray characters
//! become one-byte [`TokenKind::Punct`] tokens); the rules only need the
//! stream to be faithful on code that compiles, and the workspace the
//! linter runs on is compiled by CI first.

/// What a token is. Comments are kept in the stream (suppression comments
/// are read from them); rules that inspect code skip them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`substream`, `fn`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// A character literal such as `'a'` or `'\n'`.
    Char,
    /// A (possibly byte) string literal, escapes and all.
    Str,
    /// A raw (possibly byte) string literal `r#"…"#`.
    RawStr,
    /// Integer literal (`42`, `0xD1CE`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// `//` comment; `doc` is true for `///` and `//!`.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* … */` comment (nesting handled); `doc` for `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// Punctuation / operator. Multi-character operators that rules care
    /// about (`==`, `!=`, `::`, `->`, `=>`, `<=`, `>=`, `&&`, `||`,
    /// `..`, `..=`) are single tokens; everything else is one byte.
    Punct,
}

/// One token: kind plus the byte span it covers in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether the token is any kind of comment.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Lexes `src` into a token stream. Whitespace is dropped; comments are
/// kept. Never fails (see module docs).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

/// Byte offsets of the start of each line, for offset → line/column
/// conversion in diagnostics. Line 1 starts at offset 0.
#[must_use]
pub fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Converts a byte offset to 1-based (line, column) given
/// [`line_starts`] output. Column counts bytes, which matches how
/// editors display ASCII source.
#[must_use]
pub fn line_col(starts: &[usize], offset: usize) -> (usize, usize) {
    let line = match starts.binary_search(&offset) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (line + 1, offset - starts[line] + 1)
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(tok) = self.next_token() {
            tokens.push(tok);
        }
        tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn char_at(&self, pos: usize) -> Option<char> {
        self.src[pos..].chars().next()
    }

    /// Advances past one whole `char` (multi-byte safe).
    fn bump_char(&mut self) {
        if let Some(c) = self.char_at(self.pos) {
            self.pos += c.len_utf8();
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        // Skip whitespace.
        while let Some(c) = self.char_at(self.pos) {
            if c.is_whitespace() {
                self.bump_char();
            } else {
                break;
            }
        }
        let start = self.pos;
        let c = self.char_at(self.pos)?;

        let kind = match c {
            '/' if self.peek(1) == Some(b'/') => self.line_comment(),
            '/' if self.peek(1) == Some(b'*') => self.block_comment(),
            '"' => self.string(),
            '\'' => self.char_or_lifetime(),
            c if c.is_ascii_digit() => self.number(),
            c if is_ident_start(c) => self.ident_or_prefixed_string(),
            _ => self.punct(),
        };
        Some(Token {
            kind,
            start,
            end: self.pos,
        })
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` is doc unless it is `////…` (treated as plain by rustdoc);
        // `//!` is always doc.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'!'), _) => true,
            (Some(b'/'), Some(b'/')) => false,
            (Some(b'/'), _) => true,
            _ => false,
        };
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump_char();
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` (but not `/***` or the degenerate `/**/`) and `/*!` are doc.
        let doc = match self.peek(2) {
            Some(b'!') => true,
            Some(b'*') => self.peek(3) != Some(b'*') && self.peek(3) != Some(b'/'),
            _ => false,
        };
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.bump_char(),
                (None, _) => break, // unterminated: tolerate
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// A `"`-delimited string with `\` escapes, cursor on the `"`.
    fn string(&mut self) -> TokenKind {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.pos += 1; // the backslash
                    self.bump_char(); // whatever it escapes
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump_char(),
            }
        }
        TokenKind::Str
    }

    /// A raw string starting at the cursor: zero or more `#`, then `"`,
    /// then anything up to `"` followed by the same number of `#`.
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        self.pos += hashes + 1; // the `#`s and the opening `"`
        loop {
            match self.peek(0) {
                None => break, // unterminated: tolerate
                Some(b'"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                Some(_) => self.bump_char(),
            }
        }
        TokenKind::RawStr
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime), cursor on the `'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.pos += 1;
        match self.char_at(self.pos) {
            Some('\\') => {
                // Escaped char literal: consume up to the closing quote.
                self.pos += 1;
                self.bump_char();
                // `\u{…}` escapes have more to consume before the quote.
                while let Some(b) = self.peek(0) {
                    if b == b'\'' {
                        self.pos += 1;
                        return TokenKind::Char;
                    }
                    if b == b'\n' {
                        break; // unterminated on this line: tolerate
                    }
                    self.bump_char();
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // Could be `'a'` (char) or `'a` (lifetime): a char literal
                // has exactly one character then a closing quote.
                let after_one = self.pos + c.len_utf8();
                if self.bytes.get(after_one) == Some(&b'\'') {
                    self.pos = after_one + 1;
                    TokenKind::Char
                } else {
                    // Lifetime: consume the identifier run.
                    while let Some(c) = self.char_at(self.pos) {
                        if is_ident_continue(c) {
                            self.bump_char();
                        } else {
                            break;
                        }
                    }
                    TokenKind::Lifetime
                }
            }
            Some(c) => {
                // Non-identifier char literal like `' '` or `'%'`.
                let after_one = self.pos + c.len_utf8();
                if self.bytes.get(after_one) == Some(&b'\'') {
                    self.pos = after_one + 1;
                    TokenKind::Char
                } else {
                    // A stray quote; emit it alone as punctuation.
                    TokenKind::Punct
                }
            }
            None => TokenKind::Punct,
        }
    }

    fn number(&mut self) -> TokenKind {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'));
        if radix_prefixed {
            self.pos += 2;
            while let Some(b) = self.peek(0) {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return TokenKind::Int;
        }
        let mut float = false;
        self.digits();
        // Fractional part: `.` must be followed by a digit (so `1.max(2)`,
        // `1..2` and `1.0` all lex correctly), except the trailing-dot
        // form `1.` where the next char is not `.` or identifier-like.
        if self.peek(0) == Some(b'.') {
            match self.char_at(self.pos + 1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    self.pos += 1;
                    self.digits();
                }
                Some(c) if c == '.' || is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let mut k = 1;
            if matches!(self.peek(1), Some(b'+' | b'-')) {
                k = 2;
            }
            if self.peek(k).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.pos += k;
                self.digits();
            }
        }
        // Suffix (`u64`, `f32`, …). An `f32`/`f64` suffix makes it float.
        let suffix_start = self.pos;
        while let Some(c) = self.char_at(self.pos) {
            if is_ident_continue(c) {
                self.bump_char();
            } else {
                break;
            }
        }
        if matches!(&self.src[suffix_start..self.pos], "f32" | "f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn digits(&mut self) {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_digit() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn ident_or_prefixed_string(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.char_at(self.pos) {
            if is_ident_continue(c) {
                self.bump_char();
            } else {
                break;
            }
        }
        let ident = &self.src[start..self.pos];
        // `r"…"`/`r#"…"#`/`br"…"`/`b"…"`: the "identifier" is a literal
        // prefix. (`br#x` as a real identifier followed by `#` cannot occur
        // in valid Rust, so checking the next byte is unambiguous.)
        match ident {
            "r" | "br" if matches!(self.peek(0), Some(b'"' | b'#')) => {
                // Only a raw string if the `#` run ends in `"`.
                let mut k = 0usize;
                while self.peek(k) == Some(b'#') {
                    k += 1;
                }
                if self.peek(k) == Some(b'"') {
                    return self.raw_string();
                }
                TokenKind::Ident
            }
            "b" if self.peek(0) == Some(b'"') => self.string(),
            // Cursor sits on the `'`; char_or_lifetime consumes it.
            "b" if self.peek(0) == Some(b'\'') => self.char_or_lifetime(),
            _ => TokenKind::Ident,
        }
    }

    fn punct(&mut self) -> TokenKind {
        // Multi-byte operators the rules need to see whole.
        const TWO: &[&[u8]] = &[
            b"==", b"!=", b"<=", b">=", b"::", b"->", b"=>", b"&&", b"||", b"..",
        ];
        if let (Some(a), Some(b)) = (self.peek(0), self.peek(1)) {
            if TWO.contains(&&[a, b][..]) {
                // `..=` and `...` extend `..`.
                if [a, b] == *b".." && matches!(self.peek(2), Some(b'=' | b'.')) {
                    self.pos += 3;
                } else {
                    self.pos += 2;
                }
                return TokenKind::Punct;
            }
        }
        self.bump_char();
        TokenKind::Punct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("fn main() { let x = 1 + 2.5; }");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "main", "(", ")", "{", "let", "x", "=", "1", "+", "2.5", ";", "}"]
        );
        assert_eq!(toks[8].0, TokenKind::Int);
        assert_eq!(toks[10].0, TokenKind::Float);
    }

    #[test]
    fn hex_literal_is_one_int() {
        let toks = kinds("substream(0xD1CE)");
        assert_eq!(toks[2], (TokenKind::Int, "0xD1CE".to_string()));
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1].1, ".");
    }

    #[test]
    fn range_is_not_float() {
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[2].0, TokenKind::Int);
    }

    #[test]
    fn comparison_operators_are_single_tokens() {
        let toks = kinds("a == b != c <= d");
        assert_eq!(toks[1].1, "==");
        assert_eq!(toks[3].1, "!=");
        assert_eq!(toks[5].1, "<=");
    }
}
