//! Workspace-local name resolution and call-graph approximation.
//!
//! [`Index`] ties the per-file [`crate::syntax`] structure together into
//! the cross-file facts the flow-aware rules need:
//!
//! * **functions by name** — bare and `Type::`-qualified — with their
//!   parsed bodies;
//! * **call sites** per function (`ident (` pairs, keyword-filtered),
//!   plus the reverse map: who calls a given bare name, and from where;
//! * **field initializers** (`name : expr` at the top level of any brace
//!   group), which is how `rng_deadline: substreams::per_site(root,
//!   substreams::DEADLINE, site)` ties a field name to its substream tag;
//! * **guard pools**: for a byte offset, the dominating guard-context
//!   spans ([`crate::syntax::guard_spans`]) expanded by splicing in what
//!   the mentioned names *are* — local binding initializers, field
//!   initializers, and the bodies of small accessor functions (so
//!   `let f = self.fault_mut();` pools `self.fault…expect("fault layer
//!   active")`).
//!
//! # Soundness model
//!
//! Resolution is by *name*, not by type: two methods sharing a bare name
//! are merged, every same-named field is spliced. For guardedness this
//! errs conservative on the call graph (more alleged callers must all be
//! guarded) but permissive on pools (an unrelated same-named field could
//! satisfy a keyword). Guard *polarity* is not tracked either: the pool
//! asks "does a dominating context mention the spec source and its
//! activation predicate", not "with which sign". Both caveats are
//! documented in DESIGN.md §15 and backstopped by the mutation
//! self-tests, which seed a draw with *no* dominating context or caller
//! — a shape no amount of pool permissiveness can mask.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::SourceFile;
use crate::lexer::TokenKind;
use crate::syntax::{self, FileSyntax, FnDef, Span};

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "else",
    "unsafe", "pub", "where", "impl",
];

/// Limits keeping pool expansion bounded and deterministic.
const POOL_ROUNDS: usize = 3;
const POOL_MAX_SPANS: usize = 96;
const SPLICE_FN_MAX_TOKENS: usize = 60;
const CALLER_DEPTH_MAX: usize = 6;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called bare name.
    pub name: String,
    /// Byte offset of the name token.
    pub offset: usize,
    /// Whether the receiver is literally `self.` (enables impl-local
    /// resolution before falling back to every same-named fn).
    pub self_call: bool,
    /// The `Path::` segment directly before the name, when present.
    /// An uppercase qualifier (`HedgeGroup::new`) resolves qualified-only
    /// — a miss means an out-of-workspace type, not "any fn named `new`".
    pub qualifier: Option<String>,
}

/// One function in the index.
#[derive(Debug)]
pub struct FnEntry {
    /// Index into [`Index::files`].
    pub file: usize,
    /// Index into that file's [`FileSyntax::fns`].
    pub local: usize,
    /// Number of code tokens in the body (splice-size gating).
    pub body_tokens: usize,
}

/// A use of a stream-bound name (a potential RNG draw site).
#[derive(Debug, Clone)]
pub struct DrawSite {
    /// Index into [`Index::files`].
    pub file: usize,
    /// Byte offset of the name token.
    pub offset: usize,
    /// The bound name used (`rng_deadline`, `rng_crash`, …).
    pub name: String,
    /// The registry tag the name is bound to (`DEADLINE`, …).
    pub tag: String,
}

/// The workspace-local semantic index. Lifetimes tie it to the engine's
/// [`crate::engine::Workspace`]; build one per rule invocation over the
/// rule's in-scope files.
pub struct Index<'w> {
    /// The indexed files, in the order given to [`Index::build`].
    pub files: Vec<&'w SourceFile>,
    /// Parsed structure per file, parallel to `files`.
    pub syntax: Vec<FileSyntax>,
    /// Every function across all files.
    pub fns: Vec<FnEntry>,
    by_bare: BTreeMap<String, Vec<usize>>,
    by_qualified: BTreeMap<String, Vec<usize>>,
    field_inits: BTreeMap<String, Vec<(usize, Span)>>,
    calls: Vec<Vec<CallSite>>,
    callers: BTreeMap<String, Vec<(usize, usize)>>,
}

impl<'w> Index<'w> {
    /// Parses and indexes `files`. Functions whose definition sits in a
    /// `#[cfg(test)]` region are skipped when `include_tests` is false,
    /// so test-only callers cannot influence guardedness verdicts.
    #[must_use]
    pub fn build(files: Vec<&'w SourceFile>, include_tests: bool) -> Self {
        let mut syntax = Vec::with_capacity(files.len());
        let mut fns = Vec::new();
        let mut by_bare: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let parsed = syntax::parse(&file.text, &file.tokens);
            for (li, def) in parsed.fns.iter().enumerate() {
                if !include_tests && file.in_test_region(def.sig_start) {
                    continue;
                }
                let body_tokens = file
                    .code_tokens()
                    .filter(|t| t.start >= def.body_span.0 && t.end <= def.body_span.1)
                    .count();
                let g = fns.len();
                fns.push(FnEntry {
                    file: fi,
                    local: li,
                    body_tokens,
                });
                by_bare.entry(def.name.clone()).or_default().push(g);
                by_qualified
                    .entry(def.qualified.clone())
                    .or_default()
                    .push(g);
            }
            syntax.push(parsed);
        }
        let mut idx = Index {
            files,
            syntax,
            fns,
            by_bare,
            by_qualified,
            field_inits: BTreeMap::new(),
            calls: Vec::new(),
            callers: BTreeMap::new(),
        };
        idx.scan_field_inits(include_tests);
        idx.scan_calls(include_tests);
        idx
    }

    /// The file and parsed definition of function `g`.
    #[must_use]
    pub fn fn_def(&self, g: usize) -> (&SourceFile, &FnDef) {
        let e = &self.fns[g];
        (self.files[e.file], &self.syntax[e.file].fns[e.local])
    }

    /// Functions with qualified name `name` (`Lp::handle`), falling back
    /// to bare-name matches when `name` has no `::`.
    #[must_use]
    pub fn resolve(&self, name: &str) -> Vec<usize> {
        if name.contains("::") {
            self.by_qualified.get(name).cloned().unwrap_or_default()
        } else {
            self.by_bare.get(name).cloned().unwrap_or_default()
        }
    }

    /// The call sites inside function `g`.
    #[must_use]
    pub fn calls_of(&self, g: usize) -> &[CallSite] {
        &self.calls[g]
    }

    // -- construction ------------------------------------------------

    fn scan_field_inits(&mut self, include_tests: bool) {
        for (fi, file) in self.files.iter().enumerate() {
            let code: Vec<_> = file.code_tokens().collect();
            let mut inits = Vec::new();
            scan_groups(&file.text, &code, 0, code.len(), &mut inits);
            for (name, span) in inits {
                if !include_tests && file.in_test_region(span.0) {
                    continue;
                }
                self.field_inits.entry(name).or_default().push((fi, span));
            }
        }
    }

    fn scan_calls(&mut self, include_tests: bool) {
        self.calls = vec![Vec::new(); self.fns.len()];
        for g in 0..self.fns.len() {
            let e = &self.fns[g];
            let file = self.files[e.file];
            let def = &self.syntax[e.file].fns[e.local];
            let code: Vec<_> = file.code_tokens().collect();
            let mut sites = Vec::new();
            for (i, tok) in code.iter().enumerate() {
                if tok.start < def.body_span.0 || tok.end > def.body_span.1 {
                    continue;
                }
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let name = tok.text(&file.text);
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                if code.get(i + 1).map(|t| t.text(&file.text)) != Some("(") {
                    continue;
                }
                if !include_tests && file.in_test_region(tok.start) {
                    continue;
                }
                // Skip the function's own definition header tokens (a
                // nested fn's name is followed by `(` too).
                if code.get(i.wrapping_sub(1)).map(|t| t.text(&file.text)) == Some("fn") {
                    continue;
                }
                let self_call = i >= 2
                    && code[i - 1].text(&file.text) == "."
                    && code[i - 2].text(&file.text) == "self";
                let qualifier = (i >= 2
                    && code[i - 1].text(&file.text) == "::"
                    && code[i - 2].kind == TokenKind::Ident)
                    .then(|| code[i - 2].text(&file.text).to_string());
                sites.push(CallSite {
                    name: name.to_string(),
                    offset: tok.start,
                    self_call,
                    qualifier,
                });
            }
            // Keep only sites belonging to *this* fn (not a nested fn
            // re-indexed separately).
            let my_fns: Vec<Span> = self.syntax[e.file]
                .fns
                .iter()
                .filter(|other| {
                    other.sig_start != def.sig_start
                        && other.body_span.0 > def.body_span.0
                        && other.body_span.1 <= def.body_span.1
                })
                .map(|other| other.body_span)
                .collect();
            sites.retain(|s| !my_fns.iter().any(|&sp| syntax::span_contains(sp, s.offset)));
            self.calls[g] = sites;
        }
        for (g, sites) in self.calls.iter().enumerate() {
            for site in sites {
                self.callers
                    .entry(site.name.clone())
                    .or_default()
                    .push((g, site.offset));
            }
        }
    }

    // -- guard pools -------------------------------------------------

    /// The guard pool for `offset` inside function `g`: dominating
    /// context spans plus up to [`POOL_ROUNDS`] rounds of name splicing
    /// (binding initializers, field initializers, small fn bodies).
    #[must_use]
    pub fn guard_pool(&self, g: usize, offset: usize) -> Vec<(usize, Span)> {
        let e = &self.fns[g];
        let file = self.files[e.file];
        let def = &self.syntax[e.file].fns[e.local];
        let mut spans: Vec<(usize, Span)> =
            syntax::guard_spans(def, offset, &file.text, &file.tokens)
                .into_iter()
                .map(|s| (e.file, s))
                .collect();
        let mut expanded: BTreeSet<String> = BTreeSet::new();
        for _ in 0..POOL_ROUNDS {
            let mut fresh: BTreeSet<String> = BTreeSet::new();
            for &(fi, span) in &spans {
                for name in self.idents_in(fi, span) {
                    if !expanded.contains(&name) {
                        fresh.insert(name);
                    }
                }
            }
            if fresh.is_empty() || spans.len() >= POOL_MAX_SPANS {
                break;
            }
            let mut added = Vec::new();
            for name in fresh {
                if let Some(init) =
                    syntax::binding_init(def, &name, offset, &file.text, &file.tokens)
                {
                    added.push((e.file, init));
                }
                if let Some(inits) = self.field_inits.get(&name) {
                    for &(fi, span) in inits.iter().take(4) {
                        added.push((fi, span));
                    }
                }
                if let Some(fn_ids) = self.by_bare.get(&name) {
                    for &fg in fn_ids.iter().take(3) {
                        let fe = &self.fns[fg];
                        if fe.body_tokens <= SPLICE_FN_MAX_TOKENS {
                            let fdef = &self.syntax[fe.file].fns[fe.local];
                            added.push((fe.file, fdef.body_span));
                        }
                    }
                }
                expanded.insert(name);
            }
            if added.is_empty() {
                break;
            }
            spans.extend(added);
            spans.truncate(POOL_MAX_SPANS);
        }
        spans
    }

    /// Identifier tokens inside `span` of file `fi`.
    fn idents_in(&self, fi: usize, span: Span) -> Vec<String> {
        let file = self.files[fi];
        file.code_tokens()
            .filter(|t| t.kind == TokenKind::Ident && t.start >= span.0 && t.end <= span.1)
            .map(|t| t.text(&file.text).to_string())
            .collect()
    }

    /// Whether any span in `pool` contains the identifier `name`
    /// (word-boundary: token-exact, not substring).
    #[must_use]
    pub fn pool_has(&self, pool: &[(usize, Span)], name: &str) -> bool {
        pool.iter().any(|&(fi, span)| {
            let file = self.files[fi];
            file.code_tokens().any(|t| {
                t.kind == TokenKind::Ident
                    && t.start >= span.0
                    && t.end <= span.1
                    && t.text(&file.text) == name
            })
        })
    }

    /// Whether the draw (or call) at `offset` in function `g` is
    /// dominated by a guard mentioning one of `sources` *and* one of
    /// `preds` — locally, or at **every** call site of `g` (recursively,
    /// to [`CALLER_DEPTH_MAX`]). A function with no known callers, a
    /// recursion cycle, or an exhausted depth budget is *unguarded*:
    /// every approximation failure surfaces as a finding, never as a
    /// silent pass.
    #[must_use]
    pub fn is_guarded(
        &self,
        g: usize,
        offset: usize,
        sources: &[String],
        preds: &[String],
        depth: usize,
        visiting: &mut BTreeSet<usize>,
    ) -> bool {
        let pool = self.guard_pool(g, offset);
        if sources.iter().any(|s| self.pool_has(&pool, s))
            && preds.iter().any(|p| self.pool_has(&pool, p))
        {
            return true;
        }
        if depth >= CALLER_DEPTH_MAX || !visiting.insert(g) {
            return false;
        }
        let name = &self.fn_def(g).1.name;
        let guarded = match self.callers.get(name.as_str()) {
            None => false,
            Some(sites) if sites.is_empty() => false,
            Some(sites) => sites
                .iter()
                .all(|&(cg, coff)| self.is_guarded(cg, coff, sources, preds, depth + 1, visiting)),
        };
        visiting.remove(&g);
        guarded
    }

    // -- stream bindings and draw sites ------------------------------

    /// Names bound to registry-tagged streams: a field or `let`
    /// initializer whose expression mentions a tag constant binds that
    /// name to the tag (`rng_crash: root.substream(substreams::
    /// FAULT_CRASH)` → `rng_crash` ↦ `FAULT_CRASH`). Each tag mention
    /// binds only the *innermost* enclosing initializer, so an outer
    /// field whose value is a struct literal (`fault: …FaultState {
    /// rng_crash: …, … }`) does not absorb its children's tags.
    #[must_use]
    pub fn stream_bindings(&self, tags: &[String]) -> BTreeMap<String, BTreeSet<String>> {
        // All initializer records: (name, file, span).
        let mut records: Vec<(String, usize, Span)> = Vec::new();
        for (name, inits) in &self.field_inits {
            for &(fi, span) in inits {
                records.push((name.clone(), fi, span));
            }
        }
        for e in &self.fns {
            let def = &self.syntax[e.file].fns[e.local];
            for_each_let(&def.body.stmts, &mut |names, init| {
                for name in names {
                    records.push((name.clone(), e.file, init));
                }
            });
        }
        let mut bound: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for tok in file.code_tokens() {
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let text = tok.text(&file.text);
                let Some(tag) = tags.iter().find(|t| t.as_str() == text) else {
                    continue;
                };
                // Innermost record containing this tag mention wins.
                let winner = records
                    .iter()
                    .filter(|(_, rf, span)| *rf == fi && tok.start >= span.0 && tok.end <= span.1)
                    .min_by_key(|(_, _, span)| span.1 - span.0);
                // Pattern noise (`let Some(x) = …` records `Some` too)
                // must not bind: stream bindings are snake_case names.
                if let Some((name, _, _)) = winner {
                    if name.chars().next().is_some_and(char::is_lowercase) {
                        bound.entry(name.clone()).or_default().insert(tag.clone());
                    }
                }
            }
        }
        bound
    }

    /// Every *use* of a stream-bound name: an identifier token equal to
    /// a bound name that is not a declaration/initializer position
    /// (followed by `:`) and not a rebinding (followed by `=`).
    #[must_use]
    pub fn draw_sites(&self, bindings: &BTreeMap<String, BTreeSet<String>>) -> Vec<DrawSite> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            let code: Vec<_> = file.code_tokens().collect();
            for (i, tok) in code.iter().enumerate() {
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let name = tok.text(&file.text);
                let Some(tags) = bindings.get(name) else {
                    continue;
                };
                let next = code.get(i + 1).map(|t| t.text(&file.text));
                if matches!(next, Some(":" | "=" | ",")) {
                    continue;
                }
                for tag in tags {
                    out.push(DrawSite {
                        file: fi,
                        offset: tok.start,
                        name: name.to_string(),
                        tag: tag.clone(),
                    });
                }
            }
        }
        out
    }

    /// The innermost function containing `offset` in file `fi`.
    #[must_use]
    pub fn enclosing_fn(&self, fi: usize, offset: usize) -> Option<usize> {
        let def = self.syntax[fi].fn_at(offset)?;
        self.fns
            .iter()
            .position(|e| e.file == fi && std::ptr::eq(&self.syntax[e.file].fns[e.local], def))
    }

    /// Functions reachable from `roots` (qualified names) through the
    /// call graph. A `self.`-receiver call first tries the caller's own
    /// impl type (`Lp::helper`) and only falls back to every same-named
    /// function when the impl has none — keeping `Lp::handle`'s closure
    /// from swallowing a same-named global method.
    #[must_use]
    pub fn reachable_from(&self, roots: &[String]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut work: Vec<usize> = roots.iter().flat_map(|r| self.resolve(r)).collect();
        while let Some(g) = work.pop() {
            if !seen.insert(g) {
                continue;
            }
            let impl_ty = {
                let (_, def) = self.fn_def(g);
                def.qualified
                    .rsplit_once("::")
                    .map(|(ty, _)| ty.to_string())
            };
            for site in &self.calls[g] {
                let targets: Vec<usize> = if site.self_call {
                    let local = impl_ty
                        .as_ref()
                        .map(|ty| self.resolve(&format!("{ty}::{}", site.name)))
                        .unwrap_or_default();
                    if local.is_empty() {
                        self.resolve(&site.name)
                    } else {
                        local
                    }
                } else if let Some(q) = &site.qualifier {
                    let q = if q == "Self" {
                        impl_ty.clone().unwrap_or_else(|| q.clone())
                    } else {
                        q.clone()
                    };
                    if q.chars().next().is_some_and(char::is_uppercase) {
                        // Type-qualified: a miss is an external type (or
                        // an enum constructor), not license to merge
                        // every same-named method in the workspace.
                        self.resolve(&format!("{q}::{}", site.name))
                    } else {
                        // Module-qualified (`obs::apply`): module paths
                        // are not tracked, so fall back to the bare name.
                        self.resolve(&site.name)
                    }
                } else {
                    self.resolve(&site.name)
                };
                for t in targets {
                    if !seen.contains(&t) {
                        work.push(t);
                    }
                }
            }
        }
        seen
    }
}

/// Walks every `let` statement (recursively) in `stmts`, invoking `f`
/// with the bound names and the initializer span.
fn for_each_let(stmts: &[syntax::Stmt], f: &mut impl FnMut(&[String], Span)) {
    use syntax::StmtKind;
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let {
                names,
                init,
                nested,
                else_block,
            } => {
                if let Some(init) = init {
                    f(names, *init);
                }
                for_each_let(nested, f);
                if let Some(b) = else_block {
                    for_each_let(&b.stmts, f);
                }
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                for_each_let(&then_block.stmts, f);
                if let Some(b) = else_block {
                    for_each_let(&b.stmts, f);
                }
            }
            StmtKind::Match { arms, .. } => {
                for arm in arms {
                    for_each_let(&arm.body, f);
                }
            }
            StmtKind::Loop { body, .. } | StmtKind::Block(body) => {
                for_each_let(&body.stmts, f);
            }
            StmtKind::Plain { nested } => for_each_let(nested, f),
        }
    }
}

/// Recursively records `name : expr` pairs at the top level of every
/// brace group (struct literals; struct declarations contribute inert
/// type-text noise).
fn scan_groups(
    src: &str,
    code: &[&crate::lexer::Token],
    from: usize,
    end: usize,
    out: &mut Vec<(String, Span)>,
) {
    let mut i = from;
    while i < end {
        match code[i].text(src) {
            "{" => {
                let close = skip_balanced(src, code, i, end);
                scan_brace_children(src, code, i + 1, close.saturating_sub(1), out);
                i = close;
            }
            "(" | "[" => {
                let close = skip_balanced(src, code, i, end);
                scan_groups(src, code, i + 1, close.saturating_sub(1), out);
                i = close;
            }
            _ => i += 1,
        }
    }
}

fn scan_brace_children(
    src: &str,
    code: &[&crate::lexer::Token],
    from: usize,
    end: usize,
    out: &mut Vec<(String, Span)>,
) {
    let mut i = from;
    let mut at_item_start = true;
    while i < end {
        let t = code[i].text(src);
        if at_item_start
            && code[i].kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|n| n.text(src) == ":")
            && i + 2 < end
        {
            let name = t.to_string();
            // The value runs to `,` or `;` at this level.
            let mut j = i + 2;
            while j < end {
                let vt = code[j].text(src);
                if vt == "," || vt == ";" {
                    break;
                }
                if matches!(vt, "(" | "[" | "{") {
                    j = skip_balanced(src, code, j, end);
                } else {
                    j += 1;
                }
            }
            if j > i + 2 {
                out.push((name, (code[i + 2].start, code[j - 1].end)));
                scan_groups(src, code, i + 2, j, out);
            }
            i = (j + 1).min(end);
            at_item_start = true;
            continue;
        }
        match t {
            "{" => {
                let close = skip_balanced(src, code, i, end);
                scan_brace_children(src, code, i + 1, close.saturating_sub(1), out);
                i = close;
                at_item_start = true;
            }
            "(" | "[" => {
                let close = skip_balanced(src, code, i, end);
                scan_groups(src, code, i + 1, close.saturating_sub(1), out);
                i = close;
                at_item_start = false;
            }
            "," | ";" => {
                i += 1;
                at_item_start = true;
            }
            "=>" => {
                i += 1;
                at_item_start = true;
            }
            _ => {
                i += 1;
                at_item_start = false;
            }
        }
    }
}

/// One past the delimiter matching the opener at `open` (bounded by
/// `end`).
fn skip_balanced(src: &str, code: &[&crate::lexer::Token], open: usize, end: usize) -> usize {
    let (o, c) = match code[open].text(src) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        let t = code[i].text(src);
        if t == o {
            depth += 1;
        } else if t == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}
