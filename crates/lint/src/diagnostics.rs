//! Findings, allow records, and their rendering (human and JSON).

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (e.g. `substream-registry`).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub path: PathBuf,
    /// Name of the crate the file belongs to (empty for workspace files).
    pub crate_name: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// Byte offset of the offending token (used for suppression matching).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// Optional `help:` line suggesting the fix.
    pub help: Option<String>,
    /// The source line, for the snippet rendering.
    pub snippet: Option<String>,
}

impl Finding {
    /// Renders the finding in the familiar `path:line:col` compiler shape
    /// with a snippet and caret.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}:{}: {}: {}\n",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        );
        if let Some(snippet) = &self.snippet {
            // Tabs would misalign the caret; the workspace is tab-free
            // (rustfmt), so a space-for-byte caret line is exact.
            out.push_str(&format!("    {snippet}\n"));
            let caret_pad: String = snippet
                .bytes()
                .take(self.col.saturating_sub(1))
                .map(|b| if b == b'\t' { '\t' } else { ' ' })
                .collect();
            out.push_str(&format!("    {caret_pad}^\n"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("    help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sorts findings into a stable, reader-friendly order: by path, then
/// line, then column, then rule name.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
}

/// One justified inline suppression, as recorded by the engine — the
/// machine-readable audit trail behind every silenced finding.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// The rules the comment allows.
    pub rules: Vec<String>,
    /// Path of the file carrying the comment, workspace-relative.
    pub path: PathBuf,
    /// 1-based line of the comment.
    pub line: usize,
    /// The justification text after ` -- `.
    pub justification: String,
    /// How many findings this suppression silenced in this run.
    pub suppressed: usize,
}

/// A full analysis result: surviving findings plus the justified allows
/// encountered along the way.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings that survived suppressions and budgets, sorted.
    pub findings: Vec<Finding>,
    /// Every justified suppression in scanned files, sorted by location.
    pub allows: Vec<AllowRecord>,
}

/// Escapes `s` for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(value: Option<&str>) -> String {
    value.map_or_else(|| "null".to_string(), |v| format!("\"{}\"", json_escape(v)))
}

/// Renders the analysis as a stable machine-readable JSON document:
/// findings and allows in their sorted order, each with rule ids, spans
/// and justification text. Hand-rolled (no serde in the offline
/// container); the shape is pinned by unit tests and a CI parse step.
#[must_use]
pub fn render_json(analysis: &Analysis, root: &Path) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"root\": \"{}\",\n",
        json_escape(&root.display().to_string())
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"crate\": {}, \"line\": {}, \
             \"col\": {}, \"offset\": {}, \"message\": \"{}\", \"help\": {}, \
             \"snippet\": {}}}",
            json_escape(f.rule),
            json_escape(&f.path.display().to_string()),
            json_opt((!f.crate_name.is_empty()).then_some(f.crate_name.as_str())),
            f.line,
            f.col,
            f.offset,
            json_escape(&f.message),
            json_opt(f.help.as_deref()),
            json_opt(f.snippet.as_deref()),
        ));
    }
    out.push_str(if analysis.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"allows\": [");
    for (i, a) in analysis.allows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let rules: Vec<String> = a
            .rules
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect();
        out.push_str(&format!(
            "    {{\"rules\": [{}], \"path\": \"{}\", \"line\": {}, \
             \"justification\": \"{}\", \"suppressed\": {}}}",
            rules.join(", "),
            json_escape(&a.path.display().to_string()),
            a.line,
            json_escape(&a.justification),
            a.suppressed,
        ));
    }
    out.push_str(if analysis.allows.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str(&format!(
        "  \"summary\": {{\"findings\": {}, \"allows\": {}}}\n}}\n",
        analysis.findings.len(),
        analysis.allows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn empty_analysis_renders_empty_arrays() {
        let doc = render_json(&Analysis::default(), Path::new("/ws"));
        assert!(doc.contains("\"version\": 1"));
        assert!(doc.contains("\"findings\": [],"));
        assert!(doc.contains("\"allows\": [],"));
        assert!(doc.contains("\"summary\": {\"findings\": 0, \"allows\": 0}"));
    }

    #[test]
    fn populated_analysis_renders_records() {
        let analysis = Analysis {
            findings: vec![Finding {
                rule: "draw-guardedness",
                path: PathBuf::from("crates/app/src/lib.rs"),
                crate_name: "app".to_string(),
                line: 3,
                col: 9,
                offset: 41,
                message: "draw \"x\" unguarded".to_string(),
                help: None,
                snippet: Some("let x = rng.next();".to_string()),
            }],
            allows: vec![AllowRecord {
                rules: vec!["shard-isolation".to_string()],
                path: PathBuf::from("crates/app/src/lib.rs"),
                line: 7,
                justification: "ShardGate::Deadlines: drained by the executor".to_string(),
                suppressed: 1,
            }],
        };
        let doc = render_json(&analysis, Path::new("/ws"));
        assert!(doc.contains("\"rule\": \"draw-guardedness\""));
        assert!(doc.contains("\"crate\": \"app\""));
        assert!(doc.contains("\"message\": \"draw \\\"x\\\" unguarded\""));
        assert!(doc.contains("\"help\": null"));
        assert!(doc.contains("\"rules\": [\"shard-isolation\"]"));
        assert!(doc.contains("\"suppressed\": 1"));
        assert!(doc.contains("\"summary\": {\"findings\": 1, \"allows\": 1}"));
        // Shape sanity: braces and brackets balance.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = doc.matches(open).count();
            let closes = doc.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }
}
