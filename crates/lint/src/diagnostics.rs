//! Findings and their rendering.

use std::fmt;
use std::path::PathBuf;

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (e.g. `substream-registry`).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub path: PathBuf,
    /// Name of the crate the file belongs to (empty for workspace files).
    pub crate_name: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// Byte offset of the offending token (used for suppression matching).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// Optional `help:` line suggesting the fix.
    pub help: Option<String>,
    /// The source line, for the snippet rendering.
    pub snippet: Option<String>,
}

impl Finding {
    /// Renders the finding in the familiar `path:line:col` compiler shape
    /// with a snippet and caret.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}:{}: {}: {}\n",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        );
        if let Some(snippet) = &self.snippet {
            // Tabs would misalign the caret; the workspace is tab-free
            // (rustfmt), so a space-for-byte caret line is exact.
            out.push_str(&format!("    {snippet}\n"));
            let caret_pad: String = snippet
                .bytes()
                .take(self.col.saturating_sub(1))
                .map(|b| if b == b'\t' { '\t' } else { ' ' })
                .collect();
            out.push_str(&format!("    {caret_pad}^\n"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("    help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sorts findings into a stable, reader-friendly order: by path, then
/// line, then column, then rule name.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
}
