//! The `dqa-lint` binary: lints the workspace and reports findings.
//!
//! ```text
//! cargo run -p dqa-lint --              # report findings, exit 0
//! cargo run -p dqa-lint -- --deny      # exit 1 when there are findings
//! cargo run -p dqa-lint -- --list-rules
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

struct Args {
    deny: bool,
    quiet: bool,
    list_rules: bool,
    format: Format,
    root: Option<PathBuf>,
}

const USAGE: &str = "\
dqa-lint — static determinism/reproducibility checks for the dqa workspace

USAGE:
    dqa-lint [OPTIONS]

OPTIONS:
    --deny            exit non-zero when any finding survives
    --root <PATH>     workspace root (default: nearest ancestor with [workspace])
    --format <FMT>    output format: human (default) or json (findings +
                      justified allows, stable ordering)
    --list-rules      print every rule with its description and exit
    --quiet           print only the summary line, not the findings
    -h, --help        this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        quiet: false,
        list_rules: false,
        format: Format::Human,
        root: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--format" => {
                let fmt = it.next().ok_or("--format requires a value".to_string())?;
                args.format = match fmt.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (human|json)")),
                };
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a path".to_string())?;
                args.root = Some(PathBuf::from(path));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dqa-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in dqa_lint::rules::all() {
            println!("{:<22} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("dqa-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match dqa_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("dqa-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let analysis = match dqa_lint::run_workspace_full(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dqa-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.format == Format::Json {
        print!("{}", dqa_lint::diagnostics::render_json(&analysis, &root));
        return if args.deny && !analysis.findings.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let findings = analysis.findings;
    if !args.quiet {
        for finding in &findings {
            print!("{finding}");
        }
    }
    if findings.is_empty() {
        println!("dqa-lint: clean (0 findings)");
        ExitCode::SUCCESS
    } else {
        println!("dqa-lint: {} finding(s)", findings.len());
        if args.deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
