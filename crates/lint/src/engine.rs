//! Workspace discovery, per-file analysis, suppression handling, and the
//! rule-driving loop.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{Config, RuleConfig};
use crate::diagnostics::{sort_findings, AllowRecord, Analysis, Finding};
use crate::lexer::{self, Token};
use crate::rules;

/// Where a source file sits in its crate — determines which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `src/**` (excluding `src/bin`): library code, fully in scope.
    Lib,
    /// `src/bin/**` or `src/main.rs`: binary code, in scope.
    Bin,
    /// `tests/**`: integration tests, skipped unless `include-tests`.
    Test,
    /// `benches/**`: benchmarks, skipped unless `include-tests`.
    Bench,
    /// `examples/**`: examples, skipped unless `include-tests`.
    Example,
}

impl SourceKind {
    /// Whether the file is test-adjacent (skipped by default).
    #[must_use]
    pub fn is_testish(self) -> bool {
        matches!(
            self,
            SourceKind::Test | SourceKind::Bench | SourceKind::Example
        )
    }
}

/// An inline suppression comment:
/// `// dqa-lint: allow(rule-a, rule-b) -- why this is sound`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules the comment allows.
    pub rules: Vec<String>,
    /// 1-based line the comment sits on; it covers findings on this line
    /// and the next one (so it can trail the offending code or sit on its
    /// own line above it).
    pub line: usize,
    /// The justification after ` -- `; `None` when missing (a finding).
    pub justification: Option<String>,
}

/// One lexed source file plus everything the rules need to know about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (`/`-separated).
    pub rel_path: PathBuf,
    /// The crate the file belongs to (empty for root `tests/`).
    pub crate_name: String,
    /// Where the file sits in its crate.
    pub kind: SourceKind,
    /// The file's text.
    pub text: String,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Byte offsets starting each line.
    pub line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Inline `dqa-lint: allow(...)` comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Whether `offset` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// The 1-based line and column of a byte offset.
    #[must_use]
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        lexer::line_col(&self.line_starts, offset)
    }

    /// The text of the line containing `offset`, newline stripped.
    #[must_use]
    pub fn line_text(&self, offset: usize) -> String {
        let (line, _) = self.line_col(offset);
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&next| next);
        self.text[start..end]
            .trim_end_matches(['\n', '\r'])
            .to_string()
    }

    /// Builds a [`Finding`] anchored at byte `offset`.
    #[must_use]
    pub fn finding(
        &self,
        rule: &'static str,
        offset: usize,
        message: String,
        help: Option<String>,
    ) -> Finding {
        let (line, col) = self.line_col(offset);
        Finding {
            rule,
            path: self.rel_path.clone(),
            crate_name: self.crate_name.clone(),
            line,
            col,
            offset,
            message,
            help,
            snippet: Some(self.line_text(offset)),
        }
    }

    /// The non-comment tokens (what most rules iterate).
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| !t.is_comment())
    }
}

/// The analyzed workspace: every lexed source file, in path order.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All analyzed files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Names of all discovered crates, sorted.
    #[must_use]
    pub fn crate_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .files
            .iter()
            .map(|f| f.crate_name.clone())
            .filter(|n| !n.is_empty())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The file at `rel_path`, if it was scanned.
    #[must_use]
    pub fn file(&self, rel_path: &Path) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Loads and lexes every Rust source in the workspace: each
/// `crates/<dir>/` member's `src/`, `tests/`, `benches/` and the shared
/// root `tests/` and `examples/` directories.
///
/// # Errors
///
/// Returns any I/O error met while walking or reading the tree.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                members.push(path);
            }
        }
    }
    members.sort();
    for member in &members {
        let crate_name = package_name(&member.join("Cargo.toml"))?;
        for (sub, kind) in [
            ("src", SourceKind::Lib),
            ("tests", SourceKind::Test),
            ("benches", SourceKind::Bench),
            ("examples", SourceKind::Example),
        ] {
            collect_sources(root, &member.join(sub), &crate_name, kind, &mut files)?;
        }
    }
    // Shared root-level test and example sources (wired into crates via
    // `[[test]]`/`[[example]]` path entries).
    collect_sources(root, &root.join("tests"), "", SourceKind::Test, &mut files)?;
    collect_sources(
        root,
        &root.join("examples"),
        "",
        SourceKind::Example,
        &mut files,
    )?;
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
    })
}

/// Reads the `name = "…"` of a `[package]` section.
fn package_name(cargo_toml: &Path) -> io::Result<String> {
    let text = fs::read_to_string(cargo_toml)?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Ok(value.trim().trim_matches('"').to_string());
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: no `name` key found", cargo_toml.display()),
    ))
}

fn collect_sources(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: SourceKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `src/bin` demotes Lib to Bin; other nesting keeps the kind.
            let sub_kind = if kind == SourceKind::Lib && path.file_name() == Some("bin".as_ref()) {
                SourceKind::Bin
            } else {
                kind
            };
            collect_sources(root, &path, crate_name, sub_kind, out)?;
        } else if path.extension() == Some("rs".as_ref()) {
            let kind = if kind == SourceKind::Lib && path.file_name() == Some("main.rs".as_ref()) {
                SourceKind::Bin
            } else {
                kind
            };
            out.push(analyze_file(root, &path, crate_name, kind)?);
        }
    }
    Ok(())
}

fn analyze_file(
    root: &Path,
    path: &Path,
    crate_name: &str,
    kind: SourceKind,
) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    let tokens = lexer::lex(&text);
    let line_starts = lexer::line_starts(&text);
    let test_regions = find_test_regions(&text, &tokens);
    let suppressions = find_suppressions(&text, &tokens, &line_starts);
    let rel_path = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    Ok(SourceFile {
        rel_path,
        crate_name: crate_name.to_string(),
        kind,
        text,
        tokens,
        line_starts,
        test_regions,
        suppressions,
    })
}

/// Finds the byte ranges of items annotated `#[cfg(test)]`.
///
/// The scan looks for the attribute token sequence, skips any further
/// attributes, then covers the annotated item: up to the matching `}` of
/// its first brace block (a `mod`/`fn`/`impl` body) or the terminating
/// `;` (e.g. `#[cfg(test)] use …;`).
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_attr(src, &code, i) {
            let start = code[i].start;
            // Skip this and any subsequent attributes (`#[…]` balanced).
            let mut j = i;
            while j < code.len()
                && code[j].text(src) == "#"
                && code.get(j + 1).is_some_and(|t| t.text(src) == "[")
            {
                j = skip_balanced(src, &code, j + 1, "[", "]");
            }
            // Cover the item: first `{`..matching `}`, or a `;`.
            let mut end = code.last().map_or(src.len(), |t| t.end);
            let mut k = j;
            while k < code.len() {
                let t = code[k].text(src);
                if t == "{" {
                    let after = skip_balanced(src, &code, k, "{", "}");
                    end = code.get(after - 1).map_or(end, |t| t.end);
                    break;
                }
                if t == ";" {
                    end = code[k].end;
                    break;
                }
                k += 1;
            }
            regions.push((start, end));
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    regions
}

/// Whether `code[i..]` starts `# [ cfg ( test ) ]` (whitespace-free token
/// match; also accepts `#![cfg(test)]` by skipping a `!`).
fn is_cfg_test_attr(src: &str, code: &[&Token], i: usize) -> bool {
    let mut texts = code[i..].iter().map(|t| t.text(src));
    if texts.next() != Some("#") {
        return false;
    }
    let mut next = texts.next();
    if next == Some("!") {
        next = texts.next();
    }
    next == Some("[")
        && texts.next() == Some("cfg")
        && texts.next() == Some("(")
        && texts.next() == Some("test")
        && texts.next() == Some(")")
}

/// Given `code[open_idx]` being `open`, returns the index one past its
/// matching `close` (or `code.len()` when unbalanced).
fn skip_balanced(src: &str, code: &[&Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < code.len() {
        let t = code[i].text(src);
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    code.len()
}

/// Extracts `dqa-lint: allow(...)` suppression comments. Only plain
/// (non-doc) comments count: doc comments are rendered prose, where the
/// directive syntax may legitimately appear as an *example*.
fn find_suppressions(src: &str, tokens: &[Token], line_starts: &[usize]) -> Vec<Suppression> {
    use crate::lexer::TokenKind;
    let mut out = Vec::new();
    let plain = |t: &&Token| {
        matches!(
            t.kind,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
        )
    };
    for tok in tokens.iter().filter(plain) {
        let text = tok.text(src);
        let Some(idx) = text.find("dqa-lint:") else {
            continue;
        };
        let directive = text[idx + "dqa-lint:".len()..].trim();
        let (line, _) = lexer::line_col(line_starts, tok.start);
        let Some(rest) = directive.strip_prefix("allow") else {
            // An unrecognized directive is still recorded so the engine
            // can flag it rather than silently ignore a typo'd allow.
            out.push(Suppression {
                rules: Vec::new(),
                line,
                justification: None,
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rule_list, justification) = match rest.strip_prefix('(') {
            Some(inner) => match inner.split_once(')') {
                Some((rules, tail)) => {
                    let j = tail
                        .trim()
                        .strip_prefix("--")
                        .map(|j| j.trim().to_string())
                        .filter(|j| !j.is_empty());
                    (rules, j)
                }
                None => (inner, None),
            },
            None => ("", None),
        };
        out.push(Suppression {
            rules: rule_list
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect(),
            line,
            justification,
        });
    }
    out
}

/// Whether a file is in scope for a rule, given the rule's config.
#[must_use]
pub fn file_in_scope(file: &SourceFile, cfg: &RuleConfig) -> bool {
    if !cfg.crates.is_empty() && !cfg.crates.contains(&file.crate_name) {
        return false;
    }
    if !cfg.include_tests && file.kind.is_testish() {
        return false;
    }
    let rel = file.rel_path.to_string_lossy().replace('\\', "/");
    !cfg.allow_paths.iter().any(|p| rel.contains(p.as_str()))
}

/// Runs every rule over the workspace under `root` with `config` and
/// returns the surviving findings, sorted.
///
/// # Errors
///
/// Returns any I/O error met while loading the workspace.
pub fn run(root: &Path, config: &Config) -> io::Result<Vec<Finding>> {
    run_full(root, config).map(|a| a.findings)
}

/// Like [`run`], but also returns the justified-suppression audit trail
/// (for `--format json` and the EXPERIMENTS.md self-audit table).
///
/// # Errors
///
/// Returns any I/O error met while loading the workspace.
pub fn run_full(root: &Path, config: &Config) -> io::Result<Analysis> {
    let workspace = load_workspace(root)?;
    let mut findings = Vec::new();

    // Meta pass: malformed suppressions are findings themselves, so an
    // allow() without a justification cannot silently disable a rule.
    let known: Vec<&str> = rules::all().iter().map(|r| r.name()).collect();
    for file in &workspace.files {
        for sup in &file.suppressions {
            let offset = file.line_starts[sup.line - 1];
            if sup.rules.is_empty() {
                findings.push(file.finding(
                    rules::META_RULE,
                    offset,
                    "malformed dqa-lint directive (expected `dqa-lint: allow(<rule>) -- <why>`)"
                        .to_string(),
                    None,
                ));
                continue;
            }
            if sup.justification.is_none() {
                findings.push(file.finding(
                    rules::META_RULE,
                    offset,
                    format!(
                        "suppression of `{}` carries no justification",
                        sup.rules.join(", ")
                    ),
                    Some("append ` -- <why this is sound>` to the allow comment".to_string()),
                ));
            }
            for rule in &sup.rules {
                if !known.contains(&rule.as_str()) {
                    findings.push(file.finding(
                        rules::META_RULE,
                        offset,
                        format!("allow() names unknown rule `{rule}`"),
                        Some(format!("known rules: {}", known.join(", "))),
                    ));
                }
            }
        }
    }

    for rule in rules::all() {
        let cfg = config.rule(rule.name());
        if !cfg.enabled.unwrap_or(true) {
            continue;
        }
        let mut rule_findings = Vec::new();
        for file in workspace.files.iter().filter(|f| file_in_scope(f, &cfg)) {
            rule.check_file(file, &cfg, &mut rule_findings);
        }
        rule.check_workspace(&workspace, &cfg, &mut rule_findings);
        // Drop findings inside `#[cfg(test)]` regions unless opted in.
        if !cfg.include_tests {
            rule_findings.retain(|f| {
                workspace
                    .file(&f.path)
                    .is_none_or(|file| !file.in_test_region(f.offset))
            });
        }
        findings.append(&mut rule_findings);
    }

    // Honor justified suppressions (unjustified ones were flagged above
    // and do NOT silence anything), counting what each one silenced for
    // the allow audit trail.
    let mut suppressed: std::collections::BTreeMap<(PathBuf, usize), usize> =
        std::collections::BTreeMap::new();
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        if f.rule == rules::META_RULE {
            kept.push(f);
            continue;
        }
        let hit = workspace.file(&f.path).and_then(|file| {
            file.suppressions
                .iter()
                .find(|sup| {
                    sup.justification.is_some()
                        && (sup.line == f.line || sup.line + 1 == f.line)
                        && sup.rules.iter().any(|r| r == f.rule)
                })
                .map(|sup| sup.line)
        });
        match hit {
            Some(line) => *suppressed.entry((f.path.clone(), line)).or_insert(0) += 1,
            None => kept.push(f),
        }
    }
    let mut findings = kept;

    // Budget semantics for unwrap-budget: a crate within its configured
    // budget reports nothing; one over it reports every site.
    rules::unwrap_budget::apply_budget(&mut findings, &config.rule(rules::unwrap_budget::NAME));

    sort_findings(&mut findings);

    let mut allows: Vec<AllowRecord> = workspace
        .files
        .iter()
        .flat_map(|file| {
            file.suppressions.iter().filter_map(|sup| {
                let justification = sup.justification.clone()?;
                Some(AllowRecord {
                    rules: sup.rules.clone(),
                    path: file.rel_path.clone(),
                    line: sup.line,
                    justification,
                    suppressed: suppressed
                        .get(&(file.rel_path.clone(), sup.line))
                        .copied()
                        .unwrap_or(0),
                })
            })
        })
        .collect();
    allows.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    Ok(Analysis { findings, allows })
}
