//! # dqa-lint — determinism and reproducibility invariants, enforced at the source level
//!
//! The repo's headline guarantee is *byte-identical replication under
//! common random numbers*: the paper's policy comparisons (and our
//! bitwise `RunReport` equality tests) assume that changing one knob
//! perturbs only the draws that knob owns. That property is easy to
//! break silently — iterate a `HashMap` in the event loop, reuse an RNG
//! substream tag, read `Instant::now()` in model code — and the runtime
//! tests only catch the breakage after the fact, with no pointer to the
//! offending line.
//!
//! `dqa-lint` is a from-scratch, dependency-free static-analysis pass
//! that catches these at the source level:
//!
//! * a hand-rolled Rust [`lexer`] (raw strings, nested block comments,
//!   `'a` vs `'a'`, doc comments) producing a token stream with spans;
//! * an [`engine`] with per-crate scoping, a `lint.toml` [`config`], and
//!   inline `// dqa-lint: allow(<rule>) -- <why>` suppressions that must
//!   carry a justification;
//! * a [`rules`] set targeting our invariants: `substream-registry`,
//!   `no-hash-iteration`, `no-wall-clock`, `no-float-eq`,
//!   `forbid-unsafe-header`, `unwrap-budget`.
//!
//! Run it locally with `cargo run -p dqa-lint -- --deny`; CI runs the
//! same command, and a tier-1 integration test asserts the workspace is
//! finding-free, so the linter itself is regression-gated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diagnostics;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod syntax;

use std::io;
use std::path::{Path, PathBuf};

/// Loads `lint.toml` from `root` (an empty default config if absent) and
/// runs every rule, returning the surviving findings sorted by location.
///
/// # Errors
///
/// Returns an error for unreadable sources or an invalid `lint.toml`.
pub fn run_workspace(root: &Path) -> Result<Vec<diagnostics::Finding>, Box<dyn std::error::Error>> {
    run_workspace_full(root).map(|a| a.findings)
}

/// Like [`run_workspace`], but also returns the justified-suppression
/// audit trail (what `--format json` emits).
///
/// # Errors
///
/// Returns an error for unreadable sources or an invalid `lint.toml`.
pub fn run_workspace_full(
    root: &Path,
) -> Result<diagnostics::Analysis, Box<dyn std::error::Error>> {
    let config_path = root.join("lint.toml");
    let config = if config_path.is_file() {
        config::parse(&std::fs::read_to_string(&config_path)?)?
    } else {
        config::Config::default()
    };
    Ok(engine::run_full(root, &config)?)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
///
/// # Errors
///
/// Returns [`io::ErrorKind::NotFound`] when no ancestor qualifies.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("no workspace Cargo.toml found above {}", start.display()),
    ))
}
