//! `lint.toml` parsing.
//!
//! The container this tool runs in is offline, so there is no `toml`
//! crate to lean on. Instead `dqa-lint` reads a small, strictly-checked
//! TOML subset — more than enough for a lint config, and unknown syntax
//! is a hard error rather than something silently ignored:
//!
//! * `[section.sub]` headers;
//! * `key = "string"`, `key = 42`, `key = true`/`false`;
//! * `key = ["a", "b"]` single-line string arrays;
//! * `#` comments and blank lines.
//!
//! The interpreted shape is one [`RuleConfig`] per `[rules.<name>]`
//! section, plus per-crate integer budgets from
//! `[rules.<name>.budgets]`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of quoted strings.
    StrArray(Vec<String>),
}

/// Configuration for one rule, from `[rules.<name>]`.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `enabled = false` turns the rule off entirely.
    pub enabled: Option<bool>,
    /// Crates the rule applies to. Empty means "every crate".
    pub crates: Vec<String>,
    /// Path substrings exempt from the rule (workspace-relative,
    /// `/`-separated; matched with `contains`).
    pub allow_paths: Vec<String>,
    /// Whether the rule also applies to test code (`tests/`, `benches/`,
    /// `examples/` and `#[cfg(test)]` regions). Default: false.
    pub include_tests: bool,
    /// Rule-specific string options (e.g. `registry` for
    /// `substream-registry`).
    pub options: BTreeMap<String, String>,
    /// Per-crate integer budgets from `[rules.<name>.budgets]`.
    pub budgets: BTreeMap<String, i64>,
}

/// The whole `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Per-rule sections, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// The configuration for `rule`, or a default one if the file has no
    /// section for it.
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }
}

/// A configuration syntax or shape error, with its line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses `lint.toml` text into a [`Config`].
///
/// # Errors
///
/// Returns [`ConfigError`] on syntax outside the supported subset, on an
/// unknown key inside a `[rules.*]` section, or on a value of the wrong
/// type.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    // (rule name, is_budgets) of the currently open section; None until
    // the first header or for ignored top-level keys.
    let mut section: Option<(String, bool)> = None;

    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unclosed section header"))?
                .trim();
            let parts: Vec<&str> = header.split('.').map(str::trim).collect();
            section = Some(match parts.as_slice() {
                ["rules", rule] => ((*rule).to_string(), false),
                ["rules", rule, "budgets"] => ((*rule).to_string(), true),
                _ => {
                    return Err(err(
                        lineno,
                        format!("unsupported section `[{header}]` (expected `[rules.<name>]` or `[rules.<name>.budgets]`)"),
                    ))
                }
            });
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim();
        let value = parse_value(value_text.trim(), lineno)?;
        let Some((rule, is_budgets)) = &section else {
            return Err(err(lineno, "key outside any `[rules.*]` section"));
        };
        let rule_config = config.rules.entry(rule.clone()).or_default();
        if *is_budgets {
            match value {
                Value::Int(n) => {
                    rule_config.budgets.insert(key.to_string(), n);
                }
                _ => return Err(err(lineno, format!("budget `{key}` must be an integer"))),
            }
            continue;
        }
        match (key, value) {
            ("enabled", Value::Bool(b)) => rule_config.enabled = Some(b),
            ("crates", Value::StrArray(v)) => rule_config.crates = v,
            ("allow-paths", Value::StrArray(v)) => rule_config.allow_paths = v,
            ("include-tests", Value::Bool(b)) => rule_config.include_tests = b,
            (k, Value::Str(s)) => {
                rule_config.options.insert(k.to_string(), s);
            }
            (k, v) => {
                return Err(err(
                    lineno,
                    format!("unsupported key/value `{k} = {v:?}` in `[rules.{rule}]`"),
                ))
            }
        }
    }
    Ok(config)
}

/// Strips a trailing `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "arrays must open and close on one line"))?
            .trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue; // tolerate a trailing comma
                }
                match parse_value(item, lineno)? {
                    Value::Str(s) => items.push(s),
                    _ => return Err(err(lineno, "arrays may only contain strings")),
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        if body.contains('"') {
            return Err(err(lineno, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    let digits = text.replace('_', "");
    if let Ok(n) = digits.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(err(lineno, format!("cannot parse value `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rule_sections() {
        let cfg = parse(
            r#"
# top comment
[rules.no-wall-clock]
crates = ["dqa-core", "dqa-sim"]
enabled = true

[rules.unwrap-budget]
include-tests = false
[rules.unwrap-budget.budgets]
dqa-core = 49
"#,
        )
        .expect("parses");
        let wc = cfg.rule("no-wall-clock");
        assert_eq!(wc.crates, ["dqa-core", "dqa-sim"]);
        assert_eq!(wc.enabled, Some(true));
        let ub = cfg.rule("unwrap-budget");
        assert_eq!(ub.budgets.get("dqa-core"), Some(&49));
    }

    #[test]
    fn rejects_unknown_sections_and_bad_values() {
        assert!(parse("[weird]\n").is_err());
        assert!(parse("[rules.x]\ncrates = [1, 2]\n").is_err());
        assert!(parse("loose = true\n").is_err());
    }

    #[test]
    fn comments_respect_strings() {
        let cfg = parse("[rules.x]\nregistry = \"a#b\" # trailing\n").expect("parses");
        assert_eq!(
            cfg.rule("x").options.get("registry").map(String::as_str),
            Some("a#b")
        );
    }
}
