//! `unwrap-budget`: `.unwrap()`/`.expect()` in library code is budgeted
//! per crate and ratcheted down, never up.
//!
//! Why: a panic inside the simulator kills a whole replicated experiment,
//! and `unwrap()` carries no record of the invariant it assumes. The
//! codebase predates this linter, so an outright ban would mean hundreds
//! of mechanical rewrites in one PR; instead each crate gets an audited
//! budget in `lint.toml` frozen at its current count. New code that adds
//! a site pushes the crate over budget and fails the lint — the author
//! either handles the error or consciously lowers somewhere else. CI
//! keeps the ratchet honest.
//!
//! Sites under `#[cfg(test)]`, in `tests/`/`benches/`/`examples/`, or in
//! doc-comment code fences never count.

use std::collections::BTreeMap;

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See the module docs.
pub struct UnwrapBudget;

/// The rule name.
pub const NAME: &str = "unwrap-budget";

impl Rule for UnwrapBudget {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "per-crate ratchet on .unwrap()/.expect() sites in library code"
    }

    fn check_file(&self, file: &SourceFile, _cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let code: Vec<_> = file.code_tokens().collect();
        for window in code.windows(3) {
            let [dot, name, paren] = window else { continue };
            if dot.text(&file.text) == "."
                && name.kind == TokenKind::Ident
                && paren.text(&file.text) == "("
            {
                let method = name.text(&file.text);
                if method == "unwrap" || method == "expect" {
                    out.push(
                        file.finding(
                            NAME,
                            name.start,
                            format!("`.{method}()` in library code"),
                            Some(
                                "handle the error, or absorb the site into the crate's \
                             lint.toml budget knowingly"
                                    .to_string(),
                            ),
                        ),
                    );
                }
            }
        }
    }
}

/// Applies the per-crate budgets: if a crate's finding count is within
/// its budget the findings are dropped; if over, every site is reported
/// plus one summary finding naming the budget. Call after suppression
/// filtering so justified allows don't count against the budget.
pub fn apply_budget(findings: &mut Vec<Finding>, cfg: &RuleConfig) {
    let mut per_crate: BTreeMap<String, usize> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.rule == NAME) {
        *per_crate.entry(f.crate_name.clone()).or_default() += 1;
    }
    let mut summaries = Vec::new();
    findings.retain(|f| {
        if f.rule != NAME {
            return true;
        }
        let count = per_crate[&f.crate_name];
        let budget = cfg.budgets.get(&f.crate_name).copied().unwrap_or(0).max(0) as usize;
        count > budget
    });
    for (crate_name, count) in &per_crate {
        let budget = cfg.budgets.get(crate_name).copied().unwrap_or(0).max(0) as usize;
        if *count > budget {
            summaries.push(Finding {
                rule: NAME,
                path: format!("crates ({crate_name})").into(),
                crate_name: crate_name.clone(),
                line: 0,
                col: 0,
                offset: 0,
                message: format!(
                    "crate `{crate_name}` has {count} unwrap/expect sites, budget is {budget}"
                ),
                help: Some(
                    "fix sites down to the budget, or raise the budget in lint.toml with a \
                     comment explaining why"
                        .to_string(),
                ),
                snippet: None,
            });
        }
    }
    findings.append(&mut summaries);
}
