//! The rule set. Each rule enforces one determinism or reproducibility
//! invariant; see `DESIGN.md` §10 for the failure mode behind each.

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::{SourceFile, Workspace};

pub mod draw_guardedness;
pub mod forbid_unsafe_header;
pub mod no_float_eq;
pub mod no_hash_iteration;
pub mod no_wall_clock;
pub mod shard_isolation;
pub mod substream_registry;
pub mod unwrap_budget;

/// The name findings about malformed/unjustified suppressions carry.
/// Not a configurable rule: it guards the suppression mechanism itself.
pub const META_RULE: &str = "suppression-hygiene";

/// One static-analysis rule.
pub trait Rule {
    /// The rule's kebab-case name, as used in `lint.toml` and `allow()`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Per-file pass over files the engine scoped in.
    fn check_file(&self, _file: &SourceFile, _cfg: &RuleConfig, _out: &mut Vec<Finding>) {}
    /// Workspace-level pass (cross-file invariants).
    fn check_workspace(&self, _ws: &Workspace, _cfg: &RuleConfig, _out: &mut Vec<Finding>) {}
}

/// Every rule, in reporting order.
#[must_use]
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(substream_registry::SubstreamRegistry),
        Box::new(draw_guardedness::DrawGuardedness),
        Box::new(shard_isolation::ShardIsolation),
        Box::new(no_hash_iteration::NoHashIteration),
        Box::new(no_wall_clock::NoWallClock),
        Box::new(no_float_eq::NoFloatEq),
        Box::new(forbid_unsafe_header::ForbidUnsafeHeader),
        Box::new(unwrap_budget::UnwrapBudget),
    ]
}
