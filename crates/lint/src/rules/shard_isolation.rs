//! `shard-isolation`: per-site event-handler code must not touch
//! cross-site state except through the `EventSink` abstraction.
//!
//! Why: the parallel-in-time executor (DESIGN.md §12) runs one logical
//! process per site inside barrier-synchronized windows; its
//! byte-identity with the serial schedule rests on LP event handlers
//! being *site-local* — every cross-site effect must flow through the
//! `EventSink` so the router can order it deterministically. The hand-
//! maintained `ShardGate` refusal list names the features that still
//! break this (deadlines, admission, redundancy); this rule makes the
//! list auditable: each gated feature maps to concrete flagged accesses,
//! and a future PR adding a new cross-site touch trips a finding before
//! it silently breaks byte-identity.
//!
//! Configuration (`lint.toml`, `[rules.shard-isolation]`):
//!
//! ```toml
//! roots = "Lp::handle"                      # event-handler entry points
//! fields = "cross, deferred"                # cross-site state fields
//! gates = "Deadlines, Admission, Redundancy" # ShardGate variants
//! ```
//!
//! A `.field` access inside any function reachable from a root (through
//! the workspace call-graph approximation) is a finding, unless
//! suppressed with a justification naming the owning gate:
//! `// dqa-lint: allow(shard-isolation) -- ShardGate::Deadlines: …`.
//! A workspace pass then audits the other direction: every configured
//! gate must be claimed by at least one such justification — a gate
//! nobody claims is stale (its feature became shardable, or its accesses
//! moved) and must be re-audited.

use std::collections::BTreeSet;
use std::path::Path;

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::{file_in_scope, SourceFile, Workspace};
use crate::graph::Index;
use crate::rules::Rule;

/// See the module docs.
pub struct ShardIsolation;

/// The rule name.
pub const NAME: &str = "shard-isolation";

fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect()
}

impl Rule for ShardIsolation {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "Lp-reachable code must reach cross-site state only via EventSink (ShardGate audit)"
    }

    fn check_workspace(&self, ws: &Workspace, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let roots = cfg
            .options
            .get("roots")
            .map_or_else(|| vec!["Lp::handle".to_string()], |s| split_list(s));
        let fields = cfg
            .options
            .get("fields")
            .map_or_else(Vec::new, |s| split_list(s));
        let gates = cfg
            .options
            .get("gates")
            .map_or_else(Vec::new, |s| split_list(s));
        if fields.is_empty() {
            return;
        }
        let files: Vec<&SourceFile> = ws.files.iter().filter(|f| file_in_scope(f, cfg)).collect();
        if files.is_empty() {
            return;
        }
        let idx = Index::build(files, cfg.include_tests);
        let reachable = idx.reachable_from(&roots);
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &g in &reachable {
            let (file, def) = idx.fn_def(g);
            let code: Vec<_> = file.code_tokens().collect();
            for (i, tok) in code.iter().enumerate() {
                if tok.start < def.body_span.0 || tok.end > def.body_span.1 {
                    continue;
                }
                let name = tok.text(&file.text);
                if !fields.iter().any(|f| f == name) {
                    continue;
                }
                // Only `.field` accesses count (`..` is a distinct range
                // token, so a single `.` is exact); `deferred: Vec::new()`
                // initializers and local variables of the same name do
                // not touch the shared field.
                if i == 0 || code[i - 1].text(&file.text) != "." {
                    continue;
                }
                if !reported.insert((idx.fns[g].file, tok.start)) {
                    continue;
                }
                out.push(
                    file.finding(
                        NAME,
                        tok.start,
                        format!(
                            "cross-site state `.{name}` touched in `{}`, reachable from shard \
                         root(s) {}",
                            def.qualified,
                            roots.join(", "),
                        ),
                        Some(
                            "route the effect through the EventSink, or justify with \
                         `dqa-lint: allow(shard-isolation) -- ShardGate::<Gate>: <why>` \
                         naming the gate that keeps this feature cross-site-synchronous"
                                .to_string(),
                        ),
                    ),
                );
            }
        }
        audit_gates(&gates, ws, cfg, out);
    }
}

/// The reverse audit: every configured `ShardGate` variant must be
/// claimed by at least one justified `shard-isolation` suppression, so
/// the refusal list in `shardable()` cannot drift from the accesses that
/// motivate it.
fn audit_gates(gates: &[String], ws: &Workspace, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    if gates.is_empty() {
        return;
    }
    let mut claimed: BTreeSet<&str> = BTreeSet::new();
    for file in ws.files.iter().filter(|f| file_in_scope(f, cfg)) {
        for sup in &file.suppressions {
            if !sup.rules.iter().any(|r| r == NAME) {
                continue;
            }
            let Some(just) = &sup.justification else {
                continue;
            };
            for gate in gates {
                if just.contains(&format!("ShardGate::{gate}")) {
                    claimed.insert(gate);
                }
            }
        }
    }
    for gate in gates {
        if claimed.contains(gate.as_str()) {
            continue;
        }
        // Anchor at the ShardGate declaration so the finding names a
        // real location; offset 0 keeps it out of reach of a trailing
        // suppression comment.
        let anchor = ws
            .files
            .iter()
            .find(|f| f.text.contains("enum ShardGate"))
            .map_or_else(
                || Path::new("lint.toml").to_path_buf(),
                |f| f.rel_path.clone(),
            );
        out.push(Finding {
            rule: NAME,
            path: anchor,
            crate_name: String::new(),
            line: 1,
            col: 1,
            offset: 0,
            message: format!(
                "ShardGate::{gate} is configured but no justified shard-isolation \
                 suppression claims it"
            ),
            help: Some(
                "either the gated feature became shardable (remove the gate from \
                 lint.toml and shardable()) or its accesses moved — re-audit and \
                 re-claim with `-- ShardGate::…` justifications"
                    .to_string(),
            ),
            snippet: None,
        });
    }
}
