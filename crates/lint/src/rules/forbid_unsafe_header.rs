//! `forbid-unsafe-header`: every library crate keeps
//! `#![forbid(unsafe_code)]` at the top of its `lib.rs`.
//!
//! Why: the reproduction's guarantees are argued in safe Rust — no data
//! races in the parallel executor, no aliasing games in the slot arena.
//! `forbid` (unlike `deny`) cannot be overridden further down the tree,
//! so its presence in the crate root is a one-line proof obligation the
//! linter can check syntactically.

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::{SourceKind, Workspace};
use crate::rules::Rule;

/// See the module docs.
pub struct ForbidUnsafeHeader;

/// The rule name.
pub const NAME: &str = "forbid-unsafe-header";

impl Rule for ForbidUnsafeHeader {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "every library crate's lib.rs carries #![forbid(unsafe_code)]"
    }

    fn check_workspace(&self, ws: &Workspace, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != SourceKind::Lib || file.rel_path.file_name() != Some("lib.rs".as_ref())
            {
                continue;
            }
            if !cfg.crates.is_empty() && !cfg.crates.contains(&file.crate_name) {
                continue;
            }
            // Look for the `forbid ( unsafe_code )` token run anywhere in
            // the file; the attribute shape around it (`#![…]`) is
            // guaranteed by the compiler once the tokens are present.
            let code: Vec<_> = file.code_tokens().collect();
            let found = code.windows(4).any(|w| {
                w[0].text(&file.text) == "forbid"
                    && w[1].text(&file.text) == "("
                    && w[2].text(&file.text) == "unsafe_code"
                    && w[3].text(&file.text) == ")"
            });
            if !found {
                out.push(
                    file.finding(
                        NAME,
                        0,
                        format!(
                            "crate `{}` lacks #![forbid(unsafe_code)] in its crate root",
                            file.crate_name
                        ),
                        Some(
                            "add `#![forbid(unsafe_code)]` next to the crate's other inner \
                         attributes"
                                .to_string(),
                        ),
                    ),
                );
            }
        }
    }
}
