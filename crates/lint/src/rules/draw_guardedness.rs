//! `draw-guardedness`: every RNG draw on an extension substream must be
//! dominated by its layer's activation guard.
//!
//! Why: the CRN invariant behind every comparative claim in this repo is
//! *"inert specs draw nothing"* — a run with the fault/deadline/arrival/
//! user/redundancy layer disabled must be byte-identical to the seed
//! trajectory. PRs 4, 8 and 9 each proved that at runtime for the
//! configurations their tests happened to enumerate; this rule proves it
//! statically for **all** configurations: a draw from a stream bound to
//! an extension tag (`DEADLINE`, `FAULT_*`, `ARRIVAL`, …) must sit under
//! a dominating guard that mentions the owning spec *and* its activation
//! predicate — in the same function, or at every call site leading to
//! it.
//!
//! Configuration (`lint.toml`, `[rules.draw-guardedness]`): one option
//! per tracked tag,
//!
//! ```toml
//! guard-DEADLINE = "deadlines : is_active"
//! guard-FAULT_CRASH = "fault, faults : mtbf, mttr, is_active"
//! ```
//!
//! reading *sources* `:` *predicates* — a guard context passes when its
//! expanded pool ([`crate::graph::Index::guard_pool`]) contains at least
//! one source identifier and one predicate identifier (token-exact).
//! Tags without a `guard-` option are not tracked.
//!
//! Soundness caveats (DESIGN.md §15): guard *polarity* is not checked
//! (`if !active { draw }` would pass the pool test), and same-named
//! fields/functions are merged by the name-resolution approximation.
//! The mutation self-test pins the honest failure mode: a seeded draw
//! with no dominating context and no caller is always a finding.

use std::collections::BTreeSet;

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::{file_in_scope, SourceFile, Workspace};
use crate::graph::Index;
use crate::rules::Rule;

/// See the module docs.
pub struct DrawGuardedness;

/// The rule name.
pub const NAME: &str = "draw-guardedness";

/// One tracked tag's guard vocabulary.
struct GuardSpec {
    tag: String,
    sources: Vec<String>,
    preds: Vec<String>,
}

/// Parses `guard-<TAG> = "a, b : c, d"` options into guard specs.
fn guard_specs(cfg: &RuleConfig) -> Vec<GuardSpec> {
    let mut specs = Vec::new();
    for (key, value) in &cfg.options {
        let Some(tag) = key.strip_prefix("guard-") else {
            continue;
        };
        let (sources, preds) = value.split_once(':').unwrap_or((value.as_str(), ""));
        let split = |s: &str| -> Vec<String> {
            s.split(',')
                .map(str::trim)
                .filter(|w| !w.is_empty())
                .map(str::to_string)
                .collect()
        };
        specs.push(GuardSpec {
            tag: tag.to_string(),
            sources: split(sources),
            preds: split(preds),
        });
    }
    specs
}

impl Rule for DrawGuardedness {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "extension-substream draws must be dominated by the layer's is_active() guard"
    }

    fn check_workspace(&self, ws: &Workspace, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let specs = guard_specs(cfg);
        if specs.is_empty() {
            return;
        }
        let files: Vec<&SourceFile> = ws.files.iter().filter(|f| file_in_scope(f, cfg)).collect();
        if files.is_empty() {
            return;
        }
        let idx = Index::build(files, cfg.include_tests);
        let tags: Vec<String> = specs.iter().map(|s| s.tag.clone()).collect();
        let bindings = idx.stream_bindings(&tags);
        let mut reported: BTreeSet<(usize, usize, String)> = BTreeSet::new();
        for site in idx.draw_sites(&bindings) {
            let Some(spec) = specs.iter().find(|s| s.tag == site.tag) else {
                continue;
            };
            let file = idx.files[site.file];
            let (line, _) = file.line_col(site.offset);
            if !reported.insert((site.file, line, site.tag.clone())) {
                continue;
            }
            let guarded = idx.enclosing_fn(site.file, site.offset).is_some_and(|g| {
                idx.is_guarded(
                    g,
                    site.offset,
                    &spec.sources,
                    &spec.preds,
                    0,
                    &mut BTreeSet::new(),
                )
            });
            if guarded {
                continue;
            }
            out.push(file.finding(
                NAME,
                site.offset,
                format!(
                    "draw on substream {} via `{}` is not dominated by its activation guard",
                    site.tag, site.name
                ),
                Some(format!(
                    "dominate the draw (here or at every call site) with a guard mentioning \
                     one of [{}] and one of [{}], or justify with an inline allow",
                    spec.sources.join(", "),
                    spec.preds.join(", "),
                )),
            ));
        }
    }
}
