//! `substream-registry`: RNG substream tags must be named constants from
//! the central registry, and registered tags must be unique.
//!
//! Why: the CRN (common random numbers) methodology — and every bitwise
//! `RunReport` identity test — relies on each consumer drawing from its
//! own substream. A magic numeric tag at a call site can silently collide
//! with another consumer's tag, correlating draws that the experiments
//! assume independent. Forcing every tag through
//! `dqa_core::substreams` makes a collision a lint error instead of a
//! subtly-wrong experiment.
//!
//! The rule also rejects *non-constant* tags outside the registry file
//! (`substream(site)`, `substream(self.tag)`, hand-rolled
//! `substream(tag).substream(index)` chains): per-site stream
//! derivation — the partitioning the parallel-in-time executor's
//! byte-identity rests on (DESIGN.md §12) — must go through the
//! registry's `per_site` helper, so the registry stays the single place
//! where derivation structure is defined. A registered tag is
//! recognized by its SCREAMING_CASE path segment.

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::{SourceFile, Workspace};
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See the module docs.
pub struct SubstreamRegistry;

/// The rule name.
pub const NAME: &str = "substream-registry";

impl Rule for SubstreamRegistry {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "substream() tags must be named dqa_core::substreams constants, unique in the registry"
    }

    fn check_file(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let registry_path = cfg
            .options
            .get("registry")
            .map_or("crates/core/src/substreams.rs", String::as_str);
        // The registry file itself derives child streams from variable
        // tags (that is its job); everywhere else the tag must be a
        // registered constant.
        let in_registry = file.rel_path == std::path::Path::new(registry_path);
        let code: Vec<_> = file.code_tokens().collect();
        for (i, window) in code.windows(3).enumerate() {
            let [a, b, c] = window else { continue };
            if !(a.kind == TokenKind::Ident
                && a.text(&file.text) == "substream"
                && b.text(&file.text) == "(")
            {
                continue;
            }
            if matches!(c.kind, TokenKind::Int | TokenKind::Float) {
                out.push(
                    file.finding(
                        NAME,
                        c.start,
                        format!(
                            "substream() called with numeric literal `{}`",
                            c.text(&file.text)
                        ),
                        Some(
                            "register a named tag in dqa_core::substreams and use it here; \
                         the registry is the only place tag values may appear"
                                .to_string(),
                        ),
                    ),
                );
            } else if c.kind == TokenKind::Ident && !in_registry {
                // Resolve the argument's path (`a::b::TAG`) and judge
                // its final segment: registered tags are SCREAMING_CASE
                // constants, anything else is a variable-tag derivation
                // that belongs in the registry's per_site helper.
                let last = last_path_segment(&code, i + 2, &file.text);
                if !is_screaming_case(last) {
                    out.push(
                        file.finding(
                            NAME,
                            c.start,
                            format!("substream() tag `{last}` is not a registry constant"),
                            Some(
                                "pass a dqa_core::substreams constant; derive per-site \
                             children via substreams::per_site so the derivation \
                             structure stays defined in the registry"
                                    .to_string(),
                            ),
                        ),
                    );
                }
            }
        }
    }

    fn check_workspace(&self, ws: &Workspace, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let registry_path = cfg
            .options
            .get("registry")
            .map_or("crates/core/src/substreams.rs", String::as_str);
        let Some(file) = ws.file(std::path::Path::new(registry_path)) else {
            // No scanned registry file: every tag in the workspace is then
            // unregistered, which the per-file pass already reports, but
            // the missing registry itself deserves a loud finding.
            out.push(Finding {
                rule: NAME,
                path: registry_path.into(),
                crate_name: String::new(),
                line: 1,
                col: 1,
                offset: 0,
                message: "substream tag registry file not found in workspace scan".to_string(),
                help: Some(
                    "create the registry module or point `registry` in lint.toml at it".to_string(),
                ),
                snippet: None,
            });
            return;
        };
        // Collect `const NAME: u64 = <int>;` declarations and check the
        // tag values are pairwise distinct.
        let code: Vec<_> = file.code_tokens().collect();
        let mut seen: Vec<(u64, String, usize)> = Vec::new();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokenKind::Ident || tok.text(&file.text) != "const" {
                continue;
            }
            let Some(name_tok) = code.get(i + 1) else {
                continue;
            };
            // const NAME : u64 = <int> ;
            let Some(value_tok) = code.get(i + 5) else {
                continue;
            };
            if code.get(i + 2).map(|t| t.text(&file.text)) != Some(":")
                || code.get(i + 4).map(|t| t.text(&file.text)) != Some("=")
                || value_tok.kind != TokenKind::Int
            {
                continue;
            }
            let Some(value) = parse_int(value_tok.text(&file.text)) else {
                continue;
            };
            let name = name_tok.text(&file.text).to_string();
            if let Some((_, first, _)) = seen.iter().find(|(v, _, _)| *v == value) {
                out.push(file.finding(
                    NAME,
                    value_tok.start,
                    format!("substream tag {value} registered twice: `{first}` and `{name}`"),
                    Some("every consumer needs its own tag; pick an unused value".to_string()),
                ));
            }
            seen.push((value, name, value_tok.start));
        }
    }
}

/// Walks a `::`-separated path starting at `code[start]` and returns the
/// final identifier segment (`crate::substreams::THINK` → `THINK`;
/// a bare `site` → `site`).
fn last_path_segment<'t>(code: &[&crate::lexer::Token], start: usize, text: &'t str) -> &'t str {
    let mut i = start;
    loop {
        match (code.get(i + 1), code.get(i + 2)) {
            (Some(sep), Some(next)) if sep.text(text) == "::" && next.kind == TokenKind::Ident => {
                i += 2;
            }
            _ => break,
        }
    }
    code[i].text(text)
}

/// Whether an identifier looks like a registered tag constant:
/// uppercase letters, digits and underscores, with at least one letter.
fn is_screaming_case(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// Parses a Rust integer literal (decimal or `0x`/`0o`/`0b`, with `_`
/// separators and an optional type suffix).
#[must_use]
pub fn parse_int(text: &str) -> Option<u64> {
    let clean = text.replace('_', "");
    let (radix, digits) = match clean.as_bytes() {
        [b'0', b'x' | b'X', ..] => (16, &clean[2..]),
        [b'0', b'o' | b'O', ..] => (8, &clean[2..]),
        [b'0', b'b' | b'B', ..] => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    // Strip a type suffix (`u64`, `usize`, …): for radix 16 a suffix can
    // only start at `u`/`i` (hex digits include a–f), for radix 10 at any
    // alphabetic character.
    let end = digits
        .find(|c: char| match radix {
            16 => matches!(c, 'u' | 'i' | 'U' | 'I'),
            _ => c.is_alphabetic(),
        })
        .unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}
