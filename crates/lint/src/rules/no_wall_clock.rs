//! `no-wall-clock`: no `Instant::now`/`SystemTime` outside timing code.
//!
//! Why: the simulator's only clock is `dqa_sim::SimTime`, advanced by the
//! event loop. Wall-clock reads inside model or kernel code smuggle
//! host-machine state into a run: two replications of the same seed then
//! disagree, and the CRN byte-identity guarantee is gone. Wall time is
//! legitimate only where we *measure the simulator itself* — the bench
//! crate's `timing` module — which is scoped out in `lint.toml`.

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See the module docs.
pub struct NoWallClock;

/// The rule name.
pub const NAME: &str = "no-wall-clock";

impl Rule for NoWallClock {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "no Instant/SystemTime outside timing/bench code (wall time is nondeterministic)"
    }

    fn check_file(&self, file: &SourceFile, _cfg: &RuleConfig, out: &mut Vec<Finding>) {
        for tok in file.code_tokens() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = tok.text(&file.text);
            if text == "Instant" || text == "SystemTime" {
                out.push(
                    file.finding(
                        NAME,
                        tok.start,
                        format!("`{text}` referenced in deterministic code"),
                        Some(
                            "simulation code must read time only from dqa_sim::SimTime; \
                         wall-clock measurement belongs in the bench crate's timing module"
                                .to_string(),
                        ),
                    ),
                );
            }
        }
    }
}
