//! `no-hash-iteration`: no `HashMap`/`HashSet` in model-path crates.
//!
//! Why: `std` hash containers iterate in an order derived from SipHash
//! keys that are randomized per process. Any iteration over one inside
//! the simulation model makes event order — and therefore every RNG draw
//! after it — depend on the process, destroying byte-identical
//! replication. Because whether a given container is *eventually*
//! iterated is not decidable token-locally, the rule over-approximates
//! and bans the types outright in the configured crates; deterministic
//! code wants `BTreeMap`/`BTreeSet`, a `Vec`, or a slot arena anyway
//! (cf. `dqa_core::query::QueryTable`).

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See the module docs.
pub struct NoHashIteration;

/// The rule name.
pub const NAME: &str = "no-hash-iteration";

impl Rule for NoHashIteration {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet in model-path crates (iteration order is nondeterministic)"
    }

    fn check_file(&self, file: &SourceFile, _cfg: &RuleConfig, out: &mut Vec<Finding>) {
        for tok in file.code_tokens() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = tok.text(&file.text);
            if text == "HashMap" || text == "HashSet" {
                out.push(
                    file.finding(
                        NAME,
                        tok.start,
                        format!("`{text}` in a deterministic model path"),
                        Some(
                            "hash iteration order is per-process random and breaks byte-identical \
                         replication; use BTreeMap/BTreeSet, a Vec, or a slot arena"
                                .to_string(),
                        ),
                    ),
                );
            }
        }
    }
}
