//! `no-float-eq`: no `==`/`!=` against float literals.
//!
//! Why: exact float comparison is almost always a latent bug — a value
//! that "should" be `0.3` after arithmetic rarely is — and in this
//! codebase a wrong branch taken on a float comparison changes the event
//! trajectory silently rather than failing a test. The rule fires when
//! either operand next to `==`/`!=` is a float literal or an `f32`/`f64`
//! cast; comparisons used as *exact sentinels* (a config value of `0.0`
//! meaning "disabled", never computed) are the legitimate exception and
//! must carry an `allow` with justification.
//!
//! (Float-typed *variables* compared to each other are invisible to a
//! token-level pass; those are covered by review and clippy's
//! `float_cmp` when available. The literal form is the common case and
//! the one a lexer can catch exactly.)

use crate::config::RuleConfig;
use crate::diagnostics::Finding;
use crate::engine::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::Rule;

/// See the module docs.
pub struct NoFloatEq;

/// The rule name.
pub const NAME: &str = "no-float-eq";

impl Rule for NoFloatEq {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "no ==/!= with a float-literal or f32/f64-cast operand"
    }

    fn check_file(&self, file: &SourceFile, _cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let code: Vec<_> = file.code_tokens().collect();
        for (i, tok) in code.iter().enumerate() {
            let op = tok.text(&file.text);
            if tok.kind != TokenKind::Punct || (op != "==" && op != "!=") {
                continue;
            }
            let prev_float = i > 0 && is_floatish(&file.text, &code, i - 1);
            let next_float = code
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Float)
                // `x == y as f64`: the cast is two tokens after the op.
                || (code.get(i + 2).map(|t| t.text(&file.text)) == Some("as")
                    && code
                        .get(i + 3)
                        .is_some_and(|t| matches!(t.text(&file.text), "f32" | "f64")));
            if prev_float || next_float {
                out.push(
                    file.finding(
                        NAME,
                        tok.start,
                        format!("`{op}` compares against a float"),
                        Some(
                            "exact float equality is usually a latent bug; compare with a \
                         tolerance, or justify an exact-sentinel comparison with an allow"
                                .to_string(),
                        ),
                    ),
                );
            }
        }
    }
}

/// Whether `code[i]` ends a float-valued operand: a float literal, or the
/// `f32`/`f64` of an `as` cast.
fn is_floatish(src: &str, code: &[&crate::lexer::Token], i: usize) -> bool {
    let tok = code[i];
    if tok.kind == TokenKind::Float {
        return true;
    }
    tok.kind == TokenKind::Ident
        && matches!(tok.text(src), "f32" | "f64")
        && i >= 1
        && code[i - 1].text(src) == "as"
}
