//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ArgError {}

/// Parsed `--flag value` pairs, with typed accessors that consume flags so
/// leftovers can be reported as errors.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--flag value` pairs from raw arguments.
    ///
    /// # Errors
    ///
    /// Rejects positional arguments, flags without values, and repeated
    /// flags.
    pub fn parse(raw: &[String]) -> Result<Args, ArgError> {
        let mut values = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(token) = it.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument `{token}` (flags are --name value)"
                )));
            };
            let Some(value) = it.next() else {
                return Err(ArgError(format!("flag --{name} is missing a value")));
            };
            if values.insert(name.to_owned(), value.clone()).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
        }
        Ok(Args { values })
    }

    /// Removes and returns a flag's raw value.
    pub fn take(&mut self, name: &str) -> Option<String> {
        self.values.remove(name)
    }

    /// Removes and parses a flag, or returns `default`.
    ///
    /// # Errors
    ///
    /// Reports unparsable values with the flag name.
    pub fn take_or<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.values.remove(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ArgError(format!("invalid value for --{name}: {e}"))),
        }
    }

    /// Removes and parses an optional flag.
    ///
    /// # Errors
    ///
    /// Reports unparsable values with the flag name.
    pub fn take_opt<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.values.remove(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| ArgError(format!("invalid value for --{name}: {e}"))),
        }
    }

    /// Re-serializes the remaining flags as raw `--flag value` tokens
    /// (used by `sweep` to re-parse the shared flags per point).
    #[must_use]
    pub fn to_raw(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.values.len() * 2);
        for (k, v) in &self.values {
            out.push(format!("--{k}"));
            out.push(v.clone());
        }
        out
    }

    /// Errors if any flags were not consumed (catches typos).
    ///
    /// # Errors
    ///
    /// Lists the unrecognized flags.
    pub fn finish(self) -> Result<(), ArgError> {
        if self.values.is_empty() {
            Ok(())
        } else {
            let names: Vec<String> = self.values.keys().map(|k| format!("--{k}")).collect();
            Err(ArgError(format!("unknown flags: {}", names.join(", "))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let mut a = Args::parse(&raw(&["--sites", "6", "--policy", "lert"])).unwrap();
        assert_eq!(a.take_or("sites", 0usize).unwrap(), 6);
        assert_eq!(a.take("policy").as_deref(), Some("lert"));
        a.finish().unwrap();
    }

    #[test]
    fn defaults_apply_when_absent() {
        let mut a = Args::parse(&raw(&[])).unwrap();
        assert_eq!(a.take_or("mpl", 20u32).unwrap(), 20);
        assert_eq!(a.take_opt::<f64>("think").unwrap(), None);
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&raw(&["oops"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::parse(&raw(&["--sites"])).is_err());
    }

    #[test]
    fn rejects_duplicate() {
        assert!(Args::parse(&raw(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn rejects_bad_parse() {
        let mut a = Args::parse(&raw(&["--sites", "many"])).unwrap();
        assert!(a.take_or("sites", 0usize).is_err());
    }

    #[test]
    fn finish_reports_leftovers() {
        let a = Args::parse(&raw(&["--bogus", "1"])).unwrap();
        let err = a.finish().unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }
}
