//! Shared flag handling: building [`SystemParams`] and policies from
//! command-line flags.

use dqa_core::params::{
    AdmissionSpec, ArrivalSpec, DeadlineSpec, DiskChoice, FaultSpec, MessageCosting, MigrationSpec,
    RedundancySpec, SheddingMode, SuspicionSpec, SystemParams, UserSpec, Workload,
};
use dqa_core::policy::PolicyKind;

use crate::args::{ArgError, Args};

/// Parses a policy name (case-insensitive). `threshold:K` selects the
/// THRESHOLD policy with threshold `K`.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn parse_policy(name: &str) -> Result<PolicyKind, ArgError> {
    let lower = name.to_ascii_lowercase();
    if let Some(t) = lower.strip_prefix("threshold:") {
        let t = t
            .parse()
            .map_err(|e| ArgError(format!("invalid threshold in `{name}`: {e}")))?;
        return Ok(PolicyKind::Threshold(t));
    }
    match lower.as_str() {
        "local" => Ok(PolicyKind::Local),
        "bnq" => Ok(PolicyKind::Bnq),
        "bnqrd" => Ok(PolicyKind::Bnqrd),
        "lert" => Ok(PolicyKind::Lert),
        "random" => Ok(PolicyKind::Random),
        "lert-nonet" => Ok(PolicyKind::LertNoNet),
        "wlc" => Ok(PolicyKind::Wlc),
        _ => Err(ArgError(format!(
            "unknown policy `{name}` (expected local, bnq, bnqrd, lert, random, \
             lert-nonet, wlc, or threshold:K)"
        ))),
    }
}

/// Consumes the system-parameter flags shared by every simulation
/// subcommand and builds validated [`SystemParams`].
///
/// Flags (all optional, defaults are the paper's base configuration):
/// `--sites`, `--disks`, `--mpl`, `--think`, `--io-prob`, `--io-cpu`,
/// `--cpu-cpu`, `--msg`, `--reads`, `--disk-choice random|rr|jsq`,
/// `--estimate-error`, `--status-period`, `--status-msg`, `--relations`,
/// `--copies`, `--migrate every,gain,growth`, and the fault-injection
/// family `--fault-mtbf`, `--fault-mttr`, `--msg-loss`, `--status-loss`,
/// `--fault-retries`, `--fault-backoff`, `--partition-at`,
/// `--partition-for`, `--partition-groups` (any of which enables the
/// fault layer; unspecified members take [`FaultSpec::default`] values).
///
/// Resilience layers (each family independently optional):
/// deadlines via `--deadline-mean`, `--deadline-floor`,
/// `--deadline-retries`, `--deadline-backoff`; failure suspicion via
/// `--suspect-after`, `--suspect-probation` (requires a costed status
/// broadcast); admission control via `--admission-cap`,
/// `--admission-queue`, `--admission-mode reject|redirect|drop`,
/// `--admission-retries`, `--admission-backoff`; redundancy-aware
/// dispatch via `--redundancy N` (the replication level, active at 2+)
/// with refinements `--redundancy-prob`, `--redundancy-load-cap`,
/// `--redundancy-full-frac`.
///
/// Live-service layers (require `--open-rate`): time-varying arrivals
/// via `--live-diurnal AMP` (+ `--live-period P`),
/// `--live-flash at,for,mult`, `--live-burst mult,on,off` (any of which
/// enables the nonhomogeneous arrival kernel); the user population via
/// `--live-users N` with refinements `--live-zipf`, `--live-session`,
/// `--live-affinity`.
///
/// # Errors
///
/// Propagates parse failures and parameter-validation failures with the
/// offending flag named.
pub fn take_params(args: &mut Args) -> Result<SystemParams, ArgError> {
    let mut b = SystemParams::builder();
    b = b.num_sites(args.take_or("sites", 6usize)?);
    b = b.num_disks(args.take_or("disks", 2u32)?);
    b = b.mpl(args.take_or("mpl", 20u32)?);
    b = b.think_time(args.take_or("think", 350.0f64)?);
    b = b.two_class(
        args.take_or("io-prob", 0.5f64)?,
        args.take_or("io-cpu", 0.05f64)?,
        args.take_or("cpu-cpu", 1.0f64)?,
    );
    b = b.msg_length(args.take_or("msg", 1.0f64)?);
    if let Some(reads) = args.take_opt::<f64>("reads")? {
        let mut params = b.build().map_err(|e| ArgError(e.to_string()))?;
        for class in &mut params.classes {
            class.num_reads = reads;
        }
        b = builder_from(params);
    }
    if let Some(choice) = args.take("disk-choice") {
        let parsed = match choice.as_str() {
            "random" => DiskChoice::Random,
            "rr" | "round-robin" => DiskChoice::RoundRobin,
            "jsq" | "shortest-queue" => DiskChoice::ShortestQueue,
            other => {
                return Err(ArgError(format!(
                    "unknown disk choice `{other}` (expected random, rr, jsq)"
                )))
            }
        };
        b = b.disk_choice(parsed);
    }
    b = b.estimate_error(args.take_or("estimate-error", 0.0f64)?);
    b = b.status_period(args.take_or("status-period", 0.0f64)?);
    b = b.status_msg_length(args.take_or("status-msg", 0.0f64)?);
    b = b.num_relations(args.take_or("relations", 12usize)?);
    if let Some(copies) = args.take_opt::<u32>("copies")? {
        b = b.copies(Some(copies));
    }
    if let Some(spec) = args.take("detailed-msg") {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != 2 {
            return Err(ArgError(format!(
                "--detailed-msg expects `msg_time,page_size`, got `{spec}`"
            )));
        }
        let msg_time = parts[0]
            .parse()
            .map_err(|e| ArgError(format!("invalid msg_time: {e}")))?;
        let page_size = parts[1]
            .parse()
            .map_err(|e| ArgError(format!("invalid page_size: {e}")))?;
        b = b.message_costing(MessageCosting::Detailed {
            msg_time,
            page_size,
        });
    }
    if let Some(rate) = args.take_opt::<f64>("open-rate")? {
        b = b.workload(Workload::Open { arrival_rate: rate });
    }
    b = b.update_fraction(args.take_or("update-frac", 0.0f64)?);
    b = b.propagation_factor(args.take_or("prop-factor", 0.5f64)?);
    if let Some(speeds) = args.take("cpu-speeds") {
        let parsed: Result<Vec<f64>, _> = speeds.split(',').map(str::parse).collect();
        let parsed = parsed.map_err(|e| ArgError(format!("invalid --cpu-speeds list: {e}")))?;
        b = b.cpu_speeds(Some(parsed));
    }
    // Fault-injection flags: any one of them switches the layer on.
    let fault_mtbf = args.take_opt::<f64>("fault-mtbf")?;
    let fault_mttr = args.take_opt::<f64>("fault-mttr")?;
    let msg_loss = args.take_opt::<f64>("msg-loss")?;
    let status_loss = args.take_opt::<f64>("status-loss")?;
    let fault_retries = args.take_opt::<u32>("fault-retries")?;
    let fault_backoff = args.take_opt::<f64>("fault-backoff")?;
    let partition_at = args.take_opt::<f64>("partition-at")?;
    let partition_for = args.take_opt::<f64>("partition-for")?;
    let partition_groups = args.take_opt::<u32>("partition-groups")?;
    if (partition_for.is_some_and(|v| v > 0.0) || partition_at.is_some())
        && partition_groups.is_none_or(|g| g < 2)
    {
        return Err(ArgError(
            "an injected partition needs --partition-groups of at least 2 \
             alongside --partition-at/--partition-for"
                .into(),
        ));
    }
    if partition_groups.is_some_and(|g| g >= 2) && !partition_for.is_some_and(|v| v > 0.0) {
        return Err(ArgError(
            "--partition-groups does nothing without a positive --partition-for \
             (the partition's duration)"
                .into(),
        ));
    }
    if fault_mtbf.is_some()
        || fault_mttr.is_some()
        || msg_loss.is_some()
        || status_loss.is_some()
        || fault_retries.is_some()
        || fault_backoff.is_some()
        || partition_at.is_some()
        || partition_for.is_some()
        || partition_groups.is_some()
    {
        let defaults = FaultSpec::default();
        b = b.faults(Some(FaultSpec {
            mtbf: fault_mtbf.unwrap_or(defaults.mtbf),
            mttr: fault_mttr.unwrap_or(defaults.mttr),
            msg_loss: msg_loss.unwrap_or(defaults.msg_loss),
            status_loss: status_loss.unwrap_or(defaults.status_loss),
            max_retries: fault_retries.unwrap_or(defaults.max_retries),
            backoff_base: fault_backoff.unwrap_or(defaults.backoff_base),
            partition_at: partition_at.unwrap_or(defaults.partition_at),
            partition_for: partition_for.unwrap_or(defaults.partition_for),
            partition_groups: partition_groups.unwrap_or(defaults.partition_groups),
        }));
    }
    // Deadline flags: --deadline-mean switches the layer on; the others
    // refine it and are meaningless (and rejected) without it.
    let deadline_mean = args.take_opt::<f64>("deadline-mean")?;
    let deadline_floor = args.take_opt::<f64>("deadline-floor")?;
    let deadline_retries = args.take_opt::<u32>("deadline-retries")?;
    let deadline_backoff = args.take_opt::<f64>("deadline-backoff")?;
    let deadline_active = deadline_mean.is_some_and(|m| m > 0.0);
    if !deadline_active
        && (deadline_floor.is_some() || deadline_retries.is_some() || deadline_backoff.is_some())
    {
        let given = if deadline_mean.is_some() {
            "--deadline-mean 0 disables deadlines"
        } else {
            "no --deadline-mean was given"
        };
        return Err(ArgError(format!(
            "--deadline-floor/--deadline-retries/--deadline-backoff have no effect \
             because {given}; set --deadline-mean to a positive value to enable \
             deadlines, or drop the other deadline flags"
        )));
    }
    if deadline_active {
        let defaults = DeadlineSpec::default();
        b = b.deadlines(Some(DeadlineSpec {
            mean: deadline_mean.unwrap_or(defaults.mean),
            floor: deadline_floor.unwrap_or(defaults.floor),
            max_reallocations: deadline_retries.unwrap_or(defaults.max_reallocations),
            backoff_base: deadline_backoff.unwrap_or(defaults.backoff_base),
        }));
    }
    // Suspicion flags: either one switches the detector on.
    let suspect_after = args.take_opt::<u32>("suspect-after")?;
    let suspect_probation = args.take_opt::<u32>("suspect-probation")?;
    if suspect_after.is_some() || suspect_probation.is_some() {
        let defaults = SuspicionSpec::default();
        b = b.suspicion(Some(SuspicionSpec {
            threshold: suspect_after.unwrap_or(defaults.threshold),
            probation: suspect_probation.unwrap_or(defaults.probation),
        }));
    }
    // Admission flags: a cap or a queue limit switches the layer on; the
    // shedding mode and retry knobs refine it.
    let admission_cap = args.take_opt::<u32>("admission-cap")?;
    let admission_queue = args.take_opt::<u32>("admission-queue")?;
    let admission_mode = args.take("admission-mode");
    let admission_retries = args.take_opt::<u32>("admission-retries")?;
    let admission_backoff = args.take_opt::<f64>("admission-backoff")?;
    if admission_cap == Some(0) {
        return Err(ArgError(
            "--admission-cap must be at least 1 (a cap of 0 would admit nothing); \
             omit the flag to disable the MPL cap"
                .into(),
        ));
    }
    if admission_queue == Some(0) {
        return Err(ArgError(
            "--admission-queue must be at least 1 (a limit of 0 would admit \
             nothing); omit the flag to disable the queue limit"
                .into(),
        ));
    }
    if admission_cap.is_some() || admission_queue.is_some() {
        let mode = match admission_mode.as_deref() {
            None | Some("reject") => SheddingMode::RejectRetry,
            Some("redirect") => SheddingMode::Redirect,
            Some("drop") => SheddingMode::Drop,
            Some(other) => {
                return Err(ArgError(format!(
                    "unknown admission mode `{other}` (expected reject, redirect, drop)"
                )))
            }
        };
        let defaults = AdmissionSpec::default();
        b = b.admission(Some(AdmissionSpec {
            mpl_cap: admission_cap,
            queue_limit: admission_queue,
            mode,
            max_retries: admission_retries.unwrap_or(defaults.max_retries),
            backoff_base: admission_backoff.unwrap_or(defaults.backoff_base),
        }));
    } else if admission_mode.is_some() || admission_retries.is_some() || admission_backoff.is_some()
    {
        return Err(ArgError(
            "--admission-mode/--admission-retries/--admission-backoff have no \
             effect without --admission-cap or --admission-queue; add a cap or \
             a queue limit to enable admission control"
                .into(),
        ));
    }
    // Redundancy flags: --redundancy (the replication level n) switches
    // hedged dispatch on at n >= 2; the refinements tune the hedge coin
    // and the load-adaptive controller and are meaningless (and
    // rejected) without it. A bare `--redundancy 1` keeps an inert spec
    // in the params — useful for byte-identity checks, since an inert
    // spec draws nothing from the RNG.
    let redundancy = args.take_opt::<u32>("redundancy")?;
    let redundancy_prob = args.take_opt::<f64>("redundancy-prob")?;
    let redundancy_load_cap = args.take_opt::<f64>("redundancy-load-cap")?;
    let redundancy_full_frac = args.take_opt::<f64>("redundancy-full-frac")?;
    let redundancy_active = redundancy.is_some_and(|n| n >= 2);
    if !redundancy_active
        && (redundancy_prob.is_some()
            || redundancy_load_cap.is_some()
            || redundancy_full_frac.is_some())
    {
        let given = if redundancy.is_some() {
            "--redundancy below 2 disables hedging"
        } else {
            "no --redundancy was given"
        };
        return Err(ArgError(format!(
            "--redundancy-prob/--redundancy-load-cap/--redundancy-full-frac have \
             no effect because {given}; set --redundancy to at least 2 to enable \
             hedged dispatch, or drop the refinement flags"
        )));
    }
    if let Some(level) = redundancy {
        let defaults = RedundancySpec::default();
        b = b.redundancy(Some(RedundancySpec {
            max_level: level,
            hedge_prob: redundancy_prob.unwrap_or(defaults.hedge_prob),
            load_threshold: redundancy_load_cap.unwrap_or(defaults.load_threshold),
            full_threshold: redundancy_full_frac.unwrap_or(defaults.full_threshold),
        }));
    }
    // Live-service arrival flags: any of --live-diurnal, --live-flash,
    // --live-burst switches the time-varying arrival layer on.
    let live_diurnal = args.take_opt::<f64>("live-diurnal")?;
    let live_period = args.take_opt::<f64>("live-period")?;
    let live_flash = args.take("live-flash");
    let live_burst = args.take("live-burst");
    if live_period.is_some() && live_diurnal.is_none() {
        return Err(ArgError(
            "--live-period has no effect without --live-diurnal (the diurnal \
             amplitude); add --live-diurnal or drop --live-period"
                .into(),
        ));
    }
    if live_diurnal.is_some() || live_flash.is_some() || live_burst.is_some() {
        let mut spec = ArrivalSpec::default();
        if let Some(amp) = live_diurnal {
            spec.diurnal_amplitude = amp;
        }
        if let Some(period) = live_period {
            spec.diurnal_period = period;
        }
        if let Some(flash) = live_flash {
            let parts: Vec<&str> = flash.split(',').collect();
            if parts.len() != 3 {
                return Err(ArgError(format!(
                    "--live-flash expects `at,for,mult`, got `{flash}`"
                )));
            }
            spec.flash_at = parts[0]
                .parse()
                .map_err(|e| ArgError(format!("invalid flash start: {e}")))?;
            spec.flash_for = parts[1]
                .parse()
                .map_err(|e| ArgError(format!("invalid flash duration: {e}")))?;
            spec.flash_multiplier = parts[2]
                .parse()
                .map_err(|e| ArgError(format!("invalid flash multiplier: {e}")))?;
        }
        if let Some(burst) = live_burst {
            let parts: Vec<&str> = burst.split(',').collect();
            if parts.len() != 3 {
                return Err(ArgError(format!(
                    "--live-burst expects `mult,on,off`, got `{burst}`"
                )));
            }
            spec.burst_multiplier = parts[0]
                .parse()
                .map_err(|e| ArgError(format!("invalid burst multiplier: {e}")))?;
            spec.burst_on_mean = parts[1]
                .parse()
                .map_err(|e| ArgError(format!("invalid burst on-dwell: {e}")))?;
            spec.burst_off_mean = parts[2]
                .parse()
                .map_err(|e| ArgError(format!("invalid burst off-dwell: {e}")))?;
        }
        b = b.arrivals(Some(spec));
    }
    // User-population flags: --live-users switches the population on; the
    // others refine it and are meaningless without it.
    let live_users = args.take_opt::<u64>("live-users")?;
    let live_zipf = args.take_opt::<f64>("live-zipf")?;
    let live_session = args.take_opt::<f64>("live-session")?;
    let live_affinity = args.take_opt::<f64>("live-affinity")?;
    if live_users.is_none_or(|n| n == 0)
        && (live_zipf.is_some() || live_session.is_some() || live_affinity.is_some())
    {
        let given = if live_users.is_some() {
            "--live-users 0 disables the population"
        } else {
            "no --live-users was given"
        };
        return Err(ArgError(format!(
            "--live-zipf/--live-session/--live-affinity have no effect because \
             {given}; set --live-users to a positive count to enable the user \
             population, or drop the other live-user flags"
        )));
    }
    if live_users.is_some_and(|n| n > 0) {
        let defaults = UserSpec::default();
        b = b.users(Some(UserSpec {
            total_users: live_users.unwrap_or(0),
            zipf_exponent: live_zipf.unwrap_or(defaults.zipf_exponent),
            session_mean: live_session.unwrap_or(defaults.session_mean),
            class_affinity: live_affinity.unwrap_or(defaults.class_affinity),
        }));
    }
    if let Some(spec) = args.take("migrate") {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != 3 {
            return Err(ArgError(format!(
                "--migrate expects `every,gain,growth`, got `{spec}`"
            )));
        }
        let every = parts[0]
            .parse()
            .map_err(|e| ArgError(format!("invalid migrate interval: {e}")))?;
        let gain = parts[1]
            .parse()
            .map_err(|e| ArgError(format!("invalid migrate gain: {e}")))?;
        let growth = parts[2]
            .parse()
            .map_err(|e| ArgError(format!("invalid migrate growth: {e}")))?;
        b = b.migration(Some(MigrationSpec {
            check_every_reads: every,
            min_gain: gain,
            state_growth: growth,
        }));
    }
    b.build().map_err(|e| ArgError(e.to_string()))
}

/// Consumes the `--jobs` flag shared by every simulation subcommand.
///
/// Returns the requested worker count without applying it, so that unit
/// tests can validate parsing without mutating the process-wide setting;
/// callers pass the value to [`dqa_core::parallel::set_jobs`]. When the
/// flag is absent the resolution order of [`dqa_core::parallel::jobs`]
/// applies (the `DQA_JOBS` environment variable, then the detected
/// parallelism), and `--jobs 1` takes the exact serial code path.
///
/// # Errors
///
/// Rejects `--jobs 0` and non-numeric values.
pub fn take_jobs(args: &mut Args) -> Result<Option<usize>, ArgError> {
    match args.take_opt::<usize>("jobs")? {
        Some(0) => Err(ArgError("--jobs must be at least 1".into())),
        other => Ok(other),
    }
}

/// Rebuilds a builder from already-validated parameters (used when a flag
/// must mutate a field the builder does not expose directly).
fn builder_from(params: SystemParams) -> dqa_core::params::SystemParamsBuilder {
    // The builder starts at paper_base; replay every field.
    let mut b = SystemParams::builder()
        .num_sites(params.num_sites)
        .num_disks(params.num_disks)
        .disk_time(params.disk_time)
        .disk_time_dev(params.disk_time_dev)
        .mpl(params.mpl)
        .think_time(params.think_time)
        .classes(params.classes)
        .msg_length(params.msg_length)
        .message_costing(params.message_costing)
        .disk_choice(params.disk_choice)
        .estimate_error(params.estimate_error)
        .status_period(params.status_period)
        .status_msg_length(params.status_msg_length)
        .num_relations(params.num_relations)
        .copies(params.copies)
        .workload(params.workload)
        .update_fraction(params.update_fraction)
        .propagation_factor(params.propagation_factor)
        .cpu_speeds(params.cpu_speeds)
        .faults(params.faults)
        .deadlines(params.deadlines)
        .suspicion(params.suspicion)
        .admission(params.admission)
        .redundancy(params.redundancy)
        .arrivals(params.arrivals)
        .users(params.users);
    b = b.migration(params.migration);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| (*x).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn policy_names_parse() {
        assert_eq!(parse_policy("LERT").unwrap(), PolicyKind::Lert);
        assert_eq!(parse_policy("local").unwrap(), PolicyKind::Local);
        assert_eq!(
            parse_policy("threshold:4").unwrap(),
            PolicyKind::Threshold(4)
        );
        assert!(parse_policy("nope").is_err());
    }

    #[test]
    fn default_params_are_paper_base() {
        let mut a = args(&[]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p, SystemParams::paper_base());
    }

    #[test]
    fn flags_override_fields() {
        let mut a = args(&[
            "--sites",
            "8",
            "--mpl",
            "25",
            "--think",
            "200",
            "--io-prob",
            "0.3",
            "--copies",
            "2",
            "--reads",
            "40",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.num_sites, 8);
        assert_eq!(p.mpl, 25);
        assert_eq!(p.think_time, 200.0);
        assert_eq!(p.classes[0].probability, 0.3);
        assert_eq!(p.copies, Some(2));
        assert_eq!(p.classes[0].num_reads, 40.0);
        assert_eq!(p.classes[1].num_reads, 40.0);
    }

    #[test]
    fn update_and_speed_flags_parse() {
        let mut a = args(&[
            "--update-frac",
            "0.2",
            "--prop-factor",
            "0.25",
            "--cpu-speeds",
            "2,1,1,1,0.5,0.5",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.update_fraction, 0.2);
        assert_eq!(p.propagation_factor, 0.25);
        assert_eq!(
            p.cpu_speeds.as_deref(),
            Some(&[2.0, 1.0, 1.0, 1.0, 0.5, 0.5][..])
        );
    }

    #[test]
    fn migrate_flag_parses_triple() {
        let mut a = args(&["--migrate", "5,1.5,0.25"]);
        let p = take_params(&mut a).unwrap();
        let m = p.migration.unwrap();
        assert_eq!(m.check_every_reads, 5);
        assert_eq!(m.min_gain, 1.5);
        assert_eq!(m.state_growth, 0.25);
    }

    #[test]
    fn no_fault_flags_leaves_faults_disabled() {
        let mut a = args(&[]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p.faults, None);
    }

    #[test]
    fn fault_flags_fill_unspecified_fields_with_defaults() {
        let mut a = args(&["--fault-mtbf", "500", "--msg-loss", "0.02"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let spec = p.faults.expect("fault layer should be enabled");
        assert_eq!(spec.mtbf, 500.0);
        assert_eq!(spec.msg_loss, 0.02);
        let defaults = FaultSpec::default();
        assert_eq!(spec.mttr, defaults.mttr);
        assert_eq!(spec.status_loss, defaults.status_loss);
        assert_eq!(spec.max_retries, defaults.max_retries);
        assert_eq!(spec.backoff_base, defaults.backoff_base);
        assert!(spec.is_active());
    }

    #[test]
    fn all_fault_flags_parse() {
        let mut a = args(&[
            "--fault-mtbf",
            "800",
            "--fault-mttr",
            "40",
            "--msg-loss",
            "0.01",
            "--status-loss",
            "0.1",
            "--fault-retries",
            "3",
            "--fault-backoff",
            "20",
            "--partition-at",
            "1000",
            "--partition-for",
            "250",
            "--partition-groups",
            "2",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(
            p.faults,
            Some(FaultSpec {
                mtbf: 800.0,
                mttr: 40.0,
                msg_loss: 0.01,
                status_loss: 0.1,
                max_retries: 3,
                backoff_base: 20.0,
                partition_at: 1000.0,
                partition_for: 250.0,
                partition_groups: 2,
            })
        );
    }

    #[test]
    fn invalid_fault_flags_are_reported() {
        // Probability outside [0, 1] fails parameter validation.
        let mut a = args(&["--msg-loss", "1.5"]);
        assert!(take_params(&mut a).is_err());
        // A zero repair time means instant repair and is now legal.
        let mut a = args(&["--fault-mtbf", "500", "--fault-mttr", "0"]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p.faults.unwrap().mttr, 0.0);
        // Non-numeric value is a parse error.
        let mut a = args(&["--fault-backoff", "soon"]);
        assert!(take_params(&mut a).is_err());
    }

    #[test]
    fn partition_flags_parse_and_conflict_checks_fire() {
        // A duration without a group count is an actionable error, not a
        // silent no-op partition.
        let mut a = args(&["--partition-for", "200"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("--partition-groups"), "{err}");
        // Groups without a duration is equally inert and equally rejected.
        let mut a = args(&["--partition-groups", "2"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("--partition-for"), "{err}");
        // A single group is not a partition.
        let mut a = args(&["--partition-for", "200", "--partition-groups", "1"]);
        assert!(take_params(&mut a).is_err());
        // The complete triple enables the fault layer with a partition.
        let mut a = args(&[
            "--partition-at",
            "500",
            "--partition-for",
            "200",
            "--partition-groups",
            "3",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let f = p.faults.expect("partition flags enable the fault layer");
        assert!(f.has_partition());
        assert_eq!(f.partition_at, 500.0);
    }

    #[test]
    fn deadline_flags_parse() {
        let mut a = args(&[
            "--deadline-mean",
            "400",
            "--deadline-floor",
            "50",
            "--deadline-retries",
            "3",
            "--deadline-backoff",
            "8",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let d = p.deadlines.expect("deadline layer should be enabled");
        assert!(d.is_active());
        assert_eq!(d.mean, 400.0);
        assert_eq!(d.floor, 50.0);
        assert_eq!(d.max_reallocations, 3);
        assert_eq!(d.backoff_base, 8.0);
    }

    #[test]
    fn conflicting_deadline_flags_are_reported() {
        // Retries with deadlines explicitly disabled is a configuration
        // contradiction, not something to silently ignore.
        let mut a = args(&["--deadline-mean", "0", "--deadline-retries", "2"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("--deadline-mean 0"), "{err}");
        // Same for refinement flags with no mean at all.
        let mut a = args(&["--deadline-floor", "10"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("no --deadline-mean"), "{err}");
        // A bare zero mean (deadlines off, nothing else) stays legal so
        // sweeps can include an "off" point.
        let mut a = args(&["--deadline-mean", "0"]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p.deadlines, None);
    }

    #[test]
    fn suspicion_flags_parse_and_require_status_broadcast() {
        // The detector rides on costed status broadcasts; without one the
        // parameter validation names the missing pieces.
        let mut a = args(&["--suspect-after", "4"]);
        assert!(take_params(&mut a).is_err());
        let mut a = args(&[
            "--suspect-after",
            "4",
            "--suspect-probation",
            "3",
            "--status-period",
            "50",
            "--status-msg",
            "0.5",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let s = p.suspicion.expect("suspicion layer should be enabled");
        assert_eq!(s.threshold, 4);
        assert_eq!(s.probation, 3);
    }

    #[test]
    fn admission_flags_parse() {
        let mut a = args(&[
            "--admission-cap",
            "12",
            "--admission-mode",
            "redirect",
            "--admission-retries",
            "2",
            "--admission-backoff",
            "15",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let spec = p.admission.expect("admission layer should be enabled");
        assert!(spec.is_active());
        assert_eq!(spec.mpl_cap, Some(12));
        assert_eq!(spec.queue_limit, None);
        assert_eq!(spec.mode, SheddingMode::Redirect);
        assert_eq!(spec.max_retries, 2);
        assert_eq!(spec.backoff_base, 15.0);
    }

    #[test]
    fn invalid_admission_flags_are_reported() {
        // A cap of zero would admit nothing — rejected with advice.
        let mut a = args(&["--admission-cap", "0"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let mut a = args(&["--admission-queue", "0"]);
        assert!(take_params(&mut a).is_err());
        // A shedding mode without a cap or limit does nothing.
        let mut a = args(&["--admission-mode", "drop"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("--admission-cap"), "{err}");
        // Unknown mode names are listed.
        let mut a = args(&["--admission-cap", "10", "--admission-mode", "sideways"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("redirect"), "{err}");
    }

    #[test]
    fn redundancy_flags_parse() {
        let mut a = args(&[
            "--redundancy",
            "3",
            "--redundancy-prob",
            "0.5",
            "--redundancy-load-cap",
            "8",
            "--redundancy-full-frac",
            "0.25",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let r = p.redundancy.expect("redundancy layer should be enabled");
        assert!(r.is_active());
        assert_eq!(r.max_level, 3);
        assert_eq!(r.hedge_prob, 0.5);
        assert_eq!(r.load_threshold, 8.0);
        assert_eq!(r.full_threshold, 0.25);
        // Unspecified refinements take the spec defaults (hedge every
        // eligible query, no load throttle override).
        let mut a = args(&["--redundancy", "2"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let defaults = RedundancySpec::default();
        let r = p.redundancy.unwrap();
        assert_eq!(r.max_level, 2);
        assert_eq!(r.hedge_prob, defaults.hedge_prob);
        assert_eq!(r.load_threshold, defaults.load_threshold);
        assert_eq!(r.full_threshold, defaults.full_threshold);
    }

    #[test]
    fn conflicting_redundancy_flags_are_reported() {
        // Refinements without the enabling level are a contradiction.
        let mut a = args(&["--redundancy-prob", "0.5"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("no --redundancy"), "{err}");
        // Same with hedging explicitly below the active threshold.
        let mut a = args(&["--redundancy", "1", "--redundancy-load-cap", "5"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("below 2"), "{err}");
        // A bare inert level stays legal (and keeps the inert spec in
        // the params) so sweeps and byte-identity checks get an "off"
        // point that exercises the spec plumbing.
        let mut a = args(&["--redundancy", "1"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let r = p.redundancy.expect("inert spec is kept");
        assert!(!r.is_active());
    }

    #[test]
    fn reads_flag_preserves_resilience_config() {
        // --reads rebuilds the builder mid-parse via builder_from, which
        // must not drop any field — resilience flags consumed on either
        // side of the rebuild have to survive into the final params.
        let mut a = args(&[
            "--reads",
            "40",
            "--deadline-mean",
            "300",
            "--admission-cap",
            "15",
            "--redundancy",
            "2",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.classes[0].num_reads, 40.0);
        assert!(p.deadlines.unwrap().is_active());
        assert_eq!(p.admission.unwrap().mpl_cap, Some(15));
        assert!(p.redundancy.unwrap().is_active());
    }

    #[test]
    fn reads_flag_preserves_fault_config() {
        // --reads rebuilds the builder from validated params; fault flags
        // are consumed afterwards, but a replayed builder must also keep
        // an already-set fault spec intact.
        let mut a = args(&["--reads", "40", "--fault-mtbf", "900"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.classes[0].num_reads, 40.0);
        assert_eq!(p.faults.unwrap().mtbf, 900.0);
    }

    #[test]
    fn live_arrival_flags_parse() {
        let mut a = args(&[
            "--open-rate",
            "0.05",
            "--live-diurnal",
            "0.4",
            "--live-period",
            "8000",
            "--live-flash",
            "1000,500,3",
            "--live-burst",
            "2,150,1500",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let spec = p.arrivals.expect("live flags enable the arrival layer");
        assert!(spec.is_active());
        assert_eq!(spec.diurnal_amplitude, 0.4);
        assert_eq!(spec.diurnal_period, 8000.0);
        assert_eq!(spec.flash_at, 1000.0);
        assert_eq!(spec.flash_for, 500.0);
        assert_eq!(spec.flash_multiplier, 3.0);
        assert_eq!(spec.burst_multiplier, 2.0);
        assert_eq!(spec.burst_on_mean, 150.0);
        assert_eq!(spec.burst_off_mean, 1500.0);
    }

    #[test]
    fn conflicting_live_arrival_flags_are_reported() {
        // A period without an amplitude modulates nothing.
        let mut a = args(&["--open-rate", "0.05", "--live-period", "5000"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("--live-diurnal"), "{err}");
        // Malformed triples name the expected shape.
        let mut a = args(&["--open-rate", "0.05", "--live-flash", "1000,500"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("at,for,mult"), "{err}");
        let mut a = args(&["--open-rate", "0.05", "--live-burst", "2"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("mult,on,off"), "{err}");
        // The arrival layer rides on open arrivals; parameter validation
        // rejects it under the closed workload.
        let mut a = args(&["--live-diurnal", "0.3"]);
        assert!(take_params(&mut a).is_err());
    }

    #[test]
    fn live_user_flags_parse() {
        let mut a = args(&[
            "--open-rate",
            "0.05",
            "--live-users",
            "1000000",
            "--live-zipf",
            "1.1",
            "--live-session",
            "25",
            "--live-affinity",
            "0.9",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let spec = p.users.expect("--live-users enables the population");
        assert!(spec.is_active());
        assert_eq!(spec.total_users, 1_000_000);
        assert_eq!(spec.zipf_exponent, 1.1);
        assert_eq!(spec.session_mean, 25.0);
        assert_eq!(spec.class_affinity, 0.9);
        // Unspecified refinements take the spec defaults.
        let mut a = args(&["--open-rate", "0.05", "--live-users", "500"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let defaults = UserSpec::default();
        let spec = p.users.unwrap();
        assert_eq!(spec.total_users, 500);
        assert_eq!(spec.zipf_exponent, defaults.zipf_exponent);
        assert_eq!(spec.session_mean, defaults.session_mean);
        assert_eq!(spec.class_affinity, defaults.class_affinity);
    }

    #[test]
    fn conflicting_live_user_flags_are_reported() {
        // Refinements without the enabling count are a contradiction.
        let mut a = args(&["--open-rate", "0.05", "--live-zipf", "1.1"]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("no --live-users"), "{err}");
        // Same with the population explicitly disabled.
        let mut a = args(&[
            "--open-rate",
            "0.05",
            "--live-users",
            "0",
            "--live-session",
            "10",
        ]);
        let err = take_params(&mut a).unwrap_err();
        assert!(err.to_string().contains("--live-users 0"), "{err}");
        // A bare zero count (population off, nothing else) stays legal so
        // sweeps can include an "off" point.
        let mut a = args(&["--open-rate", "0.05", "--live-users", "0"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.users, None);
    }

    #[test]
    fn reads_flag_preserves_live_service_config() {
        // builder_from must replay the live-service fields; --reads after
        // live flags would otherwise silently drop them.
        let mut a = args(&[
            "--open-rate",
            "0.05",
            "--live-diurnal",
            "0.3",
            "--live-users",
            "10000",
            "--reads",
            "40",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.classes[0].num_reads, 40.0);
        assert_eq!(p.arrivals.unwrap().diurnal_amplitude, 0.3);
        assert_eq!(p.users.unwrap().total_users, 10_000);
    }

    #[test]
    fn jobs_flag_parses() {
        let mut a = args(&["--jobs", "4"]);
        assert_eq!(take_jobs(&mut a).unwrap(), Some(4));
        a.finish().unwrap();
    }

    #[test]
    fn absent_jobs_flag_is_none() {
        let mut a = args(&[]);
        assert_eq!(take_jobs(&mut a).unwrap(), None);
    }

    #[test]
    fn invalid_jobs_flags_are_reported() {
        // Zero workers is meaningless; the pool needs at least one.
        let mut a = args(&["--jobs", "0"]);
        assert!(take_jobs(&mut a).is_err());
        // Non-numeric value is a parse error.
        let mut a = args(&["--jobs", "many"]);
        assert!(take_jobs(&mut a).is_err());
        // Negative values do not parse as usize.
        let mut a = args(&["--jobs", "-2"]);
        assert!(take_jobs(&mut a).is_err());
    }

    #[test]
    fn invalid_params_are_reported() {
        let mut a = args(&["--sites", "0"]);
        assert!(take_params(&mut a).is_err());
    }

    #[test]
    fn disk_choice_parses() {
        let mut a = args(&["--disk-choice", "jsq"]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p.disk_choice, DiskChoice::ShortestQueue);
        let mut a = args(&["--disk-choice", "sideways"]);
        assert!(take_params(&mut a).is_err());
    }
}
