//! Shared flag handling: building [`SystemParams`] and policies from
//! command-line flags.

use dqa_core::params::{
    DiskChoice, FaultSpec, MessageCosting, MigrationSpec, SystemParams, Workload,
};
use dqa_core::policy::PolicyKind;

use crate::args::{ArgError, Args};

/// Parses a policy name (case-insensitive). `threshold:K` selects the
/// THRESHOLD policy with threshold `K`.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn parse_policy(name: &str) -> Result<PolicyKind, ArgError> {
    let lower = name.to_ascii_lowercase();
    if let Some(t) = lower.strip_prefix("threshold:") {
        let t = t
            .parse()
            .map_err(|e| ArgError(format!("invalid threshold in `{name}`: {e}")))?;
        return Ok(PolicyKind::Threshold(t));
    }
    match lower.as_str() {
        "local" => Ok(PolicyKind::Local),
        "bnq" => Ok(PolicyKind::Bnq),
        "bnqrd" => Ok(PolicyKind::Bnqrd),
        "lert" => Ok(PolicyKind::Lert),
        "random" => Ok(PolicyKind::Random),
        "lert-nonet" => Ok(PolicyKind::LertNoNet),
        "wlc" => Ok(PolicyKind::Wlc),
        _ => Err(ArgError(format!(
            "unknown policy `{name}` (expected local, bnq, bnqrd, lert, random, \
             lert-nonet, wlc, or threshold:K)"
        ))),
    }
}

/// Consumes the system-parameter flags shared by every simulation
/// subcommand and builds validated [`SystemParams`].
///
/// Flags (all optional, defaults are the paper's base configuration):
/// `--sites`, `--disks`, `--mpl`, `--think`, `--io-prob`, `--io-cpu`,
/// `--cpu-cpu`, `--msg`, `--reads`, `--disk-choice random|rr|jsq`,
/// `--estimate-error`, `--status-period`, `--status-msg`, `--relations`,
/// `--copies`, `--migrate every,gain,growth`, and the fault-injection
/// family `--fault-mtbf`, `--fault-mttr`, `--msg-loss`, `--status-loss`,
/// `--fault-retries`, `--fault-backoff` (any of which enables the fault
/// layer; unspecified members take [`FaultSpec::default`] values).
///
/// # Errors
///
/// Propagates parse failures and parameter-validation failures with the
/// offending flag named.
pub fn take_params(args: &mut Args) -> Result<SystemParams, ArgError> {
    let mut b = SystemParams::builder();
    b = b.num_sites(args.take_or("sites", 6usize)?);
    b = b.num_disks(args.take_or("disks", 2u32)?);
    b = b.mpl(args.take_or("mpl", 20u32)?);
    b = b.think_time(args.take_or("think", 350.0f64)?);
    b = b.two_class(
        args.take_or("io-prob", 0.5f64)?,
        args.take_or("io-cpu", 0.05f64)?,
        args.take_or("cpu-cpu", 1.0f64)?,
    );
    b = b.msg_length(args.take_or("msg", 1.0f64)?);
    if let Some(reads) = args.take_opt::<f64>("reads")? {
        let mut params = b.build().map_err(|e| ArgError(e.to_string()))?;
        for class in &mut params.classes {
            class.num_reads = reads;
        }
        b = builder_from(params);
    }
    if let Some(choice) = args.take("disk-choice") {
        let parsed = match choice.as_str() {
            "random" => DiskChoice::Random,
            "rr" | "round-robin" => DiskChoice::RoundRobin,
            "jsq" | "shortest-queue" => DiskChoice::ShortestQueue,
            other => {
                return Err(ArgError(format!(
                    "unknown disk choice `{other}` (expected random, rr, jsq)"
                )))
            }
        };
        b = b.disk_choice(parsed);
    }
    b = b.estimate_error(args.take_or("estimate-error", 0.0f64)?);
    b = b.status_period(args.take_or("status-period", 0.0f64)?);
    b = b.status_msg_length(args.take_or("status-msg", 0.0f64)?);
    b = b.num_relations(args.take_or("relations", 12usize)?);
    if let Some(copies) = args.take_opt::<u32>("copies")? {
        b = b.copies(Some(copies));
    }
    if let Some(spec) = args.take("detailed-msg") {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != 2 {
            return Err(ArgError(format!(
                "--detailed-msg expects `msg_time,page_size`, got `{spec}`"
            )));
        }
        let msg_time = parts[0]
            .parse()
            .map_err(|e| ArgError(format!("invalid msg_time: {e}")))?;
        let page_size = parts[1]
            .parse()
            .map_err(|e| ArgError(format!("invalid page_size: {e}")))?;
        b = b.message_costing(MessageCosting::Detailed {
            msg_time,
            page_size,
        });
    }
    if let Some(rate) = args.take_opt::<f64>("open-rate")? {
        b = b.workload(Workload::Open { arrival_rate: rate });
    }
    b = b.update_fraction(args.take_or("update-frac", 0.0f64)?);
    b = b.propagation_factor(args.take_or("prop-factor", 0.5f64)?);
    if let Some(speeds) = args.take("cpu-speeds") {
        let parsed: Result<Vec<f64>, _> = speeds.split(',').map(str::parse).collect();
        let parsed = parsed.map_err(|e| ArgError(format!("invalid --cpu-speeds list: {e}")))?;
        b = b.cpu_speeds(Some(parsed));
    }
    // Fault-injection flags: any one of them switches the layer on.
    let fault_mtbf = args.take_opt::<f64>("fault-mtbf")?;
    let fault_mttr = args.take_opt::<f64>("fault-mttr")?;
    let msg_loss = args.take_opt::<f64>("msg-loss")?;
    let status_loss = args.take_opt::<f64>("status-loss")?;
    let fault_retries = args.take_opt::<u32>("fault-retries")?;
    let fault_backoff = args.take_opt::<f64>("fault-backoff")?;
    if fault_mtbf.is_some()
        || fault_mttr.is_some()
        || msg_loss.is_some()
        || status_loss.is_some()
        || fault_retries.is_some()
        || fault_backoff.is_some()
    {
        let defaults = FaultSpec::default();
        b = b.faults(Some(FaultSpec {
            mtbf: fault_mtbf.unwrap_or(defaults.mtbf),
            mttr: fault_mttr.unwrap_or(defaults.mttr),
            msg_loss: msg_loss.unwrap_or(defaults.msg_loss),
            status_loss: status_loss.unwrap_or(defaults.status_loss),
            max_retries: fault_retries.unwrap_or(defaults.max_retries),
            backoff_base: fault_backoff.unwrap_or(defaults.backoff_base),
        }));
    }
    if let Some(spec) = args.take("migrate") {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != 3 {
            return Err(ArgError(format!(
                "--migrate expects `every,gain,growth`, got `{spec}`"
            )));
        }
        let every = parts[0]
            .parse()
            .map_err(|e| ArgError(format!("invalid migrate interval: {e}")))?;
        let gain = parts[1]
            .parse()
            .map_err(|e| ArgError(format!("invalid migrate gain: {e}")))?;
        let growth = parts[2]
            .parse()
            .map_err(|e| ArgError(format!("invalid migrate growth: {e}")))?;
        b = b.migration(Some(MigrationSpec {
            check_every_reads: every,
            min_gain: gain,
            state_growth: growth,
        }));
    }
    b.build().map_err(|e| ArgError(e.to_string()))
}

/// Consumes the `--jobs` flag shared by every simulation subcommand.
///
/// Returns the requested worker count without applying it, so that unit
/// tests can validate parsing without mutating the process-wide setting;
/// callers pass the value to [`dqa_core::parallel::set_jobs`]. When the
/// flag is absent the resolution order of [`dqa_core::parallel::jobs`]
/// applies (the `DQA_JOBS` environment variable, then the detected
/// parallelism), and `--jobs 1` takes the exact serial code path.
///
/// # Errors
///
/// Rejects `--jobs 0` and non-numeric values.
pub fn take_jobs(args: &mut Args) -> Result<Option<usize>, ArgError> {
    match args.take_opt::<usize>("jobs")? {
        Some(0) => Err(ArgError("--jobs must be at least 1".into())),
        other => Ok(other),
    }
}

/// Rebuilds a builder from already-validated parameters (used when a flag
/// must mutate a field the builder does not expose directly).
fn builder_from(params: SystemParams) -> dqa_core::params::SystemParamsBuilder {
    // The builder starts at paper_base; replay every field.
    let mut b = SystemParams::builder()
        .num_sites(params.num_sites)
        .num_disks(params.num_disks)
        .disk_time(params.disk_time)
        .disk_time_dev(params.disk_time_dev)
        .mpl(params.mpl)
        .think_time(params.think_time)
        .classes(params.classes)
        .msg_length(params.msg_length)
        .message_costing(params.message_costing)
        .disk_choice(params.disk_choice)
        .estimate_error(params.estimate_error)
        .status_period(params.status_period)
        .status_msg_length(params.status_msg_length)
        .num_relations(params.num_relations)
        .copies(params.copies)
        .workload(params.workload)
        .update_fraction(params.update_fraction)
        .propagation_factor(params.propagation_factor)
        .cpu_speeds(params.cpu_speeds)
        .faults(params.faults);
    b = b.migration(params.migration);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| (*x).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn policy_names_parse() {
        assert_eq!(parse_policy("LERT").unwrap(), PolicyKind::Lert);
        assert_eq!(parse_policy("local").unwrap(), PolicyKind::Local);
        assert_eq!(
            parse_policy("threshold:4").unwrap(),
            PolicyKind::Threshold(4)
        );
        assert!(parse_policy("nope").is_err());
    }

    #[test]
    fn default_params_are_paper_base() {
        let mut a = args(&[]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p, SystemParams::paper_base());
    }

    #[test]
    fn flags_override_fields() {
        let mut a = args(&[
            "--sites",
            "8",
            "--mpl",
            "25",
            "--think",
            "200",
            "--io-prob",
            "0.3",
            "--copies",
            "2",
            "--reads",
            "40",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.num_sites, 8);
        assert_eq!(p.mpl, 25);
        assert_eq!(p.think_time, 200.0);
        assert_eq!(p.classes[0].probability, 0.3);
        assert_eq!(p.copies, Some(2));
        assert_eq!(p.classes[0].num_reads, 40.0);
        assert_eq!(p.classes[1].num_reads, 40.0);
    }

    #[test]
    fn update_and_speed_flags_parse() {
        let mut a = args(&[
            "--update-frac",
            "0.2",
            "--prop-factor",
            "0.25",
            "--cpu-speeds",
            "2,1,1,1,0.5,0.5",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.update_fraction, 0.2);
        assert_eq!(p.propagation_factor, 0.25);
        assert_eq!(
            p.cpu_speeds.as_deref(),
            Some(&[2.0, 1.0, 1.0, 1.0, 0.5, 0.5][..])
        );
    }

    #[test]
    fn migrate_flag_parses_triple() {
        let mut a = args(&["--migrate", "5,1.5,0.25"]);
        let p = take_params(&mut a).unwrap();
        let m = p.migration.unwrap();
        assert_eq!(m.check_every_reads, 5);
        assert_eq!(m.min_gain, 1.5);
        assert_eq!(m.state_growth, 0.25);
    }

    #[test]
    fn no_fault_flags_leaves_faults_disabled() {
        let mut a = args(&[]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p.faults, None);
    }

    #[test]
    fn fault_flags_fill_unspecified_fields_with_defaults() {
        let mut a = args(&["--fault-mtbf", "500", "--msg-loss", "0.02"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        let spec = p.faults.expect("fault layer should be enabled");
        assert_eq!(spec.mtbf, 500.0);
        assert_eq!(spec.msg_loss, 0.02);
        let defaults = FaultSpec::default();
        assert_eq!(spec.mttr, defaults.mttr);
        assert_eq!(spec.status_loss, defaults.status_loss);
        assert_eq!(spec.max_retries, defaults.max_retries);
        assert_eq!(spec.backoff_base, defaults.backoff_base);
        assert!(spec.is_active());
    }

    #[test]
    fn all_fault_flags_parse() {
        let mut a = args(&[
            "--fault-mtbf",
            "800",
            "--fault-mttr",
            "40",
            "--msg-loss",
            "0.01",
            "--status-loss",
            "0.1",
            "--fault-retries",
            "3",
            "--fault-backoff",
            "20",
        ]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(
            p.faults,
            Some(FaultSpec {
                mtbf: 800.0,
                mttr: 40.0,
                msg_loss: 0.01,
                status_loss: 0.1,
                max_retries: 3,
                backoff_base: 20.0,
            })
        );
    }

    #[test]
    fn invalid_fault_flags_are_reported() {
        // Probability outside [0, 1] fails parameter validation.
        let mut a = args(&["--msg-loss", "1.5"]);
        assert!(take_params(&mut a).is_err());
        // Crashes enabled with a zero repair time is rejected.
        let mut a = args(&["--fault-mtbf", "500", "--fault-mttr", "0"]);
        assert!(take_params(&mut a).is_err());
        // Non-numeric value is a parse error.
        let mut a = args(&["--fault-backoff", "soon"]);
        assert!(take_params(&mut a).is_err());
    }

    #[test]
    fn reads_flag_preserves_fault_config() {
        // --reads rebuilds the builder from validated params; fault flags
        // are consumed afterwards, but a replayed builder must also keep
        // an already-set fault spec intact.
        let mut a = args(&["--reads", "40", "--fault-mtbf", "900"]);
        let p = take_params(&mut a).unwrap();
        a.finish().unwrap();
        assert_eq!(p.classes[0].num_reads, 40.0);
        assert_eq!(p.faults.unwrap().mtbf, 900.0);
    }

    #[test]
    fn jobs_flag_parses() {
        let mut a = args(&["--jobs", "4"]);
        assert_eq!(take_jobs(&mut a).unwrap(), Some(4));
        a.finish().unwrap();
    }

    #[test]
    fn absent_jobs_flag_is_none() {
        let mut a = args(&[]);
        assert_eq!(take_jobs(&mut a).unwrap(), None);
    }

    #[test]
    fn invalid_jobs_flags_are_reported() {
        // Zero workers is meaningless; the pool needs at least one.
        let mut a = args(&["--jobs", "0"]);
        assert!(take_jobs(&mut a).is_err());
        // Non-numeric value is a parse error.
        let mut a = args(&["--jobs", "many"]);
        assert!(take_jobs(&mut a).is_err());
        // Negative values do not parse as usize.
        let mut a = args(&["--jobs", "-2"]);
        assert!(take_jobs(&mut a).is_err());
    }

    #[test]
    fn invalid_params_are_reported() {
        let mut a = args(&["--sites", "0"]);
        assert!(take_params(&mut a).is_err());
    }

    #[test]
    fn disk_choice_parses() {
        let mut a = args(&["--disk-choice", "jsq"]);
        let p = take_params(&mut a).unwrap();
        assert_eq!(p.disk_choice, DiskChoice::ShortestQueue);
        let mut a = args(&["--disk-choice", "sideways"]);
        assert!(take_params(&mut a).is_err());
    }
}
