//! `dqa` — command-line front end for the dynamic-query-allocation
//! simulator.
//!
//! ```text
//! dqa run     --policy lert [system flags] [--seed N] [--warmup T] [--measure T]
//! dqa compare --policies local,bnq,bnqrd,lert [system flags] [--reps N]
//! dqa sweep   --flag think --values 150,250,350 --policy lert [system flags]
//! dqa capacity --target 50 --policies local,lert [system flags]
//! dqa mva     --cpu1 0.05 --cpu2 1.0 --load 1100/0011 --class 1
//! dqa check   --sites 3 --queries 2 [--mutation M] [--window-barrier 1] [--emit-trace F] | --replay-trace F
//! dqa help
//! ```
//!
//! System flags (defaults = the paper's base configuration): `--sites`,
//! `--disks`, `--mpl`, `--think`, `--io-prob`, `--io-cpu`, `--cpu-cpu`,
//! `--msg`, `--reads`, `--disk-choice random|rr|jsq`, `--estimate-error`,
//! `--status-period`, `--status-msg`, `--relations`, `--copies`,
//! `--migrate every,gain,growth`, plus the fault-injection family
//! `--fault-mtbf`, `--fault-mttr`, `--msg-loss`, `--status-loss`,
//! `--fault-retries`, `--fault-backoff`.
//!
//! `--jobs N` (or the `DQA_JOBS` environment variable) sets how many
//! worker threads replicated runs may use; results are byte-identical for
//! every worker count, and `--jobs 1` takes the exact serial code path.

mod args;
mod commands;
mod config;

use std::process::ExitCode;

use args::Args;

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        print_help();
        return ExitCode::SUCCESS;
    }
    let command = raw.remove(0);
    let result = match command.as_str() {
        "run" => Args::parse(&raw).and_then(commands::run),
        "compare" => Args::parse(&raw).and_then(commands::compare),
        "sweep" => Args::parse(&raw).and_then(commands::sweep),
        "capacity" => Args::parse(&raw).and_then(commands::capacity),
        "mva" => Args::parse(&raw).and_then(commands::mva),
        "check" => Args::parse(&raw).and_then(commands::check),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(args::ArgError(format!(
            "unknown command `{other}` (try `dqa help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "dqa — dynamic query allocation in a distributed database (Carey/Livny/Lu 1984)

USAGE:
  dqa run      --policy <P> [system flags] [--seed N] [--warmup T] [--measure T]
  dqa compare  [--policies local,bnq,bnqrd,lert] [system flags] [--reps N]
  dqa sweep    --flag <name> --values a,b,c [--policy <P>] [system flags]
  dqa capacity [--target R] [--policies local,lert] [--max-mpl N] [system flags]
  dqa mva      [--cpu1 X] [--cpu2 Y] [--load 1100/0011] [--class 1|2]
  dqa check    [--sites N] [--queries N] [--crashes N] [--mutation M]
               [--window-barrier 1] [--emit-trace FILE] | --replay-trace FILE
  dqa help

POLICIES: local, bnq, bnqrd, lert, random, lert-nonet, wlc, threshold:K

SYSTEM FLAGS (defaults are the paper's base configuration):
  --sites N        number of DB sites            (6)
  --disks N        disks per site                (2)
  --mpl N          terminals per site            (20)
  --think T        mean think time               (350)
  --io-prob P      I/O-bound class probability   (0.5)
  --io-cpu T       I/O class CPU time per page   (0.05)
  --cpu-cpu T      CPU class CPU time per page   (1.0)
  --reads N        mean page reads per query     (20)
  --msg T          remote-transfer message time  (1.0)
  --detailed-msg t,p   Table-2/3 costing: msg_time per byte, page_size
  --disk-choice D  random | rr | jsq             (random)
  --estimate-error E   optimizer noise fraction  (0)
  --status-period T    load-exchange period      (0 = oracle)
  --status-msg T       status frame ring time    (0 = free)
  --relations N        relations in the catalog  (12)
  --copies K           copies per relation       (full replication)
  --migrate E,G,S      migration: check interval, min gain, state growth
  --open-rate L        open Poisson arrivals/site/unit (closed model)
  --update-frac U      update fraction of the workload   (0)
  --prop-factor F      apply work per replica, x reads   (0.5)
  --cpu-speeds a,b,..  per-site CPU speed factors (homogeneous)

EXECUTION:
  --jobs N         worker threads for replicated runs (default: DQA_JOBS
                   env var, else the detected CPU count; results are
                   byte-identical for every N, and N=1 runs serially)
  --shard-sites N  (`dqa run` only) execute the single simulation under
                   the conservative parallel-in-time executor: one
                   logical process per site, windows synchronized by the
                   ring's minimum frame-transfer lookahead, N window
                   workers. Byte-identical to the serial run; requires
                   --status-period > 0 and no deadline/admission layer

FAULT FLAGS (any one enables deterministic fault injection):
  --fault-mtbf T       mean time between site crashes    (0 = no crashes)
  --fault-mttr T       mean site repair time             (50)
  --msg-loss P         ring message loss probability     (0)
  --status-loss P      status broadcast dropout prob.    (0)
  --fault-retries N    retry budget per query            (5)
  --fault-backoff T    base retry backoff delay          (10)

EXTENSION FLAGS (full tables in README.md):
  --deadline-* --suspect-* --partition-* --admission-*
                   per-query deadlines, failure suspicion, injected
                   partitions, per-site admission control
  --live-*         time-varying arrival kernels and a sharded
                   million-user population
  --redundancy N   hedged replicate-to-n reads with first-win
                   cancellation; refinements --redundancy-prob,
                   --redundancy-load-cap, --redundancy-full-frac

EXAMPLES:
  dqa compare --think 250
  dqa run --policy lert --copies 2 --relations 24 --sites 8
  dqa sweep --flag msg --values 0.5,1,2,4 --policy lert
  dqa mva --load 2100/0011 --class 1"
    );
}
