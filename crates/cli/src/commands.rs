//! The `dqa` subcommands.

use dqa_core::experiment::{
    improvement_pct, max_mpl_for_response, run as run_experiment, run_replicated, run_sharded,
    RunConfig, RunReport,
};
use dqa_core::policy::PolicyKind;
use dqa_core::table::{fmt_f, TextTable};
use dqa_mva::allocation::{analyze_arrival, LoadMatrix, StudyConfig};

use crate::args::{ArgError, Args};
use crate::config::{parse_policy, take_jobs, take_params};

/// Consumes `--jobs` and applies it to the process-wide worker-pool
/// setting used by replicated runs (`--jobs 1` forces the serial path).
fn apply_jobs(args: &mut Args) -> Result<(), ArgError> {
    if let Some(jobs) = take_jobs(args)? {
        dqa_core::parallel::set_jobs(jobs);
    }
    Ok(())
}

/// Consumes the output-analysis flags.
fn take_windows(args: &mut Args) -> Result<(u64, f64, f64), ArgError> {
    Ok((
        args.take_or("seed", 1u64)?,
        args.take_or("warmup", 3_000.0f64)?,
        args.take_or("measure", 30_000.0f64)?,
    ))
}

fn take_policies(args: &mut Args, default: &str) -> Result<Vec<PolicyKind>, ArgError> {
    let spec = args.take("policies").unwrap_or_else(|| default.to_owned());
    spec.split(',').map(parse_policy).collect()
}

/// `dqa run` — one policy, one configuration, full report.
///
/// `--shard-sites N` runs the simulation under the conservative
/// parallel-in-time executor with `N` window workers instead of the
/// serial engine; the report is byte-identical whenever the
/// configuration passes the shardability gate.
pub fn run_cmd(mut args: Args) -> Result<(), ArgError> {
    let policy = parse_policy(&args.take("policy").unwrap_or_else(|| "lert".into()))?;
    let params = take_params(&mut args)?;
    let (seed, warmup, measure) = take_windows(&mut args)?;
    let shard_jobs = match args.take_opt::<usize>("shard-sites")? {
        Some(0) => return Err(ArgError("--shard-sites must be at least 1".into())),
        other => other,
    };
    apply_jobs(&mut args)?;
    args.finish()?;

    let config = RunConfig::new(params, policy)
        .seed(seed)
        .windows(warmup, measure);
    let report = match shard_jobs {
        Some(jobs) => run_sharded(&config, jobs).map_err(|e| ArgError(e.to_string()))?,
        None => run_experiment(&config).map_err(|e| ArgError(e.to_string()))?,
    };
    print_report(&report);
    Ok(())
}

fn print_report(r: &RunReport) {
    println!("policy            {}", r.policy);
    println!("measured time     {}", r.measured_time);
    println!("completed         {}", r.completed);
    if r.waiting_half_width.is_finite() {
        println!(
            "mean waiting      {:.3} ± {:.3} (95% batch means)",
            r.mean_waiting, r.waiting_half_width
        );
    } else {
        println!("mean waiting      {:.3}", r.mean_waiting);
    }
    println!("mean response     {:.3}", r.mean_response);
    println!(
        "response p50/p90/p99  {:.1} / {:.1} / {:.1}",
        r.response_p50, r.response_p90, r.response_p99
    );
    if r.sketch_p999 > 0.0 {
        println!(
            "tail sketch p50/p99/p999  {:.1} / {:.1} / {:.1}",
            r.sketch_p50, r.sketch_p99, r.sketch_p999
        );
    }
    if r.peak_active_users > 0 {
        let per_user = r.user_arena_peak_bytes as f64 / r.peak_active_users as f64;
        println!(
            "active users      {} peak ({} arena bytes, {:.1} B/user)",
            r.peak_active_users, r.user_arena_peak_bytes, per_user
        );
    }
    println!("throughput        {:.4} queries/unit", r.throughput);
    println!("fairness F        {:+.4}", r.fairness);
    println!("cpu utilization   {:.3}", r.cpu_utilization);
    println!("disk utilization  {:.3}", r.disk_utilization);
    println!("subnet util       {:.3}", r.subnet_utilization);
    println!("transfer fraction {:.3}", r.transfer_fraction);
    println!("mean QD           {:.3}", r.mean_query_difference);
    if r.migrations > 0 {
        println!("migrations        {}", r.migrations);
    }
    let faults_seen =
        r.queries_retried + r.queries_lost + r.msgs_lost > 0 || r.mean_availability < 1.0;
    if faults_seen {
        println!("mean availability {:.4}", r.mean_availability);
        println!(
            "faults            {} retried / {} recovered / {} lost",
            r.queries_retried, r.queries_recovered, r.queries_lost
        );
        println!("messages lost     {}", r.msgs_lost);
    }
    if r.deadline_timeouts > 0 {
        println!(
            "deadlines         {} expired / {} reallocated / {} abandoned",
            r.deadline_timeouts, r.deadline_reallocations, r.deadline_abandoned
        );
    }
    if r.admission_rejected + r.admission_redirected + r.admission_dropped > 0 {
        println!(
            "admission         {} rejected / {} redirected / {} dropped",
            r.admission_rejected, r.admission_redirected, r.admission_dropped
        );
    }
    if r.partition_drops > 0 {
        println!("partition drops   {}", r.partition_drops);
    }
    if r.hedged_dispatched > 0 {
        println!(
            "hedged            {} dispatched / {} duplicate wins / {} cancelled",
            r.hedged_dispatched, r.hedge_wins, r.hedge_cancelled
        );
        println!("wasted service    {:.1}", r.hedge_wasted_service);
    }
    println!();
    let mut t = TextTable::new(vec!["class", "completed", "wait", "resp", "service", "W^"]);
    for c in &r.per_class {
        t.row(vec![
            c.name.clone(),
            c.completed.to_string(),
            fmt_f(c.mean_waiting, 2),
            fmt_f(c.mean_response, 2),
            fmt_f(c.mean_service, 2),
            fmt_f(c.normalized_waiting, 3),
        ]);
    }
    println!("{t}");

    let mut t = TextTable::new(vec![
        "site",
        "rho_cpu",
        "rho_disk",
        "cpu queue",
        "cpu bursts",
    ]);
    for (s, site) in r.per_site.iter().enumerate() {
        t.row(vec![
            s.to_string(),
            fmt_f(site.cpu_utilization, 3),
            fmt_f(site.disk_utilization, 3),
            fmt_f(site.mean_cpu_queue, 2),
            site.cpu_completions.to_string(),
        ]);
    }
    println!("{t}");
}

/// `dqa compare` — several policies on the same configuration.
pub fn compare(mut args: Args) -> Result<(), ArgError> {
    let policies = take_policies(&mut args, "local,bnq,bnqrd,lert")?;
    let params = take_params(&mut args)?;
    let (seed, warmup, measure) = take_windows(&mut args)?;
    let reps = args.take_or("reps", 3u32)?;
    apply_jobs(&mut args)?;
    args.finish()?;

    let mut table = TextTable::new(vec![
        "policy",
        "mean wait ± hw",
        "vs first (%)",
        "fairness F",
        "subnet",
        "transfers",
    ]);
    let mut base = None;
    for policy in policies {
        let rep = run_replicated(
            &RunConfig::new(params.clone(), policy)
                .seed(seed)
                .windows(warmup, measure),
            reps,
        )
        .map_err(|e| ArgError(e.to_string()))?;
        let w = rep.mean_waiting();
        let b = *base.get_or_insert(w);
        table.row(vec![
            policy.to_string(),
            format!(
                "{} ± {}",
                fmt_f(w, 2),
                fmt_f(rep.half_width(|r| r.mean_waiting), 2)
            ),
            fmt_f(improvement_pct(b, w), 2),
            fmt_f(rep.mean_fairness(), 3),
            fmt_f(rep.mean_subnet_utilization(), 3),
            fmt_f(rep.mean(|r| r.transfer_fraction), 3),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// `dqa sweep` — vary one numeric system flag across a list of values.
pub fn sweep(mut args: Args) -> Result<(), ArgError> {
    let flag = args
        .take("flag")
        .ok_or_else(|| ArgError("sweep requires --flag <system flag name>".into()))?;
    let values = args
        .take("values")
        .ok_or_else(|| ArgError("sweep requires --values a,b,c".into()))?;
    let policy = parse_policy(&args.take("policy").unwrap_or_else(|| "lert".into()))?;
    let (seed, warmup, measure) = take_windows(&mut args)?;
    let reps = args.take_or("reps", 3u32)?;
    // Consume --jobs before cloning the per-point flag sets below, so it
    // is not re-parsed (and rejected) as a system flag at each point.
    apply_jobs(&mut args)?;
    let rest: Vec<String> = values.split(',').map(str::to_owned).collect();

    let mut table = TextTable::new(vec![
        flag.clone(),
        "mean wait".to_owned(),
        "mean resp".to_owned(),
        "fairness F".to_owned(),
        "subnet".to_owned(),
    ]);
    for value in &rest {
        // Re-parse the shared flags for every point, overriding the swept
        // flag with this value.
        let mut point = args.clone();
        if point.take(&flag).is_some() {
            return Err(ArgError(format!(
                "--{flag} may not also be given as a fixed flag while swept"
            )));
        }
        let mut with_flag_raw = vec![format!("--{flag}"), value.clone()];
        with_flag_raw.extend(point.to_raw());
        let mut point = Args::parse(&with_flag_raw)?;
        let params = take_params(&mut point)?;
        point.finish()?;

        let rep = run_replicated(
            &RunConfig::new(params, policy)
                .seed(seed)
                .windows(warmup, measure),
            reps,
        )
        .map_err(|e| ArgError(e.to_string()))?;
        table.row(vec![
            value.clone(),
            fmt_f(rep.mean_waiting(), 2),
            fmt_f(rep.mean_response(), 2),
            fmt_f(rep.mean_fairness(), 3),
            fmt_f(rep.mean_subnet_utilization(), 3),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// `dqa capacity` — the Table-10 question for arbitrary configurations.
pub fn capacity(mut args: Args) -> Result<(), ArgError> {
    let target = args.take_or("target", 50.0f64)?;
    let policies = take_policies(&mut args, "local,lert")?;
    let max_mpl = args.take_or("max-mpl", 45u32)?;
    let params = take_params(&mut args)?;
    let (seed, warmup, measure) = take_windows(&mut args)?;
    let reps = args.take_or("reps", 2u32)?;
    apply_jobs(&mut args)?;
    args.finish()?;

    println!("target: mean response <= {target}\n");
    let mut table = TextTable::new(vec!["policy", "max mpl"]);
    for policy in policies {
        let cfg = RunConfig::new(params.clone(), policy)
            .seed(seed)
            .windows(warmup, measure);
        let max = max_mpl_for_response(&cfg, target, 2..=max_mpl, reps)
            .map_err(|e| ArgError(e.to_string()))?;
        table.row(vec![
            policy.to_string(),
            max.map_or("unattainable".into(), |m| m.to_string()),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// `dqa mva` — the Section-3 analytic study for one arrival.
pub fn mva(mut args: Args) -> Result<(), ArgError> {
    let cpu1 = args.take_or("cpu1", 0.05f64)?;
    let cpu2 = args.take_or("cpu2", 1.0f64)?;
    let load_spec = args.take("load").unwrap_or_else(|| "1100/0011".into());
    let class: usize = args.take_or("class", 1usize)?;
    args.finish()?;
    if !(1..=2).contains(&class) {
        return Err(ArgError("--class must be 1 or 2".into()));
    }

    let load = parse_load(&load_spec)?;
    let cfg = StudyConfig::new(cpu1, cpu2);
    let a = analyze_arrival(&cfg, &load, class - 1);
    println!("load matrix {load_spec}, arriving class {class}, cpu {cpu1}/{cpu2}");
    println!("BNQ candidates        {:?}", a.bnq_candidates);
    println!("expected wait (BNQ)   {:.4}", a.waiting_bnq);
    println!(
        "optimal site          {} (wait {:.4})",
        a.opt_site, a.waiting_opt
    );
    println!("WIF                   {:.3}", a.wif());
    println!(
        "fairest site          {} (|F| {:.4} vs {:.4})",
        a.fair_site, a.fairness_opt, a.fairness_bnq
    );
    println!("FIF                   {:.3}", a.fif());
    Ok(())
}

/// Parses a `1100/0011`-style load matrix (class-1 row / class-2 row).
fn parse_load(spec: &str) -> Result<LoadMatrix, ArgError> {
    let rows: Vec<&str> = spec.split('/').collect();
    if rows.len() != 2 {
        return Err(ArgError(format!(
            "--load expects `<class1 digits>/<class2 digits>`, got `{spec}`"
        )));
    }
    let mut counts = [[0u32; 4]; 2];
    for (i, row) in rows.iter().enumerate() {
        let digits: Vec<u32> = row
            .chars()
            .map(|c| {
                c.to_digit(10)
                    .ok_or_else(|| ArgError(format!("non-digit `{c}` in --load")))
            })
            .collect::<Result<_, _>>()?;
        if digits.len() != 4 {
            return Err(ArgError(format!(
                "--load rows need exactly 4 digits (one per site), got `{row}`"
            )));
        }
        counts[i].copy_from_slice(&digits);
    }
    Ok(LoadMatrix::new(counts))
}

/// `dqa check`: bounded explicit-state model checking of the allocation
/// & resilience protocols (see `crates/check`), or — with
/// `--replay-trace FILE` — a deterministic replay of a previously
/// emitted counterexample through the real simulator.
pub fn check(mut args: Args) -> Result<(), ArgError> {
    use dqa_check::{CheckConfig, Checker, Mutation, ReplayConfig};

    if let Some(path) = args.take("replay-trace") {
        args.finish()?;
        let text = std::fs::read_to_string(&path).map_err(|e| ArgError(format!("{path}: {e}")))?;
        let replay = ReplayConfig::parse(&text).map_err(ArgError)?;
        let first = replay.run().map_err(|e| ArgError(e.to_string()))?;
        let second = replay.run().map_err(|e| ArgError(e.to_string()))?;
        if first != second {
            return Err(ArgError(
                "replay is not deterministic: reports differ across runs".into(),
            ));
        }
        println!("replayed {path} deterministically (two bitwise-identical runs)");
        println!(
            "  policy {} seed {}: completed {}, lost {}, abandoned {}, reallocations {}, \
             partition drops {}",
            first.policy,
            replay.seed,
            first.completed,
            first.queries_lost,
            first.deadline_abandoned + first.admission_dropped,
            first.deadline_reallocations,
            first.partition_drops
        );
        return Ok(());
    }

    let defaults = CheckConfig::default();
    let mutation = match args.take("mutation") {
        None => None,
        Some(name) => Some(
            Mutation::parse(&name).ok_or_else(|| ArgError(format!("unknown mutation `{name}`")))?,
        ),
    };
    let config = CheckConfig {
        sites: args.take_or("sites", defaults.sites)?,
        queries: args.take_or("queries", defaults.queries)?,
        max_crashes: args.take_or("crashes", defaults.max_crashes)?,
        fault_retries: args.take_or("fault-retries", defaults.fault_retries)?,
        partition: args.take_or("partition", 1u8)? != 0,
        suspicion: args.take_or("suspicion", 1u8)? != 0,
        realloc_budget: match args.take_opt::<u32>("realloc-budget")? {
            Some(b) => Some(b),
            None => defaults.realloc_budget,
        },
        admission_retries: match args.take_opt::<u32>("admission-retries")? {
            Some(b) => Some(b),
            None => defaults.admission_retries,
        },
        window_barrier: args.take_or("window-barrier", 0u8)? != 0,
        redundancy: args.take_or("redundancy", 0u8)? != 0,
        mutation: None,
    };
    let config = match mutation {
        Some(m) => config.with_mutation(m),
        None => config,
    };
    let emit_trace = args.take("emit-trace");
    args.finish()?;
    if config.sites == 0 || config.sites > usize::from(u8::MAX) {
        return Err(ArgError("--sites must be in 1..=255".into()));
    }
    if config.queries == 0 {
        return Err(ArgError("--queries must be at least 1".into()));
    }

    let report = Checker::new(config).run();
    println!(
        "checked {} sites x {} queries, {} crash(es): {} states, {} transitions, depth {}",
        config.sites,
        config.queries,
        config.max_crashes,
        report.states,
        report.transitions,
        report.max_depth
    );
    match report.violation {
        None => {
            println!(
                "all invariants hold ({} terminal states)",
                report.terminal_states
            );
            Ok(())
        }
        Some(v) => {
            println!("counterexample ({} steps):", v.trace.len());
            for (i, action) in v.trace.iter().enumerate() {
                println!("  {:>3}. {action}", i + 1);
            }
            if let Some(path) = emit_trace {
                let replay = ReplayConfig::from_trace(&config, &v.trace);
                std::fs::write(&path, replay.serialize())
                    .map_err(|e| ArgError(format!("{path}: {e}")))?;
                println!("wrote replayable counterexample to {path}");
            }
            Err(ArgError(format!(
                "invariant violated: {}",
                v.invariant.name()
            )))
        }
    }
}

// `main` refers to the run subcommand as `commands::run`.
pub use run_cmd as run;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_spec_round_trip() {
        let l = parse_load("2100/0011").unwrap();
        assert_eq!(l.site_population(0), [2, 0]);
        assert_eq!(l.site_population(3), [0, 1]);
        assert!(parse_load("21/0011").is_err());
        assert!(parse_load("21000011").is_err());
        assert!(parse_load("2x00/0011").is_err());
    }
}
