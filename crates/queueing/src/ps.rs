//! An egalitarian processor-sharing server (the CPU model).

use dqa_sim::stats::TimeWeighted;
use dqa_sim::SimTime;

/// Epoch token identifying a scheduled PS completion.
///
/// Every state change of a [`PsServer`] (arrival or departure) invalidates
/// previously announced completion times. The server hands out a `PsToken`
/// with each announced completion; the host stores it in the scheduled event
/// and the server only honors the completion if the token is still current.
/// Stale events are simply ignored — the classic lazy-cancellation pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PsToken(u64);

/// The next announced completion of a [`PsServer`]: when, and the token that
/// must accompany it.
pub type NextCompletion = Option<(SimTime, PsToken)>;

/// An egalitarian processor-sharing server.
///
/// All `n` resident jobs receive service simultaneously at rate `1/n` — the
/// paper's model of a time-sliced CPU with negligible quantum (Section 2:
/// "the CPU is modeled as a PS server").
///
/// Internally the server runs on *virtual time*: `V(t)` advances at rate
/// `1/n(t)`, each job is stamped with a finish virtual time
/// `V(arrival) + work`, and the next real-time departure is
/// `now + (minF - V) * n`. This gives O(1) clock updates and exact
/// departure times without per-quantum events.
///
/// # Example
///
/// ```
/// use dqa_queueing::PsServer;
/// use dqa_sim::SimTime;
///
/// let mut cpu: PsServer<&str> = PsServer::new(SimTime::ZERO);
/// // Lone job with 2 units of work: completes at t = 2...
/// let (t1, tok1) = cpu.arrive(SimTime::ZERO, "a", 2.0).unwrap();
/// assert_eq!(t1, SimTime::new(2.0));
/// // ...but a second arrival at t = 1 halves its rate.
/// let (t2, tok2) = cpu.arrive(SimTime::new(1.0), "b", 0.5).unwrap();
/// // "b" needs 0.5 work at rate 1/2 => departs at t = 2.
/// assert_eq!(t2, SimTime::new(2.0));
/// // The earlier token is now stale and its event must be ignored.
/// assert!(cpu.complete(t1, tok1).is_none());
/// let (done, next) = cpu.complete(t2, tok2).unwrap();
/// assert_eq!(done, "b");
/// // "a" had 1 unit left at t=1, ran at 1/2 for 1 unit: 0.5 left, alone now.
/// assert_eq!(next.unwrap().0, SimTime::new(2.5));
/// ```
#[derive(Debug, Clone)]
pub struct PsServer<J> {
    jobs: Vec<Entry<J>>,
    vtime: f64,
    last_update: SimTime,
    epoch: u64,
    seq: u64,
    population: TimeWeighted,
    busy: TimeWeighted,
    completions: u64,
    total_service: f64,
}

#[derive(Debug, Clone)]
struct Entry<J> {
    job: J,
    finish_v: f64,
    seq: u64,
}

impl<J> PsServer<J> {
    /// Creates an idle server whose statistics start at `start`.
    #[must_use]
    pub fn new(start: SimTime) -> Self {
        PsServer {
            jobs: Vec::new(),
            vtime: 0.0,
            last_update: start,
            epoch: 0,
            seq: 0,
            population: TimeWeighted::new(start, 0.0),
            busy: TimeWeighted::new(start, 0.0),
            completions: 0,
            total_service: 0.0,
        }
    }

    /// Advances virtual time to `now`.
    #[inline]
    fn advance(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        assert!(dt >= -1e-9, "PS clock went backwards");
        if !self.jobs.is_empty() {
            self.vtime += dt.max(0.0) / self.jobs.len() as f64;
        }
        self.last_update = now;
    }

    /// Index of the job with the smallest (finish_v, seq).
    #[inline]
    fn front(&self) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.finish_v.total_cmp(&b.finish_v).then(a.seq.cmp(&b.seq)))
            .map(|(i, _)| i)
    }

    /// The next departure (time, token), or `None` if the server is empty.
    #[inline]
    fn next_completion(&self, now: SimTime) -> NextCompletion {
        let i = self.front()?;
        let delta_v = (self.jobs[i].finish_v - self.vtime).max(0.0);
        let t = now + delta_v * self.jobs.len() as f64;
        Some((t, PsToken(self.epoch)))
    }

    /// A job arrives with the given amount of work.
    ///
    /// Returns the new next completion; the host must schedule an event for
    /// it, and any previously scheduled PS completion becomes stale.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative or not finite.
    #[inline]
    pub fn arrive(&mut self, now: SimTime, job: J, work: f64) -> NextCompletion {
        assert!(work.is_finite() && work >= 0.0, "invalid work {work}");
        self.advance(now);
        let seq = self.seq;
        self.seq += 1;
        self.jobs.push(Entry {
            job,
            finish_v: self.vtime + work,
            seq,
        });
        self.total_service += work;
        self.epoch += 1;
        self.population.add(now, 1.0);
        self.busy.set(now, 1.0);
        self.next_completion(now)
    }

    /// The host's completion event fired with token `token`.
    ///
    /// Returns `None` if the token is stale (the event must be ignored);
    /// otherwise the finished job plus the server's new next completion,
    /// which the host must schedule.
    #[inline]
    pub fn complete(&mut self, now: SimTime, token: PsToken) -> Option<(J, NextCompletion)> {
        if token.0 != self.epoch {
            return None;
        }
        self.advance(now);
        let i = self.front().expect("valid token but empty PS server");
        debug_assert!(
            (self.jobs[i].finish_v - self.vtime).abs() < 1e-6,
            "PS departure fired at wrong virtual time: finish {} vs vtime {}",
            self.jobs[i].finish_v,
            self.vtime
        );
        // Snap virtual time to the departure point to avoid drift.
        self.vtime = self.jobs[i].finish_v;
        let entry = self.jobs.swap_remove(i);
        self.epoch += 1;
        self.completions += 1;
        self.population.add(now, -1.0);
        if self.jobs.is_empty() {
            self.busy.set(now, 0.0);
        }
        Some((entry.job, self.next_completion(now)))
    }

    /// Number of resident jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if no job is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs completed so far.
    #[must_use]
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Total work accepted so far.
    #[must_use]
    pub fn total_service(&self) -> f64 {
        self.total_service
    }

    /// Fraction of time the server has been busy, through `now`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.time_average(now)
    }

    /// Time-averaged number of resident jobs, through `now`.
    #[must_use]
    pub fn mean_population(&self, now: SimTime) -> f64 {
        self.population.time_average(now)
    }

    /// Removes one specific resident job — a cancellation (e.g. a query
    /// whose deadline expired). Returns the job's unserved work together
    /// with the server's new next completion; any previously scheduled
    /// completion becomes stale (the epoch is bumped). The removal is
    /// not counted as a completion, and the unserved work is subtracted
    /// from the accepted-service total so work conservation
    /// (`total_service` vs busy time) still balances. Returns `None` if
    /// the job is not resident.
    pub fn remove(&mut self, now: SimTime, job: &J) -> Option<(f64, NextCompletion)>
    where
        J: PartialEq,
    {
        let i = self.jobs.iter().position(|e| e.job == *job)?;
        self.advance(now);
        let unserved = (self.jobs[i].finish_v - self.vtime).max(0.0);
        self.jobs.swap_remove(i);
        self.total_service -= unserved;
        self.epoch += 1;
        self.population.add(now, -1.0);
        if self.jobs.is_empty() {
            self.busy.set(now, 0.0);
        }
        Some((unserved, self.next_completion(now)))
    }

    /// Ejects every resident job without counting completions — a station
    /// crash. The epoch is bumped, so any already-scheduled completion
    /// event carries a stale token and is ignored on delivery. Returns the
    /// ejected jobs in arrival order.
    pub fn clear(&mut self, now: SimTime) -> Vec<J> {
        self.advance(now);
        let mut entries = std::mem::take(&mut self.jobs);
        entries.sort_by_key(|e| e.seq);
        self.epoch += 1;
        self.population.set(now, 0.0);
        self.busy.set(now, 0.0);
        entries.into_iter().map(|e| e.job).collect()
    }

    /// Restarts statistics at `now`, keeping resident jobs.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.population.reset(now);
        self.busy.reset(now);
        self.completions = 0;
        self.total_service = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the server to completion, returning (job, finish time) pairs.
    fn drain<J: Clone>(cpu: &mut PsServer<J>, mut pending: NextCompletion) -> Vec<(J, f64)> {
        let mut out = Vec::new();
        while let Some((t, tok)) = pending {
            let (job, next) = cpu.complete(t, tok).expect("token should be fresh");
            out.push((job, t.as_f64()));
            pending = next;
        }
        out
    }

    #[test]
    fn lone_job_runs_at_full_rate() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        let next = cpu.arrive(SimTime::new(1.0), "x", 3.0);
        let done = drain(&mut cpu, next);
        assert_eq!(done, vec![("x", 4.0)]);
        assert!(cpu.is_empty());
    }

    #[test]
    fn two_equal_jobs_share_equally() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, "a", 1.0);
        let next = cpu.arrive(SimTime::ZERO, "b", 1.0);
        // Each runs at rate 1/2: both finish at t = 2; "a" (earlier seq) first.
        let done = drain(&mut cpu, next);
        assert_eq!(done, vec![("a", 2.0), ("b", 2.0)]);
    }

    #[test]
    fn short_job_overtakes_long_job() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, "long", 10.0);
        let next = cpu.arrive(SimTime::ZERO, "short", 1.0);
        let done = drain(&mut cpu, next);
        // short: 1 unit at rate 1/2 -> departs t=2.
        // long: 10 total, got 1 by t=2, 9 left alone -> departs t=11.
        assert_eq!(done, vec![("short", 2.0), ("long", 11.0)]);
    }

    #[test]
    fn stale_token_is_ignored() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        let first = cpu.arrive(SimTime::ZERO, 1, 2.0).unwrap();
        let _second = cpu.arrive(SimTime::new(1.0), 2, 5.0);
        assert!(cpu.complete(first.0, first.1).is_none());
        assert_eq!(cpu.len(), 2);
    }

    #[test]
    fn work_conservation() {
        // Total service accepted equals busy time when the server is never
        // idle between jobs.
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, 1, 2.0);
        cpu.arrive(SimTime::ZERO, 2, 3.0);
        let next = cpu.arrive(SimTime::ZERO, 3, 4.0);
        let done = drain(&mut cpu, next);
        let end = done.last().unwrap().1;
        assert!((end - 9.0).abs() < 1e-9, "total busy time {end}");
        assert!((cpu.utilization(SimTime::new(9.0)) - 1.0).abs() < 1e-9);
        assert_eq!(cpu.completions(), 3);
        assert_eq!(cpu.total_service(), 9.0);
    }

    #[test]
    fn staggered_arrivals_exact_departures() {
        // a: work 4 at t=0; b: work 1 at t=2.
        // [0,2): a alone, 2 done, 2 left.
        // [2,?): both at rate 1/2. b finishes 1 unit at t=4. a has 1 left.
        // a alone finishes at t=5.
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, "a", 4.0);
        let next = cpu.arrive(SimTime::new(2.0), "b", 1.0);
        let done = drain(&mut cpu, next);
        assert_eq!(done, vec![("b", 4.0), ("a", 5.0)]);
    }

    #[test]
    fn mean_population_square_case() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        let next = cpu.arrive(SimTime::ZERO, (), 2.0);
        let (_, next) = cpu.complete(next.unwrap().0, next.unwrap().1).unwrap();
        assert!(next.is_none());
        // population 1 for [0,2), 0 for [2,4)
        assert!((cpu.mean_population(SimTime::new(4.0)) - 0.5).abs() < 1e-12);
        assert!((cpu.utilization(SimTime::new(4.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_work_departs_immediately() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        let (t, tok) = cpu.arrive(SimTime::new(3.0), (), 0.0).unwrap();
        assert_eq!(t, SimTime::new(3.0));
        assert!(cpu.complete(t, tok).is_some());
    }

    #[test]
    fn reset_stats_keeps_jobs() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, 1, 100.0);
        cpu.reset_stats(SimTime::new(10.0));
        assert_eq!(cpu.len(), 1);
        assert_eq!(cpu.completions(), 0);
        assert!((cpu.utilization(SimTime::new(20.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_ejects_jobs_and_stales_tokens() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, "a", 5.0);
        let next = cpu.arrive(SimTime::ZERO, "b", 5.0).unwrap();
        let ejected = cpu.clear(SimTime::new(1.0));
        assert_eq!(ejected, vec!["a", "b"], "arrival order");
        assert!(cpu.is_empty());
        assert_eq!(cpu.completions(), 0, "crash victims are not completions");
        // The completion scheduled before the crash is now stale.
        assert!(cpu.complete(next.0, next.1).is_none());
        // The station restarts cleanly after the crash.
        let fresh = cpu.arrive(SimTime::new(2.0), "c", 1.0).unwrap();
        assert_eq!(fresh.0, SimTime::new(3.0));
    }

    #[test]
    fn clear_on_idle_is_empty() {
        let mut cpu: PsServer<u32> = PsServer::new(SimTime::ZERO);
        assert!(cpu.clear(SimTime::new(1.0)).is_empty());
    }

    #[test]
    fn remove_returns_unserved_work_and_stales_tokens() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, "a", 4.0);
        let stale = cpu.arrive(SimTime::ZERO, "b", 4.0).unwrap();
        // At t=2 both ran at rate 1/2 -> each has 3 units left.
        let (unserved, next) = cpu.remove(SimTime::new(2.0), &"b").unwrap();
        assert!((unserved - 3.0).abs() < 1e-9, "unserved {unserved}");
        assert_eq!(cpu.len(), 1);
        // Pre-removal completion is stale; the survivor's is rescheduled:
        // "a" has 3 units left alone -> departs at t=5.
        assert!(cpu.complete(stale.0, stale.1).is_none());
        let (t, tok) = next.unwrap();
        assert_eq!(t, SimTime::new(5.0));
        let (done, rest) = cpu.complete(t, tok).unwrap();
        assert_eq!(done, "a");
        assert!(rest.is_none());
        // Accepted service shrank by the unserved work: 8 - 3 = 5, which
        // equals the busy time actually rendered by t=5.
        assert!((cpu.total_service() - 5.0).abs() < 1e-9);
        assert_eq!(cpu.completions(), 1, "removal is not a completion");
    }

    #[test]
    fn remove_missing_job_is_none() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        let next = cpu.arrive(SimTime::ZERO, 1, 2.0);
        assert!(cpu.remove(SimTime::new(1.0), &9).is_none());
        // The announced completion is still honored.
        let (t, tok) = next.unwrap();
        assert!(cpu.complete(t, tok).is_some());
    }

    #[test]
    fn remove_last_job_idles_the_server() {
        let mut cpu = PsServer::new(SimTime::ZERO);
        cpu.arrive(SimTime::ZERO, "x", 10.0);
        let (unserved, next) = cpu.remove(SimTime::new(4.0), &"x").unwrap();
        assert!((unserved - 6.0).abs() < 1e-9);
        assert!(next.is_none());
        assert!(cpu.is_empty());
        assert!((cpu.utilization(SimTime::new(8.0)) - 0.5).abs() < 1e-12);
        assert!((cpu.total_service() - 4.0).abs() < 1e-9);
    }
}
