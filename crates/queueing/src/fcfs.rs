//! A single-server first-come-first-served queue (the disk model).

use std::collections::VecDeque;

use dqa_sim::stats::TimeWeighted;
use dqa_sim::SimTime;

/// A single-server FCFS queue.
///
/// The paper models each disk as an FCFS server: page-read requests are
/// served one at a time in arrival order, and service times never change
/// once started, so completions never need to be cancelled.
///
/// The queue is generic over a job tag `J` (the host model typically stores
/// a query identifier). The host drives it with two calls:
///
/// * [`FcfsQueue::arrive`] — a job arrives; if the server was idle the job
///   starts immediately and the call returns its completion time for the
///   host to schedule.
/// * [`FcfsQueue::complete`] — the host's completion event fired; the
///   finished job is returned along with the completion time of the next
///   job, if one was waiting.
///
/// # Example
///
/// ```
/// use dqa_queueing::FcfsQueue;
/// use dqa_sim::SimTime;
///
/// let mut disk: FcfsQueue<&str> = FcfsQueue::new(SimTime::ZERO);
/// // "a" starts service immediately.
/// assert_eq!(disk.arrive(SimTime::new(0.0), "a", 2.0), Some(SimTime::new(2.0)));
/// // "b" has to wait behind "a".
/// assert_eq!(disk.arrive(SimTime::new(1.0), "b", 2.0), None);
/// // "a" finishes; "b" starts and will finish at t = 4.
/// let (done, next) = disk.complete(SimTime::new(2.0));
/// assert_eq!(done, "a");
/// assert_eq!(next, Some(SimTime::new(4.0)));
/// ```
#[derive(Debug, Clone)]
pub struct FcfsQueue<J> {
    /// Waiting jobs (not including the one in service).
    waiting: VecDeque<(J, f64)>,
    /// The job currently in service, if any.
    in_service: Option<J>,
    /// Time-weighted number in system (queue + service).
    population: TimeWeighted,
    /// Time-weighted busy indicator.
    busy: TimeWeighted,
    completions: u64,
    total_service: f64,
}

impl<J> FcfsQueue<J> {
    /// Creates an empty, idle queue whose statistics start at `start`.
    #[must_use]
    pub fn new(start: SimTime) -> Self {
        FcfsQueue {
            waiting: VecDeque::new(),
            in_service: None,
            population: TimeWeighted::new(start, 0.0),
            busy: TimeWeighted::new(start, 0.0),
            completions: 0,
            total_service: 0.0,
        }
    }

    /// A job arrives with the given service requirement.
    ///
    /// Returns `Some(completion_time)` if the job enters service
    /// immediately (the host must schedule a completion event for it);
    /// `None` if it queued behind others.
    ///
    /// # Panics
    ///
    /// Panics if `service` is negative or not finite.
    #[inline]
    pub fn arrive(&mut self, now: SimTime, job: J, service: f64) -> Option<SimTime> {
        assert!(
            service.is_finite() && service >= 0.0,
            "invalid service time {service}"
        );
        self.population.add(now, 1.0);
        if self.in_service.is_none() {
            self.in_service = Some(job);
            self.busy.set(now, 1.0);
            self.total_service += service;
            Some(now + service)
        } else {
            self.waiting.push_back((job, service));
            None
        }
    }

    /// The host's completion event fired: the job in service finishes.
    ///
    /// Returns the finished job and, if another job was waiting, the
    /// completion time of that next job (which the host must schedule).
    ///
    /// # Panics
    ///
    /// Panics if the server is idle — that indicates the host delivered a
    /// completion event that was never issued.
    #[inline]
    pub fn complete(&mut self, now: SimTime) -> (J, Option<SimTime>) {
        let done = self
            .in_service
            .take()
            .expect("FCFS completion with idle server");
        self.completions += 1;
        self.population.add(now, -1.0);
        match self.waiting.pop_front() {
            Some((job, service)) => {
                self.in_service = Some(job);
                self.total_service += service;
                (done, Some(now + service))
            }
            None => {
                self.busy.set(now, 0.0);
                (done, None)
            }
        }
    }

    /// Number of jobs in the system (waiting plus in service).
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.waiting.len() + usize::from(self.in_service.is_some())
    }

    /// Returns `true` if the station is empty and idle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if a job is in service.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Jobs that have completed service.
    #[must_use]
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Total service time handed to the server so far (including the job in
    /// service, if any).
    #[must_use]
    pub fn total_service(&self) -> f64 {
        self.total_service
    }

    /// Fraction of time the server has been busy, through `now`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.time_average(now)
    }

    /// Time-averaged number of jobs in the system, through `now`.
    #[must_use]
    pub fn mean_population(&self, now: SimTime) -> f64 {
        self.population.time_average(now)
    }

    /// Returns `true` if `job` is the one currently in service. A job in
    /// service cannot be removed — its completion event is already
    /// scheduled and FCFS service never changes once started — so a host
    /// cancelling it must flag the job and discard it at completion.
    #[must_use]
    pub fn is_in_service(&self, job: &J) -> bool
    where
        J: PartialEq,
    {
        self.in_service.as_ref() == Some(job)
    }

    /// Removes one specific *waiting* job — a cancellation. Returns its
    /// service requirement (never started, so no statistics beyond the
    /// population need correcting), or `None` if the job is not waiting
    /// (absent, or in service — see [`FcfsQueue::is_in_service`]).
    pub fn remove_waiting(&mut self, now: SimTime, job: &J) -> Option<f64>
    where
        J: PartialEq,
    {
        let i = self.waiting.iter().position(|(j, _)| j == job)?;
        let (_, service) = self.waiting.remove(i).expect("indexed waiting job");
        self.population.add(now, -1.0);
        Some(service)
    }

    /// Ejects every job (in service and waiting) without counting
    /// completions — a station crash. Already-scheduled completion events
    /// for this station become dangling; the host must discard them (e.g.
    /// by stamping events with a crash epoch). Returns the ejected jobs in
    /// FIFO order, in-service first.
    pub fn clear(&mut self, now: SimTime) -> Vec<J> {
        let mut out = Vec::with_capacity(self.len());
        if let Some(job) = self.in_service.take() {
            out.push(job);
        }
        out.extend(self.waiting.drain(..).map(|(job, _)| job));
        self.population.set(now, 0.0);
        self.busy.set(now, 0.0);
        out
    }

    /// Restarts the statistics at `now` (warmup truncation), keeping the
    /// jobs currently present.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.population.reset(now);
        self.busy.reset(now);
        self.completions = 0;
        self.total_service = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_fifo_order() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        assert!(q.is_empty());
        let c1 = q.arrive(SimTime::ZERO, 1, 1.0).unwrap();
        assert_eq!(q.arrive(SimTime::ZERO, 2, 1.0), None);
        assert_eq!(q.arrive(SimTime::ZERO, 3, 1.0), None);
        assert_eq!(q.len(), 3);
        assert!(q.is_busy());

        let (j, c2) = q.complete(c1);
        assert_eq!(j, 1);
        let (j, c3) = q.complete(c2.unwrap());
        assert_eq!(j, 2);
        let (j, none) = q.complete(c3.unwrap());
        assert_eq!(j, 3);
        assert_eq!(none, None);
        assert!(q.is_empty());
        assert_eq!(q.completions(), 3);
    }

    #[test]
    fn completion_times_accumulate_service() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        let c1 = q.arrive(SimTime::new(0.0), "a", 3.0).unwrap();
        assert_eq!(c1, SimTime::new(3.0));
        q.arrive(SimTime::new(1.0), "b", 2.0);
        let (_, c2) = q.complete(c1);
        assert_eq!(c2, Some(SimTime::new(5.0)));
        assert_eq!(q.total_service(), 5.0);
    }

    #[test]
    fn utilization_and_population() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        // idle [0,1), busy [1,3), idle [3,4)
        let c = q.arrive(SimTime::new(1.0), (), 2.0).unwrap();
        q.complete(c);
        assert!((q.utilization(SimTime::new(4.0)) - 0.5).abs() < 1e-12);
        assert!((q.mean_population(SimTime::new(4.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_jobs() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        q.arrive(SimTime::ZERO, 1, 10.0).unwrap();
        q.arrive(SimTime::ZERO, 2, 10.0);
        q.reset_stats(SimTime::new(5.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.completions(), 0);
        // still busy after the reset
        assert!((q.utilization(SimTime::new(6.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_ejects_all_jobs_in_fifo_order() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        q.arrive(SimTime::ZERO, 1, 1.0).unwrap();
        q.arrive(SimTime::ZERO, 2, 1.0);
        q.arrive(SimTime::ZERO, 3, 1.0);
        let ejected = q.clear(SimTime::new(0.5));
        assert_eq!(ejected, vec![1, 2, 3]);
        assert!(q.is_empty());
        assert!(!q.is_busy());
        assert_eq!(q.completions(), 0, "crash victims are not completions");
        // The station restarts cleanly after the crash.
        assert!(q.arrive(SimTime::new(1.0), 4, 1.0).is_some());
    }

    #[test]
    fn clear_on_idle_is_empty() {
        let mut q: FcfsQueue<u32> = FcfsQueue::new(SimTime::ZERO);
        assert!(q.clear(SimTime::new(1.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn complete_on_idle_panics() {
        let mut q: FcfsQueue<()> = FcfsQueue::new(SimTime::ZERO);
        q.complete(SimTime::new(1.0));
    }

    #[test]
    fn remove_waiting_skips_the_job_in_service() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        let c1 = q.arrive(SimTime::ZERO, 1, 2.0).unwrap();
        q.arrive(SimTime::ZERO, 2, 3.0);
        q.arrive(SimTime::ZERO, 3, 4.0);
        assert!(q.is_in_service(&1));
        assert!(!q.is_in_service(&2));
        // The in-service job cannot be removed; a waiting one can.
        assert_eq!(q.remove_waiting(SimTime::new(1.0), &1), None);
        assert_eq!(q.remove_waiting(SimTime::new(1.0), &2), Some(3.0));
        assert_eq!(q.remove_waiting(SimTime::new(1.0), &2), None);
        assert_eq!(q.len(), 2);
        // FIFO order is preserved for the survivors: 1 then 3.
        let (done, c2) = q.complete(c1);
        assert_eq!(done, 1);
        assert_eq!(c2, Some(SimTime::new(6.0)));
        let (done, none) = q.complete(c2.unwrap());
        assert_eq!(done, 3);
        assert!(none.is_none());
        // Population integrates to: 3 jobs [0,1), 2 jobs [1,2), 1 [2,6).
        assert!((q.mean_population(SimTime::new(6.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_service_time_is_legal() {
        let mut q = FcfsQueue::new(SimTime::ZERO);
        let c = q.arrive(SimTime::new(1.0), (), 0.0).unwrap();
        assert_eq!(c, SimTime::new(1.0));
    }
}
