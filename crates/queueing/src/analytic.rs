//! Closed-form queueing results used to validate the simulation components.
//!
//! These are the standard formulas from Kleinrock's *Queueing Systems*
//! (which the paper cites for the M/G/1-PS fairness result in Section 3).
//! The test suites simulate the corresponding systems with the [`crate`]
//! components and check agreement, which pins down both the station logic
//! and the statistics pipeline.

/// Mean response time (wait + service) of an M/M/1 FCFS queue.
///
/// # Panics
///
/// Panics unless `0 <= lambda < mu` (the queue must be stable).
///
/// # Example
///
/// ```
/// use dqa_queueing::analytic::mm1_response;
/// // rho = 0.5, E[S] = 1: response = 1 / (mu - lambda) = 2
/// assert_eq!(mm1_response(0.5, 1.0), 2.0);
/// ```
#[must_use]
pub fn mm1_response(lambda: f64, mu: f64) -> f64 {
    assert!(
        lambda >= 0.0 && lambda < mu,
        "unstable M/M/1: lambda {lambda} >= mu {mu}"
    );
    1.0 / (mu - lambda)
}

/// Mean waiting (queueing) time of an M/M/1 FCFS queue.
///
/// # Panics
///
/// Panics unless `0 <= lambda < mu`.
#[must_use]
pub fn mm1_wait(lambda: f64, mu: f64) -> f64 {
    mm1_response(lambda, mu) - 1.0 / mu
}

/// Time-averaged number in system of an M/M/1 queue.
///
/// # Panics
///
/// Panics unless `0 <= lambda < mu`.
#[must_use]
pub fn mm1_number_in_system(lambda: f64, mu: f64) -> f64 {
    let rho = lambda / mu;
    assert!(rho < 1.0, "unstable M/M/1");
    rho / (1.0 - rho)
}

/// The Erlang-C probability that an arriving M/M/c customer must wait.
///
/// # Panics
///
/// Panics unless `c >= 1` and `lambda < c * mu`.
#[must_use]
pub fn erlang_c(c: u32, lambda: f64, mu: f64) -> f64 {
    assert!(c >= 1, "need at least one server");
    let a = lambda / mu; // offered load in Erlangs
    assert!(a < c as f64, "unstable M/M/c: offered load {a} >= c {c}");
    // sum_{k=0}^{c-1} a^k / k!  computed iteratively
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..c {
        term *= a / k as f64;
        sum += term;
    }
    let term_c = term * a / c as f64;
    let rho = a / c as f64;
    let top = term_c / (1.0 - rho);
    top / (sum + top)
}

/// Mean waiting time of an M/M/c FCFS queue.
///
/// # Panics
///
/// Panics unless `c >= 1` and `lambda < c * mu`.
#[must_use]
pub fn mmc_wait(c: u32, lambda: f64, mu: f64) -> f64 {
    let pw = erlang_c(c, lambda, mu);
    pw / (c as f64 * mu - lambda)
}

/// Mean response time of an M/M/c FCFS queue.
///
/// # Panics
///
/// Panics unless `c >= 1` and `lambda < c * mu`.
#[must_use]
pub fn mmc_response(c: u32, lambda: f64, mu: f64) -> f64 {
    mmc_wait(c, lambda, mu) + 1.0 / mu
}

/// Mean response time of an M/G/1 processor-sharing queue for a job of
/// expected size `service`.
///
/// Under PS, the conditional response time is `x / (1 - rho)` — every job
/// has the same *normalized* response time, the fairness property the paper
/// invokes in Section 3.
///
/// # Panics
///
/// Panics unless `0 <= rho < 1`.
#[must_use]
pub fn mg1_ps_response(service: f64, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "invalid utilization {rho}");
    service / (1.0 - rho)
}

/// Throughput of the classic "machine repairman" interactive system:
/// `n` terminals with mean think time `think`, one exponential FCFS server
/// with mean service `service`. Computed by single-class MVA recursion.
///
/// # Panics
///
/// Panics if `think < 0` or `service <= 0`.
#[must_use]
pub fn repairman_throughput(n: u32, think: f64, service: f64) -> f64 {
    assert!(think >= 0.0, "negative think time");
    assert!(service > 0.0, "service must be positive");
    let mut q = 0.0; // mean queue length seen at the server
    let mut x = 0.0;
    for k in 1..=n {
        let r = service * (1.0 + q); // arrival theorem
        x = k as f64 / (think + r);
        q = x * r; // Little's law at the server
    }
    x
}

/// Mean response time (time at the server) in the machine-repairman system.
///
/// # Panics
///
/// Panics if `n == 0`, `think < 0`, or `service <= 0`.
#[must_use]
pub fn repairman_response(n: u32, think: f64, service: f64) -> f64 {
    assert!(n > 0, "need at least one terminal");
    let x = repairman_throughput(n, think, service);
    n as f64 / x - think
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        // rho = 0.8, mu = 1: W = rho/(mu - lambda) = 4, R = 5, L = 4
        assert!((mm1_wait(0.8, 1.0) - 4.0).abs() < 1e-12);
        assert!((mm1_response(0.8, 1.0) - 5.0).abs() < 1e-12);
        assert!((mm1_number_in_system(0.8, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_single_server_equals_rho() {
        // For c = 1, P(wait) = rho.
        for &rho in &[0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho, 1.0) - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        assert!((mmc_wait(1, 0.7, 1.0) - mm1_wait(0.7, 1.0)).abs() < 1e-12);
        assert!((mmc_response(1, 0.7, 1.0) - mm1_response(0.7, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mm2_known_value() {
        // M/M/2 with lambda = 1, mu = 1 (rho = 0.5): Erlang C = 1/3,
        // W = (1/3)/(2 - 1) = 1/3.
        assert!((erlang_c(2, 1.0, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((mmc_wait(2, 1.0, 1.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn more_servers_less_waiting() {
        let w2 = mmc_wait(2, 1.5, 1.0);
        let w3 = mmc_wait(3, 1.5, 1.0);
        let w4 = mmc_wait(4, 1.5, 1.0);
        assert!(w2 > w3 && w3 > w4);
    }

    #[test]
    fn ps_normalized_response_is_constant() {
        let rho = 0.6;
        let r1 = mg1_ps_response(1.0, rho) / 1.0;
        let r2 = mg1_ps_response(5.0, rho) / 5.0;
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn repairman_limits() {
        // With one terminal there is no queueing: X = 1/(Z + S).
        let x1 = repairman_throughput(1, 10.0, 1.0);
        assert!((x1 - 1.0 / 11.0).abs() < 1e-12);
        assert!((repairman_response(1, 10.0, 1.0) - 1.0).abs() < 1e-12);
        // Saturation: X -> 1/S as N grows.
        let x_big = repairman_throughput(200, 10.0, 1.0);
        assert!((x_big - 1.0).abs() < 1e-6);
    }

    #[test]
    fn repairman_response_monotone_in_population() {
        let mut prev = 0.0;
        for n in 1..30 {
            let r = repairman_response(n, 50.0, 2.0);
            assert!(r >= prev - 1e-12, "response not monotone at n = {n}");
            prev = r;
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn mm1_rejects_unstable() {
        let _ = mm1_response(2.0, 1.0);
    }
}
