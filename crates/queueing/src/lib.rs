//! # dqa-queueing — queueing-station components for the DB-site model
//!
//! The paper models a database site as a two-resource queueing station
//! (Figure 2): a CPU served **processor-sharing** and a set of disks served
//! **first-come-first-served**, fed by terminals and connected to the other
//! sites by a **token-ring** local network (Section 2). This crate implements
//! each of those service centers as a reusable component that plugs into the
//! [`dqa_sim`] event loop, plus the textbook closed-form results used to
//! validate them.
//!
//! Components follow a common embedding pattern: they do not schedule events
//! themselves. Instead, every state-changing call returns the time of the
//! next completion (if it changed), and the *host model* schedules an event
//! for it. Preemptive-resume stations ([`PsServer`]) additionally return an
//! epoch token so the host can recognize and discard stale completion events
//! — the standard "lazy cancellation" technique.
//!
//! * [`FcfsQueue`] — a single-server FIFO queue (one disk).
//! * [`PsServer`] — an egalitarian processor-sharing server (the CPU).
//! * [`TokenRing`] — the communications subnet: per-site outgoing FIFOs
//!   polled round-robin, one message in flight at a time, transfer time
//!   linear in message length.
//! * [`analytic`] — M/M/1, M/M/c, M/G/1-PS and repairman-model formulas.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
mod fcfs;
mod ps;
mod token_ring;

pub use fcfs::FcfsQueue;
pub use ps::{PsServer, PsToken};
pub use token_ring::TokenRing;
