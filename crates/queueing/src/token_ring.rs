//! The token-ring communications subnet.

use std::collections::VecDeque;

use dqa_sim::stats::TimeWeighted;
use dqa_sim::SimTime;

/// A token-ring local network, as modeled in Section 2 of the paper.
///
/// Each site has one outgoing FIFO message queue. The ring polls sites in
/// round-robin order for messages to send; polling overhead is negligible
/// (zero in the model), one message is in flight at a time, and the cost of
/// sending a message is linear in its length — the caller passes the
/// resulting transfer `duration` directly.
///
/// Host-model embedding: [`TokenRing::send`] enqueues a message and returns
/// the transmission-complete time if the ring was idle and picked it up
/// immediately; [`TokenRing::transmit_done`] delivers the finished message
/// and returns the completion time of the next transmission, if any site had
/// a message waiting.
///
/// # Example
///
/// ```
/// use dqa_queueing::TokenRing;
/// use dqa_sim::SimTime;
///
/// let mut ring: TokenRing<&str> = TokenRing::new(3, SimTime::ZERO);
/// // Ring idle: transmission starts at once, takes 1 unit.
/// let t = ring.send(SimTime::ZERO, 0, "q->site2", 1.0).unwrap();
/// assert_eq!(t, SimTime::new(1.0));
/// // A second message (from another site) must wait for the token.
/// assert!(ring.send(SimTime::new(0.5), 1, "reply", 2.0).is_none());
/// let (msg, from, next) = ring.transmit_done(t);
/// assert_eq!((msg, from), ("q->site2", 0));
/// assert_eq!(next, Some(SimTime::new(3.0)));
/// ```
#[derive(Debug, Clone)]
pub struct TokenRing<M> {
    queues: Vec<VecDeque<(M, f64)>>,
    in_flight: Option<(M, usize)>,
    cursor: usize,
    busy: TimeWeighted,
    backlog: TimeWeighted,
    sent: u64,
    busy_time: f64,
}

impl<M> TokenRing<M> {
    /// Creates an idle ring connecting `num_sites` sites.
    ///
    /// # Panics
    ///
    /// Panics if `num_sites` is zero.
    #[must_use]
    pub fn new(num_sites: usize, start: SimTime) -> Self {
        assert!(num_sites > 0, "a ring needs at least one site");
        TokenRing {
            queues: (0..num_sites).map(|_| VecDeque::new()).collect(),
            in_flight: None,
            cursor: 0,
            busy: TimeWeighted::new(start, 0.0),
            backlog: TimeWeighted::new(start, 0.0),
            sent: 0,
            busy_time: 0.0,
        }
    }

    /// Number of sites on the ring.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues `msg` from site `from`, with a transfer time of `duration`.
    ///
    /// Returns `Some(done_time)` if the ring was idle and transmission
    /// begins immediately (the host must schedule a `transmit_done` event);
    /// `None` if the message waits its turn.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range or `duration` is negative/not
    /// finite.
    pub fn send(&mut self, now: SimTime, from: usize, msg: M, duration: f64) -> Option<SimTime> {
        assert!(from < self.queues.len(), "unknown site {from}");
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid transfer duration {duration}"
        );
        self.backlog.add(now, 1.0);
        self.queues[from].push_back((msg, duration));
        if self.in_flight.is_none() {
            self.start_next(now)
        } else {
            None
        }
    }

    /// The host's transmission-complete event fired.
    ///
    /// Returns the delivered message, its sending site, and the completion
    /// time of the next transmission if one started (the host must schedule
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight.
    pub fn transmit_done(&mut self, now: SimTime) -> (M, usize, Option<SimTime>) {
        let (msg, from) = self.in_flight.take().expect("transmit_done with idle ring");
        self.sent += 1;
        self.backlog.add(now, -1.0);
        let next = self.start_next(now);
        (msg, from, next)
    }

    /// Polls sites round-robin from the cursor and starts the next
    /// transmission, returning its completion time.
    fn start_next(&mut self, now: SimTime) -> Option<SimTime> {
        let n = self.queues.len();
        for k in 0..n {
            let s = (self.cursor + k) % n;
            if let Some((msg, duration)) = self.queues[s].pop_front() {
                self.cursor = (s + 1) % n;
                self.in_flight = Some((msg, s));
                self.busy.set(now, 1.0);
                self.busy_time += duration;
                return Some(now + duration);
            }
        }
        self.busy.set(now, 0.0);
        None
    }

    /// Messages delivered so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages waiting or in flight.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>() + usize::from(self.in_flight.is_some())
    }

    /// Fraction of time the ring has been transmitting, through `now`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.time_average(now)
    }

    /// Time-averaged number of messages waiting or in flight, through `now`.
    #[must_use]
    pub fn mean_backlog(&self, now: SimTime) -> f64 {
        self.backlog.time_average(now)
    }

    /// Restarts statistics at `now`, keeping queued messages.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.busy.reset(now);
        self.backlog.reset(now);
        self.sent = 0;
        self.busy_time = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_ring_transmits_immediately() {
        let mut ring = TokenRing::new(2, SimTime::ZERO);
        let t = ring.send(SimTime::new(1.0), 0, "m", 2.5).unwrap();
        assert_eq!(t, SimTime::new(3.5));
        assert_eq!(ring.pending(), 1);
        let (m, from, next) = ring.transmit_done(t);
        assert_eq!((m, from), ("m", 0));
        assert_eq!(next, None);
        assert_eq!(ring.messages_sent(), 1);
        assert_eq!(ring.pending(), 0);
    }

    #[test]
    fn round_robin_alternates_between_sites() {
        let mut ring = TokenRing::new(3, SimTime::ZERO);
        // Site 0 floods; site 2 sends one message. Round-robin must let
        // site 2 in after one site-0 message.
        let t1 = ring.send(SimTime::ZERO, 0, "a1", 1.0).unwrap();
        assert!(ring.send(SimTime::ZERO, 0, "a2", 1.0).is_none());
        assert!(ring.send(SimTime::ZERO, 2, "c1", 1.0).is_none());

        let (m, _, t2) = ring.transmit_done(t1);
        assert_eq!(m, "a1");
        // cursor moved past 0, so site 2 goes before site 0's second message
        let (m, from, t3) = ring.transmit_done(t2.unwrap());
        assert_eq!((m, from), ("c1", 2));
        let (m, _, none) = ring.transmit_done(t3.unwrap());
        assert_eq!(m, "a2");
        assert_eq!(none, None);
    }

    #[test]
    fn per_site_queue_is_fifo() {
        let mut ring = TokenRing::new(1, SimTime::ZERO);
        let t1 = ring.send(SimTime::ZERO, 0, 1, 1.0).unwrap();
        ring.send(SimTime::ZERO, 0, 2, 1.0);
        ring.send(SimTime::ZERO, 0, 3, 1.0);
        let (m1, _, t2) = ring.transmit_done(t1);
        let (m2, _, t3) = ring.transmit_done(t2.unwrap());
        let (m3, _, _) = ring.transmit_done(t3.unwrap());
        assert_eq!((m1, m2, m3), (1, 2, 3));
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut ring = TokenRing::new(2, SimTime::ZERO);
        let t = ring.send(SimTime::ZERO, 0, (), 3.0).unwrap();
        ring.transmit_done(t);
        // busy [0,3), idle [3,6)
        assert!((ring.utilization(SimTime::new(6.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn backlog_average() {
        let mut ring = TokenRing::new(2, SimTime::ZERO);
        let t = ring.send(SimTime::ZERO, 0, (), 2.0).unwrap();
        ring.send(SimTime::ZERO, 1, (), 2.0);
        // backlog 2 on [0,2), then 1 on [2,4)
        let (_, _, t2) = ring.transmit_done(t);
        ring.transmit_done(t2.unwrap());
        assert!((ring.mean_backlog(SimTime::new(4.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle ring")]
    fn transmit_done_on_idle_panics() {
        let mut ring: TokenRing<()> = TokenRing::new(1, SimTime::ZERO);
        ring.transmit_done(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn send_from_unknown_site_panics() {
        let mut ring: TokenRing<()> = TokenRing::new(2, SimTime::ZERO);
        ring.send(SimTime::ZERO, 5, (), 1.0);
    }
}
