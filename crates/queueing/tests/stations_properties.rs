//! Property tests of the queueing stations: conservation laws and ordering
//! guarantees under randomized arrival patterns, driven by the
//! deterministic [`dqa_sim::testkit`] case runner.

use dqa_queueing::{FcfsQueue, PsServer, TokenRing};
use dqa_sim::testkit::{cases, Gen};
use dqa_sim::SimTime;

/// Arrival schedule: (inter-arrival gap, service demand) pairs.
fn arb_jobs(g: &mut Gen) -> Vec<(f64, f64)> {
    g.vec_with(1..60, |g| (g.f64_in(0.0..5.0), g.f64_in(0.01..5.0)))
}

/// FCFS serves in arrival order, never loses a job, and is work-conserving:
/// each job's departure is exactly max(arrival, previous departure) +
/// service.
#[test]
fn fcfs_lindley_recurrence() {
    cases(250, 0x50_01, |g| {
        let jobs = arb_jobs(g);
        let mut q = FcfsQueue::new(SimTime::ZERO);
        let mut t = 0.0;
        let mut arrivals = Vec::new();
        // Push all arrivals first, tracking the earliest pending
        // completion; process completions that fall before each arrival.
        let mut pending: Option<SimTime> = None;
        let mut departures = Vec::new();
        for (i, &(gap, service)) in jobs.iter().enumerate() {
            t += gap;
            // drain completions scheduled before this arrival
            while let Some(d) = pending {
                if d.as_f64() <= t {
                    let (job, next) = q.complete(d);
                    departures.push((job, d.as_f64()));
                    pending = next;
                } else {
                    break;
                }
            }
            arrivals.push((t, service));
            if let Some(d) = q.arrive(SimTime::new(t), i, service) {
                pending = Some(d);
            }
        }
        while let Some(d) = pending {
            let (job, next) = q.complete(d);
            departures.push((job, d.as_f64()));
            pending = next;
        }

        assert_eq!(departures.len(), jobs.len());
        // FIFO order
        for (k, &(job, _)) in departures.iter().enumerate() {
            assert_eq!(job, k);
        }
        // Lindley recurrence for departure times
        let mut prev_dep = 0.0f64;
        for (k, &(_, dep)) in departures.iter().enumerate() {
            let (arr, service) = arrivals[k];
            let expected = arr.max(prev_dep) + service;
            assert!(
                (dep - expected).abs() < 1e-9,
                "case {}: job {}: departure {} != Lindley {}",
                g.case(),
                k,
                dep,
                expected
            );
            prev_dep = dep;
        }
    });
}

/// Processor sharing is work-conserving: with all jobs present from time
/// zero, the last departure equals the total work, and every job's
/// departure is at least its own work.
#[test]
fn ps_work_conservation() {
    cases(250, 0x50_02, |g| {
        let works = g.vec_f64(0.01..5.0, 1..40);
        let mut cpu = PsServer::new(SimTime::ZERO);
        let mut next = None;
        for (i, &w) in works.iter().enumerate() {
            next = cpu.arrive(SimTime::ZERO, i, w);
        }
        let total: f64 = works.iter().sum();
        let mut last = 0.0;
        let mut count = 0;
        while let Some((t, tok)) = next {
            let (job, n2) = cpu.complete(t, tok).expect("fresh token");
            assert!(
                t.as_f64() + 1e-9 >= works[job],
                "case {}: job {} departed at {} before receiving its {} work",
                g.case(),
                job,
                t,
                works[job]
            );
            last = t.as_f64();
            next = n2;
            count += 1;
        }
        assert_eq!(count, works.len());
        assert!(
            (last - total).abs() < 1e-6 * (1.0 + total),
            "case {}: makespan {} != total work {}",
            g.case(),
            last,
            total
        );
    });
}

/// Under PS with simultaneous arrivals, jobs depart in order of their
/// service demand (the egalitarian property).
#[test]
fn ps_departures_ordered_by_work() {
    cases(250, 0x50_03, |g| {
        let works = g.vec_f64(0.01..5.0, 2..30);
        let mut cpu = PsServer::new(SimTime::ZERO);
        let mut next = None;
        for (i, &w) in works.iter().enumerate() {
            next = cpu.arrive(SimTime::ZERO, i, w);
        }
        let mut departed = Vec::new();
        while let Some((t, tok)) = next {
            let (job, n2) = cpu.complete(t, tok).expect("fresh token");
            departed.push(works[job]);
            let _ = t;
            next = n2;
        }
        for pair in departed.windows(2) {
            assert!(
                pair[0] <= pair[1] + 1e-9,
                "case {}: longer job departed before shorter: {:?}",
                g.case(),
                pair
            );
        }
    });
}

/// The token ring delivers every message exactly once, and its busy time
/// equals the sum of transfer durations.
#[test]
fn ring_delivers_everything_once() {
    cases(250, 0x50_04, |g| {
        let msgs = g.vec_with(1..60, |g| (g.usize_in(0..5), g.f64_in(0.01..3.0)));
        let mut ring = TokenRing::new(5, SimTime::ZERO);
        let mut pending = None;
        for (i, &(from, dur)) in msgs.iter().enumerate() {
            if let Some(t) = ring.send(SimTime::ZERO, from, i, dur) {
                pending = Some(t);
            }
        }
        let mut seen = vec![false; msgs.len()];
        let mut last = 0.0;
        while let Some(t) = pending {
            let (msg, from, next) = ring.transmit_done(t);
            assert!(
                !seen[msg],
                "case {}: message {} delivered twice",
                g.case(),
                msg
            );
            assert_eq!(from, msgs[msg].0);
            seen[msg] = true;
            last = t.as_f64();
            pending = next;
        }
        assert!(seen.iter().all(|&s| s));
        let total: f64 = msgs.iter().map(|&(_, d)| d).sum();
        assert!(
            (last - total).abs() < 1e-6 * (1.0 + total),
            "case {}: ring makespan {} != total transfer time {}",
            g.case(),
            last,
            total
        );
        assert_eq!(ring.messages_sent(), msgs.len() as u64);
    });
}

/// Per-site FIFO: messages from the same site are delivered in the order
/// they were enqueued, whatever the interleaving.
#[test]
fn ring_preserves_per_site_order() {
    cases(250, 0x50_05, |g| {
        let msgs = g.vec_with(1..40, |g| (g.usize_in(0..3), g.f64_in(0.1..2.0)));
        let mut ring = TokenRing::new(3, SimTime::ZERO);
        let mut pending = None;
        for (i, &(from, dur)) in msgs.iter().enumerate() {
            if let Some(t) = ring.send(SimTime::ZERO, from, i, dur) {
                pending = Some(t);
            }
        }
        let mut last_per_site = [None::<usize>; 3];
        while let Some(t) = pending {
            let (msg, from, next) = ring.transmit_done(t);
            if let Some(prev) = last_per_site[from] {
                assert!(
                    msg > prev,
                    "case {}: site {} out of order: {} after {}",
                    g.case(),
                    from,
                    msg,
                    prev
                );
            }
            last_per_site[from] = Some(msg);
            pending = next;
        }
    });
}
