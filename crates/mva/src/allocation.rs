//! The Section-3 optimal-allocation study: WIF and FIF.
//!
//! A four-site system with two query classes is analyzed one allocation
//! decision at a time. The load distribution is the matrix `L = [l_ij]`
//! giving the number of class-`i` queries at site `j`. A class-`i` query
//! arrives; each candidate site is evaluated by solving that site's closed
//! queueing network (one PS CPU + `num_disks` FCFS disks) exactly with MVA,
//! since — queries never migrating — each site is an independent closed
//! network under a static load.
//!
//! Two improvement factors compare the naive **BNQ** choice (site with the
//! fewest queries) to the best possible choice:
//!
//! * **WIF** — relative reduction in the arriving query's expected waiting
//!   time per cycle (Table 5);
//! * **FIF** — relative reduction in the system's unfairness, the absolute
//!   difference between the two classes' normalized waiting times (Table 6).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::{solve, Network, SolvedLattice, StationKind};

/// Index of a query class in the two-class study: `0` is the paper's class
/// 1 (I/O-bound), `1` is class 2 (CPU-bound).
pub type ClassIndex = usize;

/// Hardware of a DB site in the study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Number of disks (`num_disks`), each an FCFS server.
    pub num_disks: u32,
    /// Mean disk access time (`disk_time`); the paper's unit of time.
    pub disk_time: f64,
}

impl Default for SiteSpec {
    /// The paper's Table 4 settings: 2 disks, unit access time.
    fn default() -> Self {
        SiteSpec {
            num_disks: 2,
            disk_time: 1.0,
        }
    }
}

/// How the study's analytic model represents a site's `num_disks` disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskModel {
    /// One FCFS station per disk, visited with probability `1/num_disks`
    /// per cycle (demand `disk_time / num_disks` each). Matches the
    /// simulator's independent disk queues with random selection, and is
    /// the reading most consistent with the paper's numbers.
    #[default]
    SplitPerDisk,
    /// A single station with `num_disks` parallel servers sharing one
    /// queue, solved by exact load-dependent MVA. A slightly different
    /// physical system (requests never wait behind one disk while another
    /// idles); the `ablation_disk_model` binary quantifies the gap.
    MultiServer,
}

/// Full configuration of the analytic study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyConfig {
    /// Site hardware (identical at every site).
    pub site: SiteSpec,
    /// Per-page CPU demand of each class (`page_cpu_time`).
    pub page_cpu_time: [f64; 2],
    /// Analytic representation of the disks.
    pub disk_model: DiskModel,
}

impl StudyConfig {
    /// Creates a study configuration with the default site hardware.
    ///
    /// # Panics
    ///
    /// Panics if a CPU time is not positive and finite, or the site spec is
    /// degenerate.
    #[must_use]
    pub fn new(cpu_io: f64, cpu_cpu: f64) -> Self {
        let cfg = StudyConfig {
            site: SiteSpec::default(),
            page_cpu_time: [cpu_io, cpu_cpu],
            disk_model: DiskModel::SplitPerDisk,
        };
        cfg.validate();
        cfg
    }

    /// Switches the analytic disk representation.
    #[must_use]
    pub fn with_disk_model(mut self, model: DiskModel) -> Self {
        self.disk_model = model;
        self
    }

    fn validate(&self) {
        assert!(self.site.num_disks >= 1, "need at least one disk");
        assert!(
            self.site.disk_time.is_finite() && self.site.disk_time > 0.0,
            "invalid disk time"
        );
        for &t in &self.page_cpu_time {
            assert!(t.is_finite() && t > 0.0, "invalid page CPU time {t}");
        }
    }

    /// Builds the closed network of a single site: one PS CPU plus the
    /// disks under the configured [`DiskModel`].
    ///
    /// Under [`DiskModel::SplitPerDisk`], per cycle (one page read + one
    /// CPU burst) a query visits each disk with probability
    /// `1/num_disks`, so each disk station's demand is
    /// `disk_time / num_disks`; the disks' service is class-independent,
    /// keeping the network product-form. Under [`DiskModel::MultiServer`]
    /// the disks form one `num_disks`-server station with the full
    /// `disk_time` demand.
    #[must_use]
    pub fn site_network(&self) -> Network {
        let mut b = Network::builder(2).station(
            "cpu",
            StationKind::Queueing,
            [self.page_cpu_time[0], self.page_cpu_time[1]],
        );
        match self.disk_model {
            DiskModel::SplitPerDisk => {
                let per_disk = self.site.disk_time / f64::from(self.site.num_disks);
                for d in 0..self.site.num_disks {
                    b = b.station(
                        &format!("disk{d}"),
                        StationKind::Queueing,
                        [per_disk, per_disk],
                    );
                }
            }
            DiskModel::MultiServer => {
                b = b.station(
                    "disks",
                    StationKind::MultiServer {
                        servers: self.site.num_disks,
                    },
                    [self.site.disk_time, self.site.disk_time],
                );
            }
        }
        b.build().expect("validated config builds")
    }

    /// Total service demand per cycle of a class (CPU burst + disk read).
    #[must_use]
    pub fn cycle_demand(&self, class: ClassIndex) -> f64 {
        self.page_cpu_time[class] + self.site.disk_time
    }

    /// Expected waiting time per cycle for a `class` query at a site
    /// holding population `pop = [n_io, n_cpu]` (including the query
    /// itself).
    ///
    /// # Panics
    ///
    /// Panics if `pop[class] == 0` — the query being evaluated must be part
    /// of the population.
    #[must_use]
    pub fn waiting_per_cycle(&self, pop: [u32; 2], class: ClassIndex) -> f64 {
        self.waiting_per_cycle_in(&self.site_network(), pop, class)
    }

    /// [`StudyConfig::waiting_per_cycle`] against an already-built site
    /// network, so sweeps evaluating many populations build the network
    /// once instead of once per call. `network` must be this
    /// configuration's [`StudyConfig::site_network`] (or an equivalent
    /// 2-class network).
    ///
    /// # Panics
    ///
    /// Panics if `pop[class] == 0`.
    #[must_use]
    pub fn waiting_per_cycle_in(&self, network: &Network, pop: [u32; 2], class: ClassIndex) -> f64 {
        assert!(
            pop[class] > 0,
            "evaluated query must be present in the population"
        );
        solve(network, &pop).waiting_per_cycle(class)
    }
}

/// A memoized analytic engine for one [`StudyConfig`].
///
/// The naive study path rebuilds the site [`Network`] and reruns the exact
/// MVA recursion for every population it touches, even though one
/// recursion at a dominating population already visits every
/// sub-population. `StudyCache` builds the network once and keeps a small
/// set of [`SolvedLattice`]s; a query at population `p` is answered from
/// any cached lattice whose target dominates `p` (componentwise), solving
/// a fresh lattice — grown to cover everything seen so far — only on a
/// miss. Because a lattice view at a sub-population is bit-for-bit the
/// direct solve there, every cached answer is identical to the uncached
/// one.
///
/// The cache is single-threaded by design (interior mutability via
/// `RefCell`); parallel sweeps give each worker its own cache, which is
/// also the natural sharing boundary: a worker's row shares one
/// configuration.
///
/// # Example
///
/// ```
/// use dqa_mva::allocation::{LoadMatrix, StudyCache, StudyConfig};
///
/// let cache = StudyCache::new(StudyConfig::new(0.05, 1.0));
/// let load = LoadMatrix::new([[1, 1, 0, 0], [0, 0, 1, 1]]);
/// let a = cache.analyze_arrival(&load, 0);
/// assert!(a.wif() > 0.0);
/// let _ = cache.analyze_arrival(&load, 1);
/// // Re-analysis is answered entirely from the cached lattices:
/// let solves_before = cache.lattice_solves();
/// let _ = cache.analyze_arrival(&load, 1);
/// assert_eq!(cache.lattice_solves(), solves_before);
/// ```
#[derive(Debug)]
pub struct StudyCache {
    cfg: StudyConfig,
    network: Network,
    /// Solved lattices, most recently grown last; an entry is never
    /// mutated, so views handed out stay valid while new targets grow.
    solved: RefCell<Vec<Rc<SolvedLattice>>>,
    lattice_solves: Cell<u64>,
}

impl StudyCache {
    /// Creates a cache for `cfg`, building the site network once.
    #[must_use]
    pub fn new(cfg: StudyConfig) -> Self {
        StudyCache {
            network: cfg.site_network(),
            cfg,
            solved: RefCell::new(Vec::new()),
            lattice_solves: Cell::new(0),
        }
    }

    /// The configuration this cache answers for.
    #[must_use]
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// The memoized site network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// How many exact lattice recursions this cache has run — the
    /// denominator of its savings (the naive path runs one per query).
    #[must_use]
    pub fn lattice_solves(&self) -> u64 {
        self.lattice_solves.get()
    }

    /// A solved lattice covering `pop`. On a miss, solves a lattice at the
    /// componentwise maximum of `pop` and every previously covered target,
    /// so repeated sweeps converge on a single shared lattice.
    #[must_use]
    pub fn solved(&self, pop: [u32; 2]) -> Rc<SolvedLattice> {
        let mut solved = self.solved.borrow_mut();
        // Most recently grown lattices dominate older ones: scan from the
        // end so the common case is one comparison.
        if let Some(hit) = solved.iter().rev().find(|lat| lat.covers(&pop)) {
            return Rc::clone(hit);
        }
        let mut target = pop;
        if let Some(last) = solved.last() {
            target[0] = target[0].max(last.target()[0]);
            target[1] = target[1].max(last.target()[1]);
        }
        let lat = Rc::new(SolvedLattice::new(&self.network, &target));
        self.lattice_solves.set(self.lattice_solves.get() + 1);
        solved.push(Rc::clone(&lat));
        lat
    }

    /// Cached [`StudyConfig::waiting_per_cycle`]: identical value, shared
    /// recursion.
    ///
    /// # Panics
    ///
    /// Panics if `pop[class] == 0`.
    #[must_use]
    pub fn waiting_per_cycle(&self, pop: [u32; 2], class: ClassIndex) -> f64 {
        assert!(
            pop[class] > 0,
            "evaluated query must be present in the population"
        );
        self.solved(pop).waiting_per_cycle(&pop, class)
    }

    /// Cached [`system_unfairness`]: identical value, shared recursion.
    #[must_use]
    pub fn system_unfairness(&self, load: &LoadMatrix) -> f64 {
        let mut weighted = [0.0f64; 2];
        let totals = [load.class_total(0), load.class_total(1)];
        if totals[0] == 0 || totals[1] == 0 {
            return 0.0;
        }
        for j in 0..LoadMatrix::SITES {
            let pop = load.site_population(j);
            if pop[0] == 0 && pop[1] == 0 {
                continue;
            }
            let sol = self.solved(pop);
            for c in 0..2 {
                if pop[c] > 0 {
                    weighted[c] += f64::from(pop[c]) * sol.normalized_waiting(&pop, c);
                }
            }
        }
        let norm = [
            weighted[0] / f64::from(totals[0]),
            weighted[1] / f64::from(totals[1]),
        ];
        (norm[0] - norm[1]).abs()
    }

    /// Cached [`analyze_arrival`]: identical values, shared recursion.
    #[must_use]
    pub fn analyze_arrival(&self, load: &LoadMatrix, class: ClassIndex) -> ArrivalAnalysis {
        let candidates = load.bnq_candidates();

        let mut waiting = [0.0f64; LoadMatrix::SITES];
        let mut fairness = [0.0f64; LoadMatrix::SITES];
        for j in 0..LoadMatrix::SITES {
            let after = load.with_arrival(class, j);
            waiting[j] = self.waiting_per_cycle(after.site_population(j), class);
            fairness[j] = self.system_unfairness(&after);
        }

        finish_arrival_analysis(candidates, &waiting, &fairness)
    }
}

/// A load-distribution matrix `L = [l_ij]`: `l_ij` class-`i` queries at
/// site `j`.
///
/// # Example
///
/// ```
/// use dqa_mva::allocation::LoadMatrix;
///
/// let l = LoadMatrix::new([[1, 1, 0, 0], [0, 0, 1, 1]]);
/// assert_eq!(l.site_total(0), 1);
/// assert_eq!(l.total(), 4);
/// let after = l.with_arrival(1, 2); // class-2 arrival at site 2
/// assert_eq!(after.site_population(2), [0, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadMatrix {
    counts: [[u32; LoadMatrix::SITES]; 2],
}

impl LoadMatrix {
    /// Number of sites in the Section-3 study.
    pub const SITES: usize = 4;

    /// Creates a load matrix; `counts[i][j]` is the number of class-`i`
    /// queries at site `j`.
    #[must_use]
    pub fn new(counts: [[u32; Self::SITES]; 2]) -> Self {
        LoadMatrix { counts }
    }

    /// The population vector `[n_io, n_cpu]` at site `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn site_population(&self, j: usize) -> [u32; 2] {
        [self.counts[0][j], self.counts[1][j]]
    }

    /// Total queries of both classes at site `j` (the `n_j` of Section 3).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn site_total(&self, j: usize) -> u32 {
        self.counts[0][j] + self.counts[1][j]
    }

    /// Total queries in the system.
    #[must_use]
    pub fn total(&self) -> u32 {
        (0..Self::SITES).map(|j| self.site_total(j)).sum()
    }

    /// Number of class-`class` queries in the system.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not 0 or 1.
    #[must_use]
    pub fn class_total(&self, class: ClassIndex) -> u32 {
        self.counts[class].iter().sum()
    }

    /// The matrix after a class-`class` arrival is allocated to site `j`.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `j` is out of range.
    #[must_use]
    pub fn with_arrival(&self, class: ClassIndex, j: usize) -> LoadMatrix {
        let mut counts = self.counts;
        counts[class][j] += 1;
        LoadMatrix { counts }
    }

    /// The query-difference `QD`: `max |n_i - n_j|` over site pairs.
    #[must_use]
    pub fn query_difference(&self) -> u32 {
        let totals: Vec<u32> = (0..Self::SITES).map(|j| self.site_total(j)).collect();
        totals.iter().max().unwrap() - totals.iter().min().unwrap()
    }

    /// The sites the BNQ ("balance the number of queries") rule may select
    /// for an arrival: every site that minimizes the *resulting* query
    /// difference `QD(L + e_i)` (equivalently, the sites with the fewest
    /// queries).
    ///
    /// Section 3 defines BNQ by its goal — "minimize the query-difference
    /// of the system" — without a tie-break, and several of the paper's
    /// load matrices tie all four sites. The study therefore evaluates BNQ
    /// as the *average* over its candidate set, which reproduces the
    /// paper's reported structure (e.g. nonzero WIF for CPU-bound arrivals
    /// at fully balanced loads).
    #[must_use]
    pub fn bnq_candidates(&self) -> Vec<usize> {
        let qd_after = |j: usize| {
            let mut totals: Vec<u32> = (0..Self::SITES).map(|s| self.site_total(s)).collect();
            totals[j] += 1;
            totals.iter().max().unwrap() - totals.iter().min().unwrap()
        };
        let best = (0..Self::SITES).map(qd_after).min().expect("four sites");
        (0..Self::SITES).filter(|&j| qd_after(j) == best).collect()
    }
}

/// Outcome of evaluating one arrival `A(L, i)` under a [`StudyConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalAnalysis {
    /// Expected waiting per cycle under BNQ (averaged over its candidate
    /// sites — see [`LoadMatrix::bnq_candidates`]).
    pub waiting_bnq: f64,
    /// Minimum waiting per cycle over all sites.
    pub waiting_opt: f64,
    /// The BNQ candidate sites.
    pub bnq_candidates: Vec<usize>,
    /// Site index minimizing the arriving query's waiting.
    pub opt_site: usize,
    /// Expected system unfairness under BNQ (averaged over its candidate
    /// sites).
    pub fairness_bnq: f64,
    /// Minimum system unfairness over all sites.
    pub fairness_opt: f64,
    /// Site index minimizing unfairness.
    pub fair_site: usize,
}

impl ArrivalAnalysis {
    /// The Waiting Improvement Factor
    /// `WIF = (W_BNQ - W_OPT) / W_BNQ` (zero if BNQ already waits zero).
    /// Clamped to `[0, 1]`: the optimum can never truly exceed the BNQ
    /// average, but averaging identical floats can drift by an ulp.
    #[must_use]
    pub fn wif(&self) -> f64 {
        if self.waiting_bnq <= 0.0 {
            0.0
        } else {
            ((self.waiting_bnq - self.waiting_opt) / self.waiting_bnq).clamp(0.0, 1.0)
        }
    }

    /// The Fairness Improvement Factor
    /// `FIF = (F_BNQ - F_OPT) / F_BNQ` (zero if BNQ is already fair).
    /// Clamped to `[0, 1]` against floating-point drift.
    #[must_use]
    pub fn fif(&self) -> f64 {
        if self.fairness_bnq <= 0.0 {
            0.0
        } else {
            ((self.fairness_bnq - self.fairness_opt) / self.fairness_bnq).clamp(0.0, 1.0)
        }
    }
}

/// System unfairness for a completed allocation: the absolute difference of
/// the two classes' normalized waiting times, each averaged over the
/// queries of that class across all sites.
///
/// Returns `0.0` if either class is absent from the system (normalized
/// waiting is undefined with no queries to observe it).
#[must_use]
pub fn system_unfairness(cfg: &StudyConfig, load: &LoadMatrix) -> f64 {
    StudyCache::new(*cfg).system_unfairness(load)
}

/// Assembles an [`ArrivalAnalysis`] from the per-site exact values — the
/// shared tail of [`analyze_arrival`] and [`StudyCache::analyze_arrival`].
fn finish_arrival_analysis(
    candidates: Vec<usize>,
    waiting: &[f64; LoadMatrix::SITES],
    fairness: &[f64; LoadMatrix::SITES],
) -> ArrivalAnalysis {
    let opt_site = (0..LoadMatrix::SITES)
        .min_by(|&a, &b| waiting[a].total_cmp(&waiting[b]))
        .expect("four sites");
    let fair_site = (0..LoadMatrix::SITES)
        .min_by(|&a, &b| fairness[a].total_cmp(&fairness[b]))
        .expect("four sites");

    let over_candidates = |values: &[f64; LoadMatrix::SITES]| {
        candidates.iter().map(|&j| values[j]).sum::<f64>() / candidates.len() as f64
    };

    ArrivalAnalysis {
        waiting_bnq: over_candidates(waiting),
        waiting_opt: waiting[opt_site],
        opt_site,
        fairness_bnq: over_candidates(fairness),
        fairness_opt: fairness[fair_site],
        fair_site,
        bnq_candidates: candidates,
    }
}

/// Analyzes the arrival `A(L, class)`: evaluates every candidate site,
/// identifies the BNQ choice and both optima, and returns the raw numbers
/// from which [`ArrivalAnalysis::wif`] and [`ArrivalAnalysis::fif`] follow.
///
/// Delegates to a transient [`StudyCache`], so even a single call builds
/// the site network once and shares one exact recursion across the up to
/// twenty populations the analysis touches. Sweeps evaluating many load
/// cases under one configuration should hold a [`StudyCache`] of their own
/// and call [`StudyCache::analyze_arrival`] to share across calls too; the
/// values are identical either way.
#[must_use]
pub fn analyze_arrival(cfg: &StudyConfig, load: &LoadMatrix, class: ClassIndex) -> ArrivalAnalysis {
    StudyCache::new(*cfg).analyze_arrival(load, class)
}

/// The six load-distribution matrices of Tables 5 and 6, in column order.
/// (The technical-report scan is partly illegible; these are the best-effort
/// readings, consistent with the stated left-to-right growth in total
/// population.)
#[must_use]
pub fn paper_load_cases() -> [LoadMatrix; 6] {
    [
        LoadMatrix::new([[1, 1, 0, 0], [0, 0, 1, 1]]),
        LoadMatrix::new([[1, 1, 1, 0], [0, 0, 0, 1]]),
        LoadMatrix::new([[2, 1, 0, 0], [0, 0, 1, 1]]),
        LoadMatrix::new([[2, 1, 1, 0], [0, 0, 0, 1]]),
        LoadMatrix::new([[2, 1, 2, 0], [0, 0, 0, 1]]),
        LoadMatrix::new([[2, 1, 1, 0], [0, 1, 1, 2]]),
    ]
}

/// The six `(cpu_1, cpu_2)` per-page CPU-time pairs of Tables 5 and 6.
#[must_use]
pub fn paper_cpu_ratios() -> [(f64, f64); 6] {
    [
        (0.05, 0.5),
        (0.05, 1.0),
        (0.10, 1.0),
        (0.10, 2.0),
        (0.50, 2.0),
        (0.50, 2.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_matrix_accessors() {
        let l = LoadMatrix::new([[2, 1, 0, 0], [0, 0, 1, 1]]);
        assert_eq!(l.site_population(0), [2, 0]);
        assert_eq!(l.site_total(0), 2);
        assert_eq!(l.total(), 5);
        assert_eq!(l.class_total(0), 3);
        assert_eq!(l.class_total(1), 2);
        assert_eq!(l.query_difference(), 1); // totals are [2, 1, 1, 1]
    }

    #[test]
    fn bnq_candidates_minimize_resulting_qd() {
        // totals [2, 1, 0, 1]: only the empty site keeps QD minimal.
        let l = LoadMatrix::new([[2, 1, 0, 0], [0, 0, 0, 1]]);
        assert_eq!(l.bnq_candidates(), vec![2]);
        // totals [2, 1, 1, 1]: any of the three 1-sites is a candidate.
        let l = LoadMatrix::new([[2, 1, 0, 0], [0, 0, 1, 1]]);
        assert_eq!(l.bnq_candidates(), vec![1, 2, 3]);
        // fully balanced: every site ties.
        let tie = LoadMatrix::new([[1, 1, 1, 1], [0, 0, 0, 0]]);
        assert_eq!(tie.bnq_candidates(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn with_arrival_adds_one() {
        let l = LoadMatrix::new([[0, 0, 0, 0], [0, 0, 0, 0]]);
        let l2 = l.with_arrival(1, 3);
        assert_eq!(l2.site_population(3), [0, 1]);
        assert_eq!(l2.total(), 1);
    }

    #[test]
    fn lone_query_at_empty_site_waits_zero() {
        let cfg = StudyConfig::new(0.05, 1.0);
        let w = cfg.waiting_per_cycle([1, 0], 0);
        assert!(w.abs() < 1e-12, "lone query should not wait, got {w}");
    }

    #[test]
    fn waiting_grows_with_same_class_contention() {
        let cfg = StudyConfig::new(0.05, 1.0);
        let w1 = cfg.waiting_per_cycle([1, 0], 0);
        let w2 = cfg.waiting_per_cycle([2, 0], 0);
        let w3 = cfg.waiting_per_cycle([3, 0], 0);
        assert!(w1 < w2 && w2 < w3);
    }

    #[test]
    fn complementary_class_interferes_less_than_same_class() {
        // An I/O-bound query suffers less from a CPU-bound co-resident than
        // from another I/O-bound query competing for the same disks.
        let cfg = StudyConfig::new(0.05, 1.0);
        let with_same = cfg.waiting_per_cycle([2, 0], 0);
        let with_other = cfg.waiting_per_cycle([1, 1], 0);
        assert!(
            with_other < with_same,
            "complementary mix should wait less: {with_other} vs {with_same}"
        );
    }

    #[test]
    fn wif_positive_when_classes_are_distinguishable() {
        // Case 1 of Table 5: sites 0-1 hold I/O-bound queries, sites 2-3
        // CPU-bound; all totals tie so BNQ averages over all four sites,
        // but an arriving I/O-bound query is better off at a CPU-bound
        // site.
        let cfg = StudyConfig::new(0.05, 1.0);
        let load = LoadMatrix::new([[1, 1, 0, 0], [0, 0, 1, 1]]);
        let a = analyze_arrival(&cfg, &load, 0);
        assert_eq!(a.bnq_candidates, vec![0, 1, 2, 3]);
        assert!(a.opt_site >= 2, "optimal site should hold the other class");
        assert!(a.wif() > 0.05, "WIF = {}", a.wif());
        assert!(a.wif() < 1.0);
    }

    #[test]
    fn cpu_bound_arrival_gains_at_balanced_load_with_skewed_ratio() {
        // Paper Table 5, L1 with cpu ratio .10/2.0 reports WIF = 0.31 for
        // the CPU-bound class: at a fully balanced load BNQ averages over
        // all sites while the optimum joins an I/O-bound site.
        let cfg = StudyConfig::new(0.10, 2.0);
        let load = LoadMatrix::new([[1, 1, 0, 0], [0, 0, 1, 1]]);
        let a = analyze_arrival(&cfg, &load, 1);
        assert!(a.opt_site <= 1, "CPU-bound arrival should join an I/O site");
        assert!(a.wif() > 0.1, "WIF = {}", a.wif());
    }

    #[test]
    fn wif_zero_when_all_sites_identical() {
        let cfg = StudyConfig::new(0.5, 0.5);
        // Perfect symmetry: same class everywhere, equal counts.
        let load = LoadMatrix::new([[1, 1, 1, 1], [0, 0, 0, 0]]);
        let a = analyze_arrival(&cfg, &load, 0);
        assert!(a.wif().abs() < 1e-9);
    }

    #[test]
    fn improvement_factors_are_in_unit_range() {
        for (c1, c2) in paper_cpu_ratios() {
            let cfg = StudyConfig::new(c1, c2);
            for load in paper_load_cases() {
                for class in 0..2 {
                    let a = analyze_arrival(&cfg, &load, class);
                    assert!((0.0..=1.0).contains(&a.wif()), "WIF out of range");
                    assert!((0.0..=1.0).contains(&a.fif()), "FIF out of range");
                    assert!(a.waiting_opt <= a.waiting_bnq + 1e-12);
                    assert!(a.fairness_opt <= a.fairness_bnq + 1e-12);
                }
            }
        }
    }

    #[test]
    fn unfairness_zero_for_single_class_system() {
        let cfg = StudyConfig::new(0.05, 1.0);
        let load = LoadMatrix::new([[1, 2, 1, 0], [0, 0, 0, 0]]);
        assert_eq!(system_unfairness(&cfg, &load), 0.0);
    }

    #[test]
    fn unfairness_detects_resource_bias() {
        // All queries pile on CPU-heavy demand: the CPU-bound class queues
        // disproportionately, so unfairness is positive.
        let cfg = StudyConfig::new(0.05, 2.0);
        let load = LoadMatrix::new([[1, 1, 0, 0], [1, 1, 0, 0]]);
        assert!(system_unfairness(&cfg, &load) > 0.0);
    }

    #[test]
    fn paper_cases_have_growing_population() {
        let totals: Vec<u32> = paper_load_cases().iter().map(LoadMatrix::total).collect();
        for w in totals.windows(2) {
            assert!(w[1] >= w[0], "populations should not shrink: {totals:?}");
        }
    }

    #[test]
    fn study_config_rejects_bad_input() {
        let result = std::panic::catch_unwind(|| StudyConfig::new(0.0, 1.0));
        assert!(result.is_err());
    }

    #[test]
    fn site_network_shape() {
        let cfg = StudyConfig::new(0.1, 1.0);
        let net = cfg.site_network();
        assert_eq!(net.num_stations(), 3); // cpu + 2 disks
        assert_eq!(net.demand(0, 0), 0.1);
        assert_eq!(net.demand(1, 0), 0.5);
        assert!((cfg.cycle_demand(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiserver_site_network_shape() {
        let cfg = StudyConfig::new(0.1, 1.0).with_disk_model(DiskModel::MultiServer);
        let net = cfg.site_network();
        assert_eq!(net.num_stations(), 2); // cpu + one 2-server disk pool
        assert_eq!(net.demand(1, 0), 1.0);
    }

    #[test]
    fn multiserver_disks_wait_no_more_than_split_disks() {
        // A shared queue over both disks can never leave a request waiting
        // behind one disk while the other idles, so per-cycle waiting is
        // at most the split model's at every population examined.
        for (pop, class) in [([3, 0], 0), ([2, 2], 0), ([1, 3], 1), ([4, 1], 1)] {
            let split = StudyConfig::new(0.05, 1.0).waiting_per_cycle(pop, class);
            let pooled = StudyConfig::new(0.05, 1.0)
                .with_disk_model(DiskModel::MultiServer)
                .waiting_per_cycle(pop, class);
            assert!(
                pooled <= split + 1e-9,
                "pop {pop:?} class {class}: pooled {pooled} > split {split}"
            );
        }
    }

    // ------------------------------------------------------------------
    // StudyCache
    // ------------------------------------------------------------------

    #[test]
    fn cache_matches_uncached_study_bitwise() {
        // The cached engine must agree bit-for-bit with fresh per-call
        // evaluation, for every paper configuration and both disk models.
        for model in [DiskModel::SplitPerDisk, DiskModel::MultiServer] {
            for (c1, c2) in paper_cpu_ratios() {
                let cfg = StudyConfig::new(c1, c2).with_disk_model(model);
                let cache = StudyCache::new(cfg);
                for load in paper_load_cases() {
                    assert_eq!(
                        cache.system_unfairness(&load).to_bits(),
                        system_unfairness(&cfg, &load).to_bits()
                    );
                    for class in 0..2 {
                        let cached = cache.analyze_arrival(&load, class);
                        let fresh = analyze_arrival(&cfg, &load, class);
                        assert_eq!(cached.waiting_bnq.to_bits(), fresh.waiting_bnq.to_bits());
                        assert_eq!(cached.waiting_opt.to_bits(), fresh.waiting_opt.to_bits());
                        assert_eq!(cached.fairness_bnq.to_bits(), fresh.fairness_bnq.to_bits());
                        assert_eq!(cached.fairness_opt.to_bits(), fresh.fairness_opt.to_bits());
                        assert_eq!(cached.opt_site, fresh.opt_site);
                        assert_eq!(cached.fair_site, fresh.fair_site);
                        assert_eq!(cached.bnq_candidates, fresh.bnq_candidates);
                    }
                }
            }
        }
    }

    #[test]
    fn cache_waiting_matches_config_waiting_bitwise() {
        let cfg = StudyConfig::new(0.10, 2.0);
        let cache = StudyCache::new(cfg);
        for pop in [[1, 0], [3, 0], [2, 2], [1, 4], [0, 3]] {
            for class in 0..2 {
                if pop[class] == 0 {
                    continue;
                }
                assert_eq!(
                    cache.waiting_per_cycle(pop, class).to_bits(),
                    cfg.waiting_per_cycle(pop, class).to_bits(),
                    "pop {pop:?} class {class}"
                );
            }
        }
    }

    #[test]
    fn cache_shares_lattices_across_queries() {
        let cache = StudyCache::new(StudyConfig::new(0.05, 1.0));
        let _ = cache.waiting_per_cycle([3, 2], 0);
        let after_first = cache.lattice_solves();
        assert_eq!(after_first, 1);
        // Every dominated population is served from the same recursion.
        let _ = cache.waiting_per_cycle([1, 1], 1);
        let _ = cache.waiting_per_cycle([3, 0], 0);
        let _ = cache.waiting_per_cycle([0, 2], 1);
        assert_eq!(cache.lattice_solves(), after_first);
        // A miss grows one lattice to the componentwise max of everything
        // seen — so [4, 1] solves at [4, 2], and [4, 2] is then a hit.
        let _ = cache.waiting_per_cycle([4, 1], 0);
        assert_eq!(cache.lattice_solves(), 2);
        let _ = cache.waiting_per_cycle([4, 2], 0);
        assert_eq!(cache.lattice_solves(), 2);
        let _ = cache.waiting_per_cycle([3, 2], 0);
        assert_eq!(cache.lattice_solves(), 2);
    }

    #[test]
    fn cache_builds_network_once() {
        let cfg = StudyConfig::new(0.05, 1.0);
        let cache = StudyCache::new(cfg);
        assert_eq!(cache.network().num_stations(), 3);
        assert_eq!(cache.config(), &cfg);
    }

    #[test]
    fn waiting_per_cycle_in_matches_owned_network() {
        let cfg = StudyConfig::new(0.10, 1.0);
        let net = cfg.site_network();
        for pop in [[1, 0], [2, 1], [1, 3]] {
            for class in 0..2 {
                if pop[class] == 0 {
                    continue;
                }
                assert_eq!(
                    cfg.waiting_per_cycle_in(&net, pop, class).to_bits(),
                    cfg.waiting_per_cycle(pop, class).to_bits()
                );
            }
        }
    }

    #[test]
    fn improvement_factors_well_formed_under_multiserver_model() {
        for (c1, c2) in paper_cpu_ratios() {
            let cfg = StudyConfig::new(c1, c2).with_disk_model(DiskModel::MultiServer);
            for load in paper_load_cases() {
                for class in 0..2 {
                    let a = analyze_arrival(&cfg, &load, class);
                    assert!((0.0..=1.0).contains(&a.wif()));
                    assert!((0.0..=1.0).contains(&a.fif()));
                }
            }
        }
    }
}
