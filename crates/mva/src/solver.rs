//! The exact multi-class MVA recursion.

use crate::{Network, PopulationLattice, StationKind};

/// The exact solution of a closed network at one population vector.
///
/// Produced by [`solve`]. All quantities are *per cycle* through the
/// network: a residence time is the time a customer spends at a station per
/// visit-weighted cycle, and throughput is cycles completed per time unit.
#[derive(Debug, Clone)]
pub struct Solution {
    classes: usize,
    stations: usize,
    /// `residence[k * classes + c]`
    residence: Vec<f64>,
    throughput: Vec<f64>,
    /// `queue[k * classes + c]`: mean number of class-c customers at k.
    queue: Vec<f64>,
    demands_total: Vec<f64>,
}

impl Solution {
    /// Assembles a solution from raw per-station/per-class arrays (used by
    /// both the exact solver and the Schweitzer approximation).
    pub(crate) fn from_parts(
        network: &crate::Network,
        residence: Vec<f64>,
        throughput: Vec<f64>,
        queue: Vec<f64>,
    ) -> Self {
        let classes = network.num_classes();
        let stations = network.num_stations();
        debug_assert_eq!(residence.len(), stations * classes);
        debug_assert_eq!(throughput.len(), classes);
        debug_assert_eq!(queue.len(), stations * classes);
        Solution {
            classes,
            stations,
            residence,
            throughput,
            queue,
            demands_total: (0..classes).map(|c| network.total_demand(c)).collect(),
        }
    }

    /// Mean residence time (queueing + service) of class `class` at
    /// `station`, per cycle.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn residence(&self, station: usize, class: usize) -> f64 {
        assert!(station < self.stations && class < self.classes);
        self.residence[station * self.classes + class]
    }

    /// Mean number of class-`class` customers at `station`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn queue_length(&self, station: usize, class: usize) -> f64 {
        assert!(station < self.stations && class < self.classes);
        self.queue[station * self.classes + class]
    }

    /// Mean total customers at `station` over all classes.
    ///
    /// # Panics
    ///
    /// Panics if `station` is out of range.
    #[must_use]
    pub fn total_queue_length(&self, station: usize) -> f64 {
        (0..self.classes)
            .map(|c| self.queue[station * self.classes + c])
            .sum()
    }

    /// Class throughput in cycles per time unit.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn throughput(&self, class: usize) -> f64 {
        self.throughput[class]
    }

    /// Total cycle residence time of a class: sum of residences across
    /// stations.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn cycle_time(&self, class: usize) -> f64 {
        (0..self.stations)
            .map(|k| self.residence[k * self.classes + class])
            .sum()
    }

    /// Expected *waiting* (non-service) time per cycle for a class: cycle
    /// residence minus the class's total service demand. This is the
    /// `W̄(x)` of Section 3.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn waiting_per_cycle(&self, class: usize) -> f64 {
        (self.cycle_time(class) - self.demands_total[class]).max(0.0)
    }

    /// Normalized waiting per cycle: waiting divided by the class's service
    /// demand per cycle (`Ŵ(x) = W̄(x) / x` of Section 3).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or its demand is zero.
    #[must_use]
    pub fn normalized_waiting(&self, class: usize) -> f64 {
        let x = self.demands_total[class];
        assert!(x > 0.0, "class {class} has zero demand");
        self.waiting_per_cycle(class) / x
    }
}

/// Solves `network` exactly at population `population` with the multi-class
/// MVA recursion of Reiser & Lavenberg.
///
/// Classes with zero population contribute nothing and report zero
/// throughput; their residence times are still defined (what a hypothetical
/// arrival would see, by the arrival theorem).
///
/// Complexity is `O(K * C * prod_c (N_c + 1))` time and
/// `O(K * prod_c (N_c + 1))` space for `K` stations and `C` classes — the
/// allocation study uses a handful of customers, far below any limit.
///
/// # Panics
///
/// Panics if `population.len() != network.num_classes()`.
///
/// # Example
///
/// Single class, single queueing station — the closed-form cyclic queue:
///
/// ```
/// use dqa_mva::{Network, StationKind, solve};
///
/// let net = Network::builder(1)
///     .station("cpu", StationKind::Queueing, [2.0])
///     .build()?;
/// let sol = solve(&net, &[3]);
/// // All three customers queue at the only station: R = N * D.
/// assert!((sol.residence(0, 0) - 6.0).abs() < 1e-12);
/// assert!((sol.throughput(0) - 0.5).abs() < 1e-12);
/// # Ok::<(), dqa_mva::NetworkError>(())
/// ```
#[must_use]
pub fn solve(network: &Network, population: &[u32]) -> Solution {
    let classes = network.num_classes();
    let stations = network.num_stations();
    assert_eq!(
        population.len(),
        classes,
        "population vector has wrong arity"
    );

    let lattice = PopulationLattice::new(population);
    let total_target: u32 = population.iter().sum();
    // Total queue length per station for every visited population vector.
    let mut queues = vec![0.0f64; lattice.len() * stations];

    // Marginal queue-length distributions for multiserver stations:
    // probs[i][idx * (total_target + 1) + j] = P(j customers at the i-th
    // multiserver station | population vector idx).
    let ms_stations: Vec<(usize, u32)> = (0..stations)
        .filter_map(|k| match network.kind(k) {
            StationKind::MultiServer { servers } => Some((k, servers)),
            _ => None,
        })
        .collect();
    let ms_index: Vec<Option<usize>> = {
        let mut map = vec![None; stations];
        for (i, &(k, _)) in ms_stations.iter().enumerate() {
            map[k] = Some(i);
        }
        map
    };
    let stride = total_target as usize + 1;
    let mut probs = vec![vec![0.0f64; lattice.len() * stride]; ms_stations.len()];

    let mut residence = vec![0.0f64; stations * classes];
    let mut throughput = vec![0.0f64; classes];
    let mut queue_by_class = vec![0.0f64; stations * classes];

    // Residence time of a class-c arrival at station k, seeing the
    // network at the reduced population vector `ridx` (with `rtotal`
    // customers).
    let arrival_residence =
        |k: usize, c: usize, ridx: usize, rtotal: u32, queues: &[f64], probs: &[Vec<f64>]| {
            let d = network.demand(k, c);
            match network.kind(k) {
                StationKind::Queueing => d * (1.0 + queues[ridx * stations + k]),
                StationKind::Delay => d,
                StationKind::MultiServer { servers } => {
                    // R = D * Σ_j (j+1)/min(j+1, m) * P(j | reduced): the
                    // arrival joins j residents and they share min(j+1, m)
                    // servers (exact load-dependent MVA).
                    let p = &probs[ms_index[k].expect("multiserver indexed")];
                    let mut r = 0.0;
                    for j in 0..=rtotal {
                        let a = (j + 1).min(servers);
                        r += f64::from(j + 1) / f64::from(a) * p[ridx * stride + j as usize];
                    }
                    d * r
                }
            }
        };

    for n in lattice.iter() {
        let idx = lattice.index(&n);
        let total_n: u32 = n.iter().sum();
        residence.iter_mut().for_each(|r| *r = 0.0);
        throughput.iter_mut().for_each(|x| *x = 0.0);
        queue_by_class.iter_mut().for_each(|q| *q = 0.0);

        // Residence times via the arrival theorem: a class-c arrival sees
        // the network at population n - e_c.
        for c in 0..classes {
            if n[c] == 0 {
                continue;
            }
            let mut reduced = n.clone();
            reduced[c] -= 1;
            let ridx = lattice.index(&reduced);
            for k in 0..stations {
                residence[k * classes + c] =
                    arrival_residence(k, c, ridx, total_n - 1, &queues, &probs);
            }
        }

        // Throughputs and per-class queue lengths (Little's law).
        for c in 0..classes {
            if n[c] == 0 {
                continue;
            }
            let cycle: f64 = (0..stations).map(|k| residence[k * classes + c]).sum();
            // cycle can be zero only if every demand is zero; avoid 0/0.
            throughput[c] = if cycle > 0.0 {
                n[c] as f64 / cycle
            } else {
                0.0
            };
            for k in 0..stations {
                queue_by_class[k * classes + c] = throughput[c] * residence[k * classes + c];
            }
        }

        // Total queue lengths for this vector feed later recursion steps.
        for k in 0..stations {
            queues[idx * stations + k] =
                (0..classes).map(|c| queue_by_class[k * classes + c]).sum();
        }

        // Marginal distributions for multiserver stations at this vector:
        // P(j|n) = (1/min(j,m)) Σ_c X_c D_kc P(j-1 | n - e_c), with P(0|n)
        // by normalization.
        for (i, &(k, servers)) in ms_stations.iter().enumerate() {
            let mut psum = 0.0;
            for j in 1..=total_n {
                let mut v = 0.0;
                for c in 0..classes {
                    if n[c] == 0 {
                        continue;
                    }
                    let mut reduced = n.clone();
                    reduced[c] -= 1;
                    let ridx = lattice.index(&reduced);
                    v += throughput[c]
                        * network.demand(k, c)
                        * probs[i][ridx * stride + (j - 1) as usize];
                }
                let p = v / f64::from(j.min(servers));
                probs[i][idx * stride + j as usize] = p;
                psum += p;
            }
            probs[i][idx * stride] = (1.0 - psum).max(0.0);
        }
    }

    // Residence times reported for zero-population classes: what an arrival
    // would see at the *target* population minus itself — i.e. computed
    // against the full-population state.
    let full_idx = lattice.index(population);
    for c in 0..classes {
        if population[c] == 0 {
            for k in 0..stations {
                residence[k * classes + c] =
                    arrival_residence(k, c, full_idx, total_target, &queues, &probs);
            }
        }
    }

    Solution {
        classes,
        stations,
        residence,
        throughput,
        queue: queue_by_class,
        demands_total: (0..classes).map(|c| network.total_demand(c)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_station(demand: f64) -> Network {
        Network::builder(1)
            .station("q", StationKind::Queueing, [demand])
            .build()
            .unwrap()
    }

    #[test]
    fn one_customer_sees_no_queueing() {
        let net = single_station(3.0);
        let sol = solve(&net, &[1]);
        assert!((sol.residence(0, 0) - 3.0).abs() < 1e-12);
        assert!((sol.throughput(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(sol.waiting_per_cycle(0), 0.0);
    }

    #[test]
    fn n_customers_single_station_r_is_n_d() {
        // In a single-station closed network every customer queues behind
        // the other N-1: R = N * D exactly.
        let net = single_station(2.0);
        for n in 1..6 {
            let sol = solve(&net, &[n]);
            assert!((sol.residence(0, 0) - 2.0 * n as f64).abs() < 1e-9);
            assert!((sol.throughput(0) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn delay_station_never_queues() {
        let net = Network::builder(1)
            .station("terminals", StationKind::Delay, [10.0])
            .station("cpu", StationKind::Queueing, [1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[5]);
        assert_eq!(sol.residence(0, 0), 10.0);
        assert!(sol.residence(1, 0) > 1.0);
    }

    #[test]
    fn matches_repairman_closed_form() {
        // Machine repairman = delay (think) + single queueing station; the
        // dqa-queueing closed form must agree with MVA.
        let think = 50.0;
        let service = 2.0;
        let net = Network::builder(1)
            .station("think", StationKind::Delay, [think])
            .station("server", StationKind::Queueing, [service])
            .build()
            .unwrap();
        for n in [1u32, 5, 10, 20] {
            let sol = solve(&net, &[n]);
            let x = dqa_queueing_repairman(n, think, service);
            assert!(
                (sol.throughput(0) - x).abs() < 1e-9,
                "n = {n}: {} vs {x}",
                sol.throughput(0)
            );
        }
    }

    /// Local copy of the repairman recursion to avoid a circular dev-dep.
    fn dqa_queueing_repairman(n: u32, think: f64, service: f64) -> f64 {
        let mut q = 0.0;
        let mut x = 0.0;
        for k in 1..=n {
            let r = service * (1.0 + q);
            x = k as f64 / (think + r);
            q = x * r;
        }
        x
    }

    #[test]
    fn two_class_symmetric_network_is_symmetric() {
        let net = Network::builder(2)
            .station("a", StationKind::Queueing, [1.0, 1.0])
            .station("b", StationKind::Queueing, [2.0, 2.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[2, 2]);
        assert!((sol.throughput(0) - sol.throughput(1)).abs() < 1e-12);
        assert!((sol.residence(0, 0) - sol.residence(0, 1)).abs() < 1e-12);
        assert!((sol.queue_length(1, 0) - sol.queue_length(1, 1)).abs() < 1e-12);
    }

    #[test]
    fn queue_lengths_sum_to_population() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("d0", StationKind::Queueing, [0.5, 0.5])
            .station("d1", StationKind::Queueing, [0.5, 0.5])
            .build()
            .unwrap();
        let pop = [3u32, 2];
        let sol = solve(&net, &pop);
        let total: f64 = (0..3).map(|k| sol.total_queue_length(k)).sum();
        assert!((total - 5.0).abs() < 1e-9, "total queue {total}");
    }

    #[test]
    fn residence_monotone_in_population() {
        let net = single_station(1.0);
        let mut prev = 0.0;
        for n in 1..10 {
            let r = solve(&net, &[n]).residence(0, 0);
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn cpu_bound_class_waits_more_at_loaded_cpu() {
        // CPU is crowded with CPU-bound customers: an I/O-bound customer's
        // normalized waiting should be lower than the CPU-bound one's.
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("disk", StationKind::Queueing, [1.0, 1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[1, 3]);
        assert!(sol.normalized_waiting(1) > 0.0);
        assert!(sol.waiting_per_cycle(1) > sol.waiting_per_cycle(0));
    }

    #[test]
    fn zero_population_class_reports_arrival_view() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.5, 1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[2, 0]);
        assert_eq!(sol.throughput(1), 0.0);
        // An arriving class-1 customer would see the 2 class-0 customers'
        // mean queue: R = D * (1 + Q_full).
        let q_full = sol.total_queue_length(0);
        assert!((sol.residence(0, 1) - (1.0 + q_full)).abs() < 1e-9);
    }

    #[test]
    fn empty_population_is_all_zeros() {
        let net = single_station(1.0);
        let sol = solve(&net, &[0]);
        assert_eq!(sol.throughput(0), 0.0);
        assert_eq!(sol.total_queue_length(0), 0.0);
        // an arrival to an empty system sees bare demand
        assert!((sol.residence(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn population_arity_checked() {
        let net = single_station(1.0);
        let _ = solve(&net, &[1, 2]);
    }

    // ------------------------------------------------------------------
    // Multiserver (load-dependent) stations
    // ------------------------------------------------------------------

    #[test]
    fn one_server_multiserver_equals_queueing() {
        let q = Network::builder(2)
            .station("a", StationKind::Queueing, [0.4, 1.3])
            .station("b", StationKind::Queueing, [1.0, 0.2])
            .build()
            .unwrap();
        let ms = Network::builder(2)
            .station("a", StationKind::MultiServer { servers: 1 }, [0.4, 1.3])
            .station("b", StationKind::Queueing, [1.0, 0.2])
            .build()
            .unwrap();
        for pop in [[1, 1], [3, 2], [0, 4]] {
            let sq = solve(&q, &pop);
            let sm = solve(&ms, &pop);
            for c in 0..2 {
                assert!(
                    (sq.throughput(c) - sm.throughput(c)).abs() < 1e-9,
                    "pop {pop:?} class {c}: {} vs {}",
                    sq.throughput(c),
                    sm.throughput(c)
                );
                for k in 0..2 {
                    assert!((sq.residence(k, c) - sm.residence(k, c)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn ample_servers_behave_like_delay() {
        // With at least as many servers as customers, nobody ever queues:
        // residence equals demand, like an infinite-server station.
        let net = Network::builder(1)
            .station("ms", StationKind::MultiServer { servers: 8 }, [2.0])
            .station("q", StationKind::Queueing, [1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[5]);
        assert!(
            (sol.residence(0, 0) - 2.0).abs() < 1e-9,
            "residence {} should equal demand",
            sol.residence(0, 0)
        );
    }

    #[test]
    fn multiserver_matches_convolution_oracle() {
        // Independent oracle: Buzen's convolution algorithm for a cyclic
        // single-class network of one m-server station (demand d, rate
        // multiplier min(j, m)) and one single-server station (demand e).
        fn convolution_throughput(d: f64, m: u32, e: f64, n: u32) -> f64 {
            // f_ms(j) = d^j / prod_{i=1}^{j} min(i, m); f_q(j) = e^j
            let beta = |j: u32| -> f64 { (1..=j).map(|i| f64::from(i.min(m))).product::<f64>() };
            let g = |pop: u32| -> f64 {
                (0..=pop)
                    .map(|j| d.powi(j as i32) / beta(j) * e.powi((pop - j) as i32))
                    .sum()
            };
            g(n - 1) / g(n)
        }

        for (d, m, e, n) in [
            (1.0, 2, 1.0, 3u32),
            (2.0, 2, 0.5, 4),
            (0.7, 3, 1.1, 5),
            (1.5, 2, 1.5, 2),
        ] {
            let net = Network::builder(1)
                .station("ms", StationKind::MultiServer { servers: m }, [d])
                .station("q", StationKind::Queueing, [e])
                .build()
                .unwrap();
            let x_mva = solve(&net, &[n]).throughput(0);
            let x_conv = convolution_throughput(d, m, e, n);
            assert!(
                (x_mva - x_conv).abs() < 1e-9,
                "d={d} m={m} e={e} n={n}: MVA {x_mva} vs convolution {x_conv}"
            );
        }
    }

    #[test]
    fn two_servers_beat_one_fast_queue_is_beaten_by_delay() {
        // Sandwich property at equal total capacity: for the same demand,
        // residence(1 server) >= residence(2 servers) >= residence(inf).
        let mk = |kind: StationKind| {
            Network::builder(1)
                .station("s", kind, [1.0])
                .station("q", StationKind::Queueing, [1.0])
                .build()
                .unwrap()
        };
        let one = solve(&mk(StationKind::Queueing), &[4]).residence(0, 0);
        let two = solve(&mk(StationKind::MultiServer { servers: 2 }), &[4]).residence(0, 0);
        let inf = solve(&mk(StationKind::Delay), &[4]).residence(0, 0);
        assert!(one > two, "one {one} vs two {two}");
        assert!(two > inf, "two {two} vs inf {inf}");
    }

    #[test]
    fn multiserver_queue_lengths_sum_to_population() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("disks", StationKind::MultiServer { servers: 2 }, [1.0, 1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[3, 2]);
        let total: f64 = (0..2).map(|k| sol.total_queue_length(k)).sum();
        assert!((total - 5.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn zero_server_multiserver_rejected() {
        let err = Network::builder(1)
            .station("bad", StationKind::MultiServer { servers: 0 }, [1.0])
            .build();
        assert!(err.is_err());
    }
}
