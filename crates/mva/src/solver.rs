//! The exact multi-class MVA recursion, and its lattice-shared form.
//!
//! Exact MVA at a target population necessarily visits *every* population
//! vector below the target. [`SolvedLattice`] runs that recursion once and
//! keeps the per-vector results, so a single solve answers queries at the
//! target **and** at every sub-population — bit-for-bit what a fresh
//! [`solve`] at that sub-population would return, because the recursion
//! value at a vector depends only on the values at smaller vectors.
//! [`solve`] itself is a thin wrapper that solves the lattice and extracts
//! the target view, so single-shot callers are unaffected.

use crate::{Network, PopulationLattice, StationKind};

/// The exact solution of a closed network at one population vector.
///
/// Produced by [`solve`]. All quantities are *per cycle* through the
/// network: a residence time is the time a customer spends at a station per
/// visit-weighted cycle, and throughput is cycles completed per time unit.
#[derive(Debug, Clone)]
pub struct Solution {
    classes: usize,
    stations: usize,
    /// `residence[k * classes + c]`
    residence: Vec<f64>,
    throughput: Vec<f64>,
    /// `queue[k * classes + c]`: mean number of class-c customers at k.
    queue: Vec<f64>,
    demands_total: Vec<f64>,
}

impl Solution {
    /// Assembles a solution from raw per-station/per-class arrays (used by
    /// both the exact solver and the Schweitzer approximation).
    pub(crate) fn from_parts(
        network: &crate::Network,
        residence: Vec<f64>,
        throughput: Vec<f64>,
        queue: Vec<f64>,
    ) -> Self {
        let classes = network.num_classes();
        let stations = network.num_stations();
        debug_assert_eq!(residence.len(), stations * classes);
        debug_assert_eq!(throughput.len(), classes);
        debug_assert_eq!(queue.len(), stations * classes);
        Solution {
            classes,
            stations,
            residence,
            throughput,
            queue,
            demands_total: (0..classes).map(|c| network.total_demand(c)).collect(),
        }
    }

    /// Mean residence time (queueing + service) of class `class` at
    /// `station`, per cycle.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn residence(&self, station: usize, class: usize) -> f64 {
        assert!(station < self.stations && class < self.classes);
        self.residence[station * self.classes + class]
    }

    /// Mean number of class-`class` customers at `station`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn queue_length(&self, station: usize, class: usize) -> f64 {
        assert!(station < self.stations && class < self.classes);
        self.queue[station * self.classes + class]
    }

    /// Mean total customers at `station` over all classes.
    ///
    /// # Panics
    ///
    /// Panics if `station` is out of range.
    #[must_use]
    pub fn total_queue_length(&self, station: usize) -> f64 {
        (0..self.classes)
            .map(|c| self.queue[station * self.classes + c])
            .sum()
    }

    /// Class throughput in cycles per time unit.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn throughput(&self, class: usize) -> f64 {
        self.throughput[class]
    }

    /// Total cycle residence time of a class: sum of residences across
    /// stations.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn cycle_time(&self, class: usize) -> f64 {
        (0..self.stations)
            .map(|k| self.residence[k * self.classes + class])
            .sum()
    }

    /// Expected *waiting* (non-service) time per cycle for a class: cycle
    /// residence minus the class's total service demand. This is the
    /// `W̄(x)` of Section 3.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn waiting_per_cycle(&self, class: usize) -> f64 {
        (self.cycle_time(class) - self.demands_total[class]).max(0.0)
    }

    /// Normalized waiting per cycle: waiting divided by the class's service
    /// demand per cycle (`Ŵ(x) = W̄(x) / x` of Section 3).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or its demand is zero.
    #[must_use]
    pub fn normalized_waiting(&self, class: usize) -> f64 {
        let x = self.demands_total[class];
        assert!(x > 0.0, "class {class} has zero demand");
        self.waiting_per_cycle(class) / x
    }
}

/// Solves `network` exactly at population `population` with the multi-class
/// MVA recursion of Reiser & Lavenberg.
///
/// Classes with zero population contribute nothing and report zero
/// throughput; their residence times are still defined (what a hypothetical
/// arrival would see, by the arrival theorem).
///
/// Complexity is `O(K * C * prod_c (N_c + 1))` time and
/// `O(K * prod_c (N_c + 1))` space for `K` stations and `C` classes — the
/// allocation study uses a handful of customers, far below any limit.
///
/// # Panics
///
/// Panics if `population.len() != network.num_classes()`.
///
/// # Example
///
/// Single class, single queueing station — the closed-form cyclic queue:
///
/// ```
/// use dqa_mva::{Network, StationKind, solve};
///
/// let net = Network::builder(1)
///     .station("cpu", StationKind::Queueing, [2.0])
///     .build()?;
/// let sol = solve(&net, &[3]);
/// // All three customers queue at the only station: R = N * D.
/// assert!((sol.residence(0, 0) - 6.0).abs() < 1e-12);
/// assert!((sol.throughput(0) - 0.5).abs() < 1e-12);
/// # Ok::<(), dqa_mva::NetworkError>(())
/// ```
#[must_use]
pub fn solve(network: &Network, population: &[u32]) -> Solution {
    SolvedLattice::new(network, population).solution(population)
}

/// The exact MVA recursion solved once over the **whole** lattice of
/// population vectors `0 <= n <= target`, with every intermediate result
/// retained.
///
/// A [`Solution`] extracted at any sub-population is bit-for-bit identical
/// to running [`solve`] directly at that sub-population: the recursion
/// value at a vector depends only on values at componentwise-smaller
/// vectors, which both computations perform with the same arithmetic in
/// the same order. The allocation study exploits this to answer hundreds
/// of "what if the site held population p?" questions from a single
/// recursion (see `allocation::StudyCache`).
///
/// The recursion itself allocates its buffers once up front and walks the
/// lattice with an in-place mixed-radix counter — no per-population-vector
/// allocation. Reduced populations are located by index arithmetic
/// (`idx - stride(c)`), never by materializing the reduced vector.
///
/// Memory is `O(K * C * prod_c (N_c + 1))` — the study's lattices have at
/// most a few dozen vectors over 3–4 stations.
#[derive(Debug, Clone)]
pub struct SolvedLattice {
    lattice: PopulationLattice,
    classes: usize,
    stations: usize,
    /// `residence[idx * stations * classes + k * classes + c]`
    residence: Vec<f64>,
    /// `throughput[idx * classes + c]`
    throughput: Vec<f64>,
    /// `queue[idx * stations * classes + k * classes + c]`
    queue: Vec<f64>,
    demands_total: Vec<f64>,
}

impl SolvedLattice {
    /// Runs the exact multi-class MVA recursion of Reiser & Lavenberg over
    /// the full lattice below `target` and retains the solution at every
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != network.num_classes()`.
    #[must_use]
    pub fn new(network: &Network, target: &[u32]) -> Self {
        let classes = network.num_classes();
        let stations = network.num_stations();
        assert_eq!(target.len(), classes, "population vector has wrong arity");

        let lattice = PopulationLattice::new(target);
        let len = lattice.len();
        let sc = stations * classes;
        // Total queue length per station for every visited population vector.
        let mut queues = vec![0.0f64; len * stations];

        // Marginal queue-length distributions for multiserver stations:
        // probs[i][idx * (total_target + 1) + j] = P(j customers at the i-th
        // multiserver station | population vector idx).
        let total_target: u32 = target.iter().sum();
        let ms_stations: Vec<(usize, u32)> = (0..stations)
            .filter_map(|k| match network.kind(k) {
                StationKind::MultiServer { servers } => Some((k, servers)),
                _ => None,
            })
            .collect();
        let ms_index: Vec<Option<usize>> = {
            let mut map = vec![None; stations];
            for (i, &(k, _)) in ms_stations.iter().enumerate() {
                map[k] = Some(i);
            }
            map
        };
        let stride = total_target as usize + 1;
        let mut probs = vec![vec![0.0f64; len * stride]; ms_stations.len()];

        let mut residence = vec![0.0f64; len * sc];
        let mut throughput = vec![0.0f64; len * classes];
        let mut queue = vec![0.0f64; len * sc];

        // Residence time of a class-c arrival at station k, seeing the
        // network at the reduced population vector `ridx` (with `rtotal`
        // customers).
        let arrival_residence =
            |k: usize, c: usize, ridx: usize, rtotal: u32, queues: &[f64], probs: &[Vec<f64>]| {
                let d = network.demand(k, c);
                match network.kind(k) {
                    StationKind::Queueing => d * (1.0 + queues[ridx * stations + k]),
                    StationKind::Delay => d,
                    StationKind::MultiServer { servers } => {
                        // R = D * Σ_j (j+1)/min(j+1, m) * P(j | reduced): the
                        // arrival joins j residents and they share min(j+1, m)
                        // servers (exact load-dependent MVA).
                        let p = &probs[ms_index[k].expect("multiserver indexed")];
                        let mut r = 0.0;
                        for j in 0..=rtotal {
                            let a = (j + 1).min(servers);
                            r += f64::from(j + 1) / f64::from(a) * p[ridx * stride + j as usize];
                        }
                        d * r
                    }
                }
            };

        // Walk the lattice in index order with an in-place mixed-radix
        // counter; `idx` tracks `n` exactly (the dense index *is* the
        // iteration order).
        let mut n = vec![0u32; classes];
        let mut total_n = 0u32;
        for idx in 0..len {
            let base_sc = idx * sc;
            let base_c = idx * classes;

            // Residence times via the arrival theorem: a class-c arrival
            // sees the network at population n - e_c.
            for c in 0..classes {
                if n[c] == 0 {
                    continue;
                }
                let ridx = idx - lattice.stride(c);
                for k in 0..stations {
                    residence[base_sc + k * classes + c] =
                        arrival_residence(k, c, ridx, total_n - 1, &queues, &probs);
                }
            }

            // Throughputs and per-class queue lengths (Little's law).
            for c in 0..classes {
                if n[c] == 0 {
                    continue;
                }
                let cycle: f64 = (0..stations)
                    .map(|k| residence[base_sc + k * classes + c])
                    .sum();
                // cycle can be zero only if every demand is zero; avoid 0/0.
                throughput[base_c + c] = if cycle > 0.0 {
                    f64::from(n[c]) / cycle
                } else {
                    0.0
                };
                for k in 0..stations {
                    queue[base_sc + k * classes + c] =
                        throughput[base_c + c] * residence[base_sc + k * classes + c];
                }
            }

            // Total queue lengths for this vector feed later recursion steps.
            for k in 0..stations {
                queues[idx * stations + k] =
                    (0..classes).map(|c| queue[base_sc + k * classes + c]).sum();
            }

            // Marginal distributions for multiserver stations at this vector:
            // P(j|n) = (1/min(j,m)) Σ_c X_c D_kc P(j-1 | n - e_c), with P(0|n)
            // by normalization.
            for (i, &(k, servers)) in ms_stations.iter().enumerate() {
                let mut psum = 0.0;
                for j in 1..=total_n {
                    let mut v = 0.0;
                    for c in 0..classes {
                        if n[c] == 0 {
                            continue;
                        }
                        let ridx = idx - lattice.stride(c);
                        v += throughput[base_c + c]
                            * network.demand(k, c)
                            * probs[i][ridx * stride + (j - 1) as usize];
                    }
                    let p = v / f64::from(j.min(servers));
                    probs[i][idx * stride + j as usize] = p;
                    psum += p;
                }
                probs[i][idx * stride] = (1.0 - psum).max(0.0);
            }

            // Residence times for classes absent from this vector: what an
            // arrival would see at this population — i.e. computed against
            // the current vector's own state (matching what [`solve`] at
            // this population reports for its zero classes).
            for c in 0..classes {
                if n[c] == 0 {
                    for k in 0..stations {
                        residence[base_sc + k * classes + c] =
                            arrival_residence(k, c, idx, total_n, &queues, &probs);
                    }
                }
            }

            // Mixed-radix increment (least-significant class last).
            let mut c = classes;
            while c > 0 {
                c -= 1;
                if n[c] < target[c] {
                    n[c] += 1;
                    total_n += 1;
                    break;
                }
                total_n -= n[c];
                n[c] = 0;
            }
        }

        SolvedLattice {
            lattice,
            classes,
            stations,
            residence,
            throughput,
            queue,
            demands_total: (0..classes).map(|c| network.total_demand(c)).collect(),
        }
    }

    /// The target population vector this lattice was solved at.
    #[must_use]
    pub fn target(&self) -> &[u32] {
        self.lattice.target()
    }

    /// Whether `population` lies inside this lattice (componentwise at most
    /// the target, same arity).
    #[must_use]
    pub fn covers(&self, population: &[u32]) -> bool {
        population.len() == self.classes
            && population
                .iter()
                .zip(self.lattice.target())
                .all(|(&p, &t)| p <= t)
    }

    /// The exact [`Solution`] at any covered population vector —
    /// bit-for-bit what [`solve`] at that population returns.
    ///
    /// # Panics
    ///
    /// Panics if `population` is not covered by the lattice.
    #[must_use]
    pub fn solution(&self, population: &[u32]) -> Solution {
        let idx = self.lattice.index(population);
        let sc = self.stations * self.classes;
        Solution {
            classes: self.classes,
            stations: self.stations,
            residence: self.residence[idx * sc..(idx + 1) * sc].to_vec(),
            throughput: self.throughput[idx * self.classes..(idx + 1) * self.classes].to_vec(),
            queue: self.queue[idx * sc..(idx + 1) * sc].to_vec(),
            demands_total: self.demands_total.clone(),
        }
    }

    /// [`Solution::waiting_per_cycle`] at a covered population, without
    /// materializing the `Solution`.
    ///
    /// # Panics
    ///
    /// Panics if `population` is not covered or `class` is out of range.
    #[must_use]
    pub fn waiting_per_cycle(&self, population: &[u32], class: usize) -> f64 {
        let idx = self.lattice.index(population);
        assert!(class < self.classes, "class out of range");
        let base = idx * self.stations * self.classes;
        let cycle: f64 = (0..self.stations)
            .map(|k| self.residence[base + k * self.classes + class])
            .sum();
        (cycle - self.demands_total[class]).max(0.0)
    }

    /// [`Solution::normalized_waiting`] at a covered population, without
    /// materializing the `Solution`.
    ///
    /// # Panics
    ///
    /// Panics if `population` is not covered, `class` is out of range, or
    /// the class has zero demand.
    #[must_use]
    pub fn normalized_waiting(&self, population: &[u32], class: usize) -> f64 {
        let x = self.demands_total[class];
        assert!(x > 0.0, "class {class} has zero demand");
        self.waiting_per_cycle(population, class) / x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_station(demand: f64) -> Network {
        Network::builder(1)
            .station("q", StationKind::Queueing, [demand])
            .build()
            .unwrap()
    }

    #[test]
    fn one_customer_sees_no_queueing() {
        let net = single_station(3.0);
        let sol = solve(&net, &[1]);
        assert!((sol.residence(0, 0) - 3.0).abs() < 1e-12);
        assert!((sol.throughput(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(sol.waiting_per_cycle(0), 0.0);
    }

    #[test]
    fn n_customers_single_station_r_is_n_d() {
        // In a single-station closed network every customer queues behind
        // the other N-1: R = N * D exactly.
        let net = single_station(2.0);
        for n in 1..6 {
            let sol = solve(&net, &[n]);
            assert!((sol.residence(0, 0) - 2.0 * n as f64).abs() < 1e-9);
            assert!((sol.throughput(0) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn delay_station_never_queues() {
        let net = Network::builder(1)
            .station("terminals", StationKind::Delay, [10.0])
            .station("cpu", StationKind::Queueing, [1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[5]);
        assert_eq!(sol.residence(0, 0), 10.0);
        assert!(sol.residence(1, 0) > 1.0);
    }

    #[test]
    fn matches_repairman_closed_form() {
        // Machine repairman = delay (think) + single queueing station; the
        // dqa-queueing closed form must agree with MVA.
        let think = 50.0;
        let service = 2.0;
        let net = Network::builder(1)
            .station("think", StationKind::Delay, [think])
            .station("server", StationKind::Queueing, [service])
            .build()
            .unwrap();
        for n in [1u32, 5, 10, 20] {
            let sol = solve(&net, &[n]);
            let x = dqa_queueing_repairman(n, think, service);
            assert!(
                (sol.throughput(0) - x).abs() < 1e-9,
                "n = {n}: {} vs {x}",
                sol.throughput(0)
            );
        }
    }

    /// Local copy of the repairman recursion to avoid a circular dev-dep.
    fn dqa_queueing_repairman(n: u32, think: f64, service: f64) -> f64 {
        let mut q = 0.0;
        let mut x = 0.0;
        for k in 1..=n {
            let r = service * (1.0 + q);
            x = k as f64 / (think + r);
            q = x * r;
        }
        x
    }

    #[test]
    fn two_class_symmetric_network_is_symmetric() {
        let net = Network::builder(2)
            .station("a", StationKind::Queueing, [1.0, 1.0])
            .station("b", StationKind::Queueing, [2.0, 2.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[2, 2]);
        assert!((sol.throughput(0) - sol.throughput(1)).abs() < 1e-12);
        assert!((sol.residence(0, 0) - sol.residence(0, 1)).abs() < 1e-12);
        assert!((sol.queue_length(1, 0) - sol.queue_length(1, 1)).abs() < 1e-12);
    }

    #[test]
    fn queue_lengths_sum_to_population() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("d0", StationKind::Queueing, [0.5, 0.5])
            .station("d1", StationKind::Queueing, [0.5, 0.5])
            .build()
            .unwrap();
        let pop = [3u32, 2];
        let sol = solve(&net, &pop);
        let total: f64 = (0..3).map(|k| sol.total_queue_length(k)).sum();
        assert!((total - 5.0).abs() < 1e-9, "total queue {total}");
    }

    #[test]
    fn residence_monotone_in_population() {
        let net = single_station(1.0);
        let mut prev = 0.0;
        for n in 1..10 {
            let r = solve(&net, &[n]).residence(0, 0);
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn cpu_bound_class_waits_more_at_loaded_cpu() {
        // CPU is crowded with CPU-bound customers: an I/O-bound customer's
        // normalized waiting should be lower than the CPU-bound one's.
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("disk", StationKind::Queueing, [1.0, 1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[1, 3]);
        assert!(sol.normalized_waiting(1) > 0.0);
        assert!(sol.waiting_per_cycle(1) > sol.waiting_per_cycle(0));
    }

    #[test]
    fn zero_population_class_reports_arrival_view() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.5, 1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[2, 0]);
        assert_eq!(sol.throughput(1), 0.0);
        // An arriving class-1 customer would see the 2 class-0 customers'
        // mean queue: R = D * (1 + Q_full).
        let q_full = sol.total_queue_length(0);
        assert!((sol.residence(0, 1) - (1.0 + q_full)).abs() < 1e-9);
    }

    #[test]
    fn empty_population_is_all_zeros() {
        let net = single_station(1.0);
        let sol = solve(&net, &[0]);
        assert_eq!(sol.throughput(0), 0.0);
        assert_eq!(sol.total_queue_length(0), 0.0);
        // an arrival to an empty system sees bare demand
        assert!((sol.residence(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn population_arity_checked() {
        let net = single_station(1.0);
        let _ = solve(&net, &[1, 2]);
    }

    // ------------------------------------------------------------------
    // Multiserver (load-dependent) stations
    // ------------------------------------------------------------------

    #[test]
    fn one_server_multiserver_equals_queueing() {
        let q = Network::builder(2)
            .station("a", StationKind::Queueing, [0.4, 1.3])
            .station("b", StationKind::Queueing, [1.0, 0.2])
            .build()
            .unwrap();
        let ms = Network::builder(2)
            .station("a", StationKind::MultiServer { servers: 1 }, [0.4, 1.3])
            .station("b", StationKind::Queueing, [1.0, 0.2])
            .build()
            .unwrap();
        for pop in [[1, 1], [3, 2], [0, 4]] {
            let sq = solve(&q, &pop);
            let sm = solve(&ms, &pop);
            for c in 0..2 {
                assert!(
                    (sq.throughput(c) - sm.throughput(c)).abs() < 1e-9,
                    "pop {pop:?} class {c}: {} vs {}",
                    sq.throughput(c),
                    sm.throughput(c)
                );
                for k in 0..2 {
                    assert!((sq.residence(k, c) - sm.residence(k, c)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn ample_servers_behave_like_delay() {
        // With at least as many servers as customers, nobody ever queues:
        // residence equals demand, like an infinite-server station.
        let net = Network::builder(1)
            .station("ms", StationKind::MultiServer { servers: 8 }, [2.0])
            .station("q", StationKind::Queueing, [1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[5]);
        assert!(
            (sol.residence(0, 0) - 2.0).abs() < 1e-9,
            "residence {} should equal demand",
            sol.residence(0, 0)
        );
    }

    #[test]
    fn multiserver_matches_convolution_oracle() {
        // Independent oracle: Buzen's convolution algorithm for a cyclic
        // single-class network of one m-server station (demand d, rate
        // multiplier min(j, m)) and one single-server station (demand e).
        fn convolution_throughput(d: f64, m: u32, e: f64, n: u32) -> f64 {
            // f_ms(j) = d^j / prod_{i=1}^{j} min(i, m); f_q(j) = e^j
            let beta = |j: u32| -> f64 { (1..=j).map(|i| f64::from(i.min(m))).product::<f64>() };
            let g = |pop: u32| -> f64 {
                (0..=pop)
                    .map(|j| d.powi(j as i32) / beta(j) * e.powi((pop - j) as i32))
                    .sum()
            };
            g(n - 1) / g(n)
        }

        for (d, m, e, n) in [
            (1.0, 2, 1.0, 3u32),
            (2.0, 2, 0.5, 4),
            (0.7, 3, 1.1, 5),
            (1.5, 2, 1.5, 2),
        ] {
            let net = Network::builder(1)
                .station("ms", StationKind::MultiServer { servers: m }, [d])
                .station("q", StationKind::Queueing, [e])
                .build()
                .unwrap();
            let x_mva = solve(&net, &[n]).throughput(0);
            let x_conv = convolution_throughput(d, m, e, n);
            assert!(
                (x_mva - x_conv).abs() < 1e-9,
                "d={d} m={m} e={e} n={n}: MVA {x_mva} vs convolution {x_conv}"
            );
        }
    }

    #[test]
    fn two_servers_beat_one_fast_queue_is_beaten_by_delay() {
        // Sandwich property at equal total capacity: for the same demand,
        // residence(1 server) >= residence(2 servers) >= residence(inf).
        let mk = |kind: StationKind| {
            Network::builder(1)
                .station("s", kind, [1.0])
                .station("q", StationKind::Queueing, [1.0])
                .build()
                .unwrap()
        };
        let one = solve(&mk(StationKind::Queueing), &[4]).residence(0, 0);
        let two = solve(&mk(StationKind::MultiServer { servers: 2 }), &[4]).residence(0, 0);
        let inf = solve(&mk(StationKind::Delay), &[4]).residence(0, 0);
        assert!(one > two, "one {one} vs two {two}");
        assert!(two > inf, "two {two} vs inf {inf}");
    }

    #[test]
    fn multiserver_queue_lengths_sum_to_population() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("disks", StationKind::MultiServer { servers: 2 }, [1.0, 1.0])
            .build()
            .unwrap();
        let sol = solve(&net, &[3, 2]);
        let total: f64 = (0..2).map(|k| sol.total_queue_length(k)).sum();
        assert!((total - 5.0).abs() < 1e-9, "total {total}");
    }

    // ------------------------------------------------------------------
    // SolvedLattice
    // ------------------------------------------------------------------

    /// Every sub-population view of a solved lattice is bit-for-bit the
    /// direct solve at that sub-population.
    fn assert_lattice_matches_solve(net: &Network, target: &[u32]) {
        let lat = SolvedLattice::new(net, target);
        let pl = PopulationLattice::new(target);
        for pop in pl.iter() {
            let view = lat.solution(&pop);
            let direct = solve(net, &pop);
            for c in 0..net.num_classes() {
                assert_eq!(
                    view.throughput(c).to_bits(),
                    direct.throughput(c).to_bits(),
                    "throughput diverged at {pop:?} class {c}"
                );
                assert_eq!(
                    lat.waiting_per_cycle(&pop, c).to_bits(),
                    direct.waiting_per_cycle(c).to_bits(),
                    "waiting diverged at {pop:?} class {c}"
                );
                for k in 0..net.num_stations() {
                    assert_eq!(
                        view.residence(k, c).to_bits(),
                        direct.residence(k, c).to_bits(),
                        "residence diverged at {pop:?} station {k} class {c}"
                    );
                    assert_eq!(
                        view.queue_length(k, c).to_bits(),
                        direct.queue_length(k, c).to_bits(),
                        "queue diverged at {pop:?} station {k} class {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn lattice_views_match_direct_solve_bitwise() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("d0", StationKind::Queueing, [0.5, 0.5])
            .station("d1", StationKind::Queueing, [0.5, 0.5])
            .build()
            .unwrap();
        assert_lattice_matches_solve(&net, &[4, 3]);
    }

    #[test]
    fn lattice_views_match_direct_solve_with_delay_and_multiserver() {
        let net = Network::builder(2)
            .station("think", StationKind::Delay, [10.0, 5.0])
            .station("cpu", StationKind::Queueing, [0.4, 1.3])
            .station("disks", StationKind::MultiServer { servers: 2 }, [1.0, 1.0])
            .build()
            .unwrap();
        assert_lattice_matches_solve(&net, &[3, 3]);
    }

    #[test]
    fn lattice_covers_and_rejects() {
        let net = single_station(1.0);
        let lat = SolvedLattice::new(&net, &[3]);
        assert_eq!(lat.target(), &[3]);
        assert!(lat.covers(&[0]));
        assert!(lat.covers(&[3]));
        assert!(!lat.covers(&[4]));
        assert!(!lat.covers(&[1, 1]));
    }

    #[test]
    #[should_panic(expected = "exceeds target")]
    fn lattice_solution_outside_target_panics() {
        let net = single_station(1.0);
        let _ = SolvedLattice::new(&net, &[2]).solution(&[3]);
    }

    #[test]
    fn lattice_normalized_waiting_matches_solution() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("disk", StationKind::Queueing, [1.0, 1.0])
            .build()
            .unwrap();
        let lat = SolvedLattice::new(&net, &[2, 2]);
        for pop in [[1, 0], [2, 1], [2, 2]] {
            for c in 0..2 {
                assert_eq!(
                    lat.normalized_waiting(&pop, c).to_bits(),
                    lat.solution(&pop).normalized_waiting(c).to_bits()
                );
            }
        }
    }

    #[test]
    fn zero_server_multiserver_rejected() {
        let err = Network::builder(1)
            .station("bad", StationKind::MultiServer { servers: 0 }, [1.0])
            .build();
        assert!(err.is_err());
    }
}
