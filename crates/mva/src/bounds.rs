//! Asymptotic (bottleneck) bounds for single-class closed networks, and
//! balanced-job waiting bounds for multi-class ones.
//!
//! Operational-law bounds need only the total demand per station — no
//! recursion — and bracket the exact MVA solution. The test suites use
//! them as an independent oracle for the solver, they make quick capacity
//! estimates ("how many terminals can this site possibly carry?") without
//! simulating, and [`waiting_bounds`] certifies the pruning of the
//! optimal-allocation search (`dqa_mva::search`): a candidate site whose
//! waiting *lower* bound already exceeds an exactly-evaluated rival can be
//! discarded without running the exact recursion.

use crate::{Network, StationKind};

/// Asymptotic bounds on throughput and response time for a single-class
/// closed interactive system: `n` customers, think time `think`, and
/// per-station service demands `demands` (single-server stations).
///
/// Returned as `(x_lo, x_hi, r_lo, r_hi)`:
///
/// * `x_hi = min(n / (D + Z), 1 / D_max)` — customers can't cycle faster
///   than with zero queueing, nor faster than the bottleneck empties;
/// * `x_lo = n / (Z + n·D)` — even if every visit queues behind everyone;
/// * `r_lo = max(D, n·D_max − Z)` — response is at least the raw demand
///   and at least what the bottleneck forces at this population;
/// * `r_hi = n·D` — at worst every customer waits for all others at every
///   station.
///
/// # Panics
///
/// Panics if `demands` is empty, any demand is negative/non-finite,
/// `think` is negative, or `n` is zero.
///
/// # Example
///
/// ```
/// use dqa_mva::bounds::asymptotic_bounds;
///
/// let (x_lo, x_hi, r_lo, r_hi) = asymptotic_bounds(&[1.0, 0.5], 10.0, 4);
/// assert!(x_lo <= x_hi);
/// assert!(r_lo <= r_hi);
/// // Bottleneck law: never more than 1 completion per bottleneck-demand.
/// assert!(x_hi <= 1.0 / 1.0 + 1e-12);
/// ```
#[must_use]
pub fn asymptotic_bounds(demands: &[f64], think: f64, n: u32) -> (f64, f64, f64, f64) {
    assert!(!demands.is_empty(), "need at least one station");
    assert!(think >= 0.0 && think.is_finite(), "invalid think time");
    assert!(n > 0, "need at least one customer");
    let mut total = 0.0;
    let mut max = 0.0f64;
    for &d in demands {
        assert!(d.is_finite() && d >= 0.0, "invalid demand {d}");
        total += d;
        max = max.max(d);
    }
    let nf = f64::from(n);
    let x_hi = if max > 0.0 {
        (nf / (total + think)).min(1.0 / max)
    } else {
        nf / (total + think).max(f64::MIN_POSITIVE)
    };
    let x_lo = nf / (think + nf * total);
    let r_lo = total.max(nf * max - think);
    let r_hi = nf * total;
    (x_lo, x_hi, r_lo, r_hi)
}

/// The population beyond which the bottleneck saturates:
/// `n* = (D + Z) / D_max`. Below `n*` the optimistic bound governs; above
/// it the bottleneck does. (The knee of the classic throughput curve.)
///
/// # Panics
///
/// Panics on empty or invalid demands, or if every demand is zero.
#[must_use]
pub fn saturation_population(demands: &[f64], think: f64) -> f64 {
    assert!(!demands.is_empty(), "need at least one station");
    let total: f64 = demands.iter().sum();
    let max = demands.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 0.0, "at least one demand must be positive");
    (total + think) / max
}

/// Certified balanced-job bounds `(lo, hi)` on the per-cycle **waiting**
/// time of `class` in a multi-class closed network at `population`
/// (`Solution::waiting_per_cycle` of the exact solve), with
/// `population[class] >= 1` — the arriving query is part of the
/// population, as in the allocation study.
///
/// Derivation, from the arrival theorem: a class-`c` arrival's waiting is
/// `W_c(n) = Σ_k D_kc · Q_k(n − e_c)` over the queueing stations (delay
/// stations never queue, and a multiserver station's queueing term is
/// between `0` and `D_kc · Q_k`). The mean queues at the reduced
/// population sum to exactly `|n| − 1` when every station is a
/// single-server queueing station, and to at most `|n| − 1` otherwise.
/// Replacing the network with a *balanced* one at the class's extreme
/// demands therefore brackets the truth:
///
/// * `hi = (|n| − 1) · max_k D_kc` over non-delay stations — every other
///   customer queues ahead of the arrival at its most expensive station;
/// * `lo = (|n| − 1) · min_k D_kc` over the stations when **all** stations
///   are single-server queueing (the `|n| − 1` customers must be
///   *somewhere*, each costing at least the cheapest demand); `0.0` if
///   the network has delay or multiserver stations (customers can then
///   absorb no queueing at all).
///
/// The bounds need no recursion — `O(K)` — and are exactly what the
/// pruned allocation search (`dqa_mva::search`) uses to discard candidate
/// sites without solving them.
///
/// # Panics
///
/// Panics if the arities mismatch, `class` is out of range, or
/// `population[class] == 0`.
///
/// # Example
///
/// ```
/// use dqa_mva::bounds::waiting_bounds;
/// use dqa_mva::{solve, Network, StationKind};
///
/// let net = Network::builder(2)
///     .station("cpu", StationKind::Queueing, [0.05, 1.0])
///     .station("disk", StationKind::Queueing, [0.5, 0.5])
///     .build()?;
/// let (lo, hi) = waiting_bounds(&net, &[2, 1], 0);
/// let w = solve(&net, &[2, 1]).waiting_per_cycle(0);
/// assert!(lo <= w && w <= hi);
/// # Ok::<(), dqa_mva::NetworkError>(())
/// ```
#[must_use]
pub fn waiting_bounds(network: &Network, population: &[u32], class: usize) -> (f64, f64) {
    assert_eq!(
        population.len(),
        network.num_classes(),
        "population vector has wrong arity"
    );
    assert!(class < network.num_classes(), "class out of range");
    assert!(
        population[class] >= 1,
        "evaluated class must be present in the population"
    );

    let others = f64::from(population.iter().sum::<u32>() - 1);
    let mut d_min = f64::INFINITY;
    let mut d_max = 0.0f64;
    let mut all_single_server = true;
    for k in 0..network.num_stations() {
        let d = network.demand(k, class);
        match network.kind(k) {
            StationKind::Queueing => {
                d_min = d_min.min(d);
                d_max = d_max.max(d);
            }
            StationKind::MultiServer { .. } => {
                all_single_server = false;
                d_max = d_max.max(d);
            }
            StationKind::Delay => {
                all_single_server = false;
            }
        }
    }
    let lo = if all_single_server && d_min.is_finite() {
        others * d_min
    } else {
        0.0
    };
    (lo, others * d_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Network, StationKind};

    fn exact(demands: &[f64], think: f64, n: u32) -> (f64, f64) {
        let mut b = Network::builder(1);
        if think > 0.0 {
            b = b.station("think", StationKind::Delay, [think]);
        }
        for (k, &d) in demands.iter().enumerate() {
            b = b.station(&format!("q{k}"), StationKind::Queueing, [d]);
        }
        let sol = solve(&b.build().unwrap(), &[n]);
        let x = sol.throughput(0);
        let r = f64::from(n) / x - think;
        (x, r)
    }

    #[test]
    fn bounds_bracket_exact_mva() {
        for demands in [vec![1.0], vec![1.0, 0.5], vec![0.3, 0.3, 0.9]] {
            for think in [0.0, 5.0, 50.0] {
                for n in [1u32, 2, 5, 10, 20] {
                    let (x_lo, x_hi, r_lo, r_hi) = asymptotic_bounds(&demands, think, n);
                    let (x, r) = exact(&demands, think, n);
                    assert!(
                        x_lo - 1e-9 <= x && x <= x_hi + 1e-9,
                        "X {x} outside [{x_lo}, {x_hi}] for {demands:?} Z={think} n={n}"
                    );
                    assert!(
                        r_lo - 1e-9 <= r && r <= r_hi + 1e-9,
                        "R {r} outside [{r_lo}, {r_hi}] for {demands:?} Z={think} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_customer_bounds_are_tight() {
        let (x_lo, x_hi, r_lo, _) = asymptotic_bounds(&[1.0, 2.0], 7.0, 1);
        assert!((x_lo - 0.1).abs() < 1e-12);
        assert!((x_hi - 0.1).abs() < 1e-12);
        assert!((r_lo - 3.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_knee() {
        // D = 3, Z = 7, Dmax = 2: n* = 5. The optimistic bound switches
        // from N-limited to bottleneck-limited there.
        let n_star = saturation_population(&[1.0, 2.0], 7.0);
        assert!((n_star - 5.0).abs() < 1e-12);
        let below = asymptotic_bounds(&[1.0, 2.0], 7.0, 4).1;
        assert!((below - 0.4).abs() < 1e-12, "below knee: N/(D+Z)");
        let above = asymptotic_bounds(&[1.0, 2.0], 7.0, 9).1;
        assert!((above - 0.5).abs() < 1e-12, "above knee: 1/Dmax");
    }

    #[test]
    fn exact_approaches_bottleneck_asymptote() {
        let (x, _) = exact(&[1.0, 2.0], 7.0, 60);
        assert!((x - 0.5).abs() < 1e-3, "X(60) = {x} should be near 1/Dmax");
    }

    #[test]
    #[should_panic(expected = "at least one customer")]
    fn zero_population_rejected() {
        let _ = asymptotic_bounds(&[1.0], 0.0, 0);
    }

    // ------------------------------------------------------------------
    // Multi-class waiting bounds
    // ------------------------------------------------------------------

    #[test]
    fn waiting_bounds_bracket_exact_on_site_networks() {
        // The allocation study's site shapes, over a grid of populations.
        for (c1, c2) in [(0.05, 0.5), (0.10, 2.0), (0.50, 2.5)] {
            let net = Network::builder(2)
                .station("cpu", StationKind::Queueing, [c1, c2])
                .station("d0", StationKind::Queueing, [0.5, 0.5])
                .station("d1", StationKind::Queueing, [0.5, 0.5])
                .build()
                .unwrap();
            for n0 in 0..5u32 {
                for n1 in 0..5u32 {
                    let sol = solve(&net, &[n0, n1]);
                    for class in 0..2 {
                        if [n0, n1][class] == 0 {
                            continue;
                        }
                        let (lo, hi) = waiting_bounds(&net, &[n0, n1], class);
                        let w = sol.waiting_per_cycle(class);
                        assert!(
                            lo <= w + 1e-12 && w <= hi + 1e-12,
                            "W {w} outside [{lo}, {hi}] at [{n0}, {n1}] class {class}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn waiting_bounds_bracket_exact_with_delay_and_multiserver() {
        let net = Network::builder(2)
            .station("think", StationKind::Delay, [5.0, 5.0])
            .station("cpu", StationKind::Queueing, [0.4, 1.3])
            .station("disks", StationKind::MultiServer { servers: 2 }, [1.0, 1.0])
            .build()
            .unwrap();
        for pop in [[1u32, 0], [2, 2], [4, 1], [0, 3]] {
            let sol = solve(&net, &pop);
            for class in 0..2 {
                if pop[class] == 0 {
                    continue;
                }
                let (lo, hi) = waiting_bounds(&net, &pop, class);
                assert_eq!(lo, 0.0, "mixed stations give a zero lower bound");
                let w = sol.waiting_per_cycle(class);
                assert!(w <= hi + 1e-12, "W {w} above {hi} at {pop:?} class {class}");
            }
        }
    }

    #[test]
    fn waiting_bounds_lone_customer_is_zero() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .station("disk", StationKind::Queueing, [0.5, 0.5])
            .build()
            .unwrap();
        assert_eq!(waiting_bounds(&net, &[1, 0], 0), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "must be present")]
    fn waiting_bounds_rejects_absent_class() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [0.05, 1.0])
            .build()
            .unwrap();
        let _ = waiting_bounds(&net, &[0, 2], 0);
    }
}
