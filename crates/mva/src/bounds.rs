//! Asymptotic (bottleneck) bounds for single-class closed networks.
//!
//! Operational-law bounds need only the total demand per station — no
//! recursion — and bracket the exact MVA solution. The test suites use
//! them as an independent oracle for the solver, and they make quick
//! capacity estimates ("how many terminals can this site possibly carry?")
//! without simulating.

/// Asymptotic bounds on throughput and response time for a single-class
/// closed interactive system: `n` customers, think time `think`, and
/// per-station service demands `demands` (single-server stations).
///
/// Returned as `(x_lo, x_hi, r_lo, r_hi)`:
///
/// * `x_hi = min(n / (D + Z), 1 / D_max)` — customers can't cycle faster
///   than with zero queueing, nor faster than the bottleneck empties;
/// * `x_lo = n / (Z + n·D)` — even if every visit queues behind everyone;
/// * `r_lo = max(D, n·D_max − Z)` — response is at least the raw demand
///   and at least what the bottleneck forces at this population;
/// * `r_hi = n·D` — at worst every customer waits for all others at every
///   station.
///
/// # Panics
///
/// Panics if `demands` is empty, any demand is negative/non-finite,
/// `think` is negative, or `n` is zero.
///
/// # Example
///
/// ```
/// use dqa_mva::bounds::asymptotic_bounds;
///
/// let (x_lo, x_hi, r_lo, r_hi) = asymptotic_bounds(&[1.0, 0.5], 10.0, 4);
/// assert!(x_lo <= x_hi);
/// assert!(r_lo <= r_hi);
/// // Bottleneck law: never more than 1 completion per bottleneck-demand.
/// assert!(x_hi <= 1.0 / 1.0 + 1e-12);
/// ```
#[must_use]
pub fn asymptotic_bounds(demands: &[f64], think: f64, n: u32) -> (f64, f64, f64, f64) {
    assert!(!demands.is_empty(), "need at least one station");
    assert!(think >= 0.0 && think.is_finite(), "invalid think time");
    assert!(n > 0, "need at least one customer");
    let mut total = 0.0;
    let mut max = 0.0f64;
    for &d in demands {
        assert!(d.is_finite() && d >= 0.0, "invalid demand {d}");
        total += d;
        max = max.max(d);
    }
    let nf = f64::from(n);
    let x_hi = if max > 0.0 {
        (nf / (total + think)).min(1.0 / max)
    } else {
        nf / (total + think).max(f64::MIN_POSITIVE)
    };
    let x_lo = nf / (think + nf * total);
    let r_lo = total.max(nf * max - think);
    let r_hi = nf * total;
    (x_lo, x_hi, r_lo, r_hi)
}

/// The population beyond which the bottleneck saturates:
/// `n* = (D + Z) / D_max`. Below `n*` the optimistic bound governs; above
/// it the bottleneck does. (The knee of the classic throughput curve.)
///
/// # Panics
///
/// Panics on empty or invalid demands, or if every demand is zero.
#[must_use]
pub fn saturation_population(demands: &[f64], think: f64) -> f64 {
    assert!(!demands.is_empty(), "need at least one station");
    let total: f64 = demands.iter().sum();
    let max = demands.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 0.0, "at least one demand must be positive");
    (total + think) / max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Network, StationKind};

    fn exact(demands: &[f64], think: f64, n: u32) -> (f64, f64) {
        let mut b = Network::builder(1);
        if think > 0.0 {
            b = b.station("think", StationKind::Delay, [think]);
        }
        for (k, &d) in demands.iter().enumerate() {
            b = b.station(&format!("q{k}"), StationKind::Queueing, [d]);
        }
        let sol = solve(&b.build().unwrap(), &[n]);
        let x = sol.throughput(0);
        let r = f64::from(n) / x - think;
        (x, r)
    }

    #[test]
    fn bounds_bracket_exact_mva() {
        for demands in [vec![1.0], vec![1.0, 0.5], vec![0.3, 0.3, 0.9]] {
            for think in [0.0, 5.0, 50.0] {
                for n in [1u32, 2, 5, 10, 20] {
                    let (x_lo, x_hi, r_lo, r_hi) = asymptotic_bounds(&demands, think, n);
                    let (x, r) = exact(&demands, think, n);
                    assert!(
                        x_lo - 1e-9 <= x && x <= x_hi + 1e-9,
                        "X {x} outside [{x_lo}, {x_hi}] for {demands:?} Z={think} n={n}"
                    );
                    assert!(
                        r_lo - 1e-9 <= r && r <= r_hi + 1e-9,
                        "R {r} outside [{r_lo}, {r_hi}] for {demands:?} Z={think} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_customer_bounds_are_tight() {
        let (x_lo, x_hi, r_lo, _) = asymptotic_bounds(&[1.0, 2.0], 7.0, 1);
        assert!((x_lo - 0.1).abs() < 1e-12);
        assert!((x_hi - 0.1).abs() < 1e-12);
        assert!((r_lo - 3.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_knee() {
        // D = 3, Z = 7, Dmax = 2: n* = 5. The optimistic bound switches
        // from N-limited to bottleneck-limited there.
        let n_star = saturation_population(&[1.0, 2.0], 7.0);
        assert!((n_star - 5.0).abs() < 1e-12);
        let below = asymptotic_bounds(&[1.0, 2.0], 7.0, 4).1;
        assert!((below - 0.4).abs() < 1e-12, "below knee: N/(D+Z)");
        let above = asymptotic_bounds(&[1.0, 2.0], 7.0, 9).1;
        assert!((above - 0.5).abs() < 1e-12, "above knee: 1/Dmax");
    }

    #[test]
    fn exact_approaches_bottleneck_asymptote() {
        let (x, _) = exact(&[1.0, 2.0], 7.0, 60);
        assert!((x - 0.5).abs() < 1e-3, "X(60) = {x} should be near 1/Dmax");
    }

    #[test]
    #[should_panic(expected = "at least one customer")]
    fn zero_population_rejected() {
        let _ = asymptotic_bounds(&[1.0], 0.0, 0);
    }
}
