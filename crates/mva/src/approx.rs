//! Schweitzer–Bard approximate MVA.
//!
//! Exact MVA's population-vector lattice grows as `Π(N_c + 1)`, which is
//! fine for the paper's 1–5 query populations but explodes for, say, the
//! 120-terminal simulated system. The Schweitzer approximation replaces
//! the arrival-theorem lookup `Q_k(N − e_c)` with the fixed-point estimate
//! `Q_k(N) − Q_kc(N) / N_c`, reducing the computation to an iteration at
//! a single population — O(K·C) per sweep, independent of N.

use crate::{Network, Solution, StationKind};

/// Solves `network` at `population` with the Schweitzer–Bard fixed-point
/// approximation.
///
/// Accuracy is typically within a few percent of exact MVA, degrading for
/// very small populations (where exact MVA is cheap anyway) and improving
/// as populations grow.
///
/// Only load-independent stations are supported: the Schweitzer estimate
/// has no sound analogue of the multiserver marginal probabilities.
///
/// # Panics
///
/// Panics if the population arity does not match, or the network contains
/// a [`StationKind::MultiServer`] station.
///
/// # Example
///
/// ```
/// use dqa_mva::{approx_solve, solve, Network, StationKind};
///
/// let net = Network::builder(2)
///     .station("think", StationKind::Delay, [350.0, 350.0])
///     .station("cpu", StationKind::Queueing, [1.0, 20.0])
///     .station("disk", StationKind::Queueing, [10.0, 10.0])
///     .build()?;
/// let exact = solve(&net, &[10, 10]);
/// let approx = approx_solve(&net, &[10, 10]);
/// let rel = (approx.throughput(0) - exact.throughput(0)).abs() / exact.throughput(0);
/// assert!(rel < 0.05, "Schweitzer within a few percent: {rel}");
/// # Ok::<(), dqa_mva::NetworkError>(())
/// ```
#[must_use]
pub fn approx_solve(network: &Network, population: &[u32]) -> Solution {
    let classes = network.num_classes();
    let stations = network.num_stations();
    assert_eq!(
        population.len(),
        classes,
        "population vector has wrong arity"
    );
    for k in 0..stations {
        assert!(
            !matches!(network.kind(k), StationKind::MultiServer { .. }),
            "Schweitzer AMVA does not support multiserver stations (station `{}`)",
            network.name(k)
        );
    }

    let total: u32 = population.iter().sum();
    let mut residence = vec![0.0f64; stations * classes];
    let mut throughput = vec![0.0f64; classes];
    let mut queue = vec![0.0f64; stations * classes];

    if total == 0 {
        // Nothing circulates; report the empty-system arrival view.
        for c in 0..classes {
            for k in 0..stations {
                residence[k * classes + c] = network.demand(k, c);
            }
        }
        return Solution::from_parts(network, residence, throughput, queue);
    }

    // Initialize: spread each class evenly over the stations.
    for c in 0..classes {
        for k in 0..stations {
            queue[k * classes + c] = f64::from(population[c]) / stations as f64;
        }
    }

    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut delta = 0.0f64;

        for c in 0..classes {
            if population[c] == 0 {
                for k in 0..stations {
                    residence[k * classes + c] = 0.0;
                }
                continue;
            }
            let nc = f64::from(population[c]);
            for k in 0..stations {
                let d = network.demand(k, c);
                residence[k * classes + c] = match network.kind(k) {
                    StationKind::Delay => d,
                    StationKind::Queueing => {
                        // Schweitzer: an arrival sees everyone, minus its
                        // own class scaled down by one customer.
                        let q_total: f64 = (0..classes).map(|j| queue[k * classes + j]).sum();
                        let seen = q_total - queue[k * classes + c] / nc;
                        d * (1.0 + seen)
                    }
                    StationKind::MultiServer { .. } => unreachable!("checked above"),
                };
            }
        }

        for c in 0..classes {
            if population[c] == 0 {
                throughput[c] = 0.0;
                continue;
            }
            let cycle: f64 = (0..stations).map(|k| residence[k * classes + c]).sum();
            throughput[c] = if cycle > 0.0 {
                f64::from(population[c]) / cycle
            } else {
                0.0
            };
            for k in 0..stations {
                let new_q = throughput[c] * residence[k * classes + c];
                delta = delta.max((new_q - queue[k * classes + c]).abs());
                queue[k * classes + c] = new_q;
            }
        }

        if delta < 1e-10 || iterations >= 10_000 {
            break;
        }
    }

    // Arrival view for empty classes, against the converged queues.
    for c in 0..classes {
        if population[c] == 0 {
            for k in 0..stations {
                let d = network.demand(k, c);
                residence[k * classes + c] = match network.kind(k) {
                    StationKind::Delay => d,
                    _ => {
                        let q_total: f64 = (0..classes).map(|j| queue[k * classes + j]).sum();
                        d * (1.0 + q_total)
                    }
                };
            }
        }
    }

    Solution::from_parts(network, residence, throughput, queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve;

    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            (a - b).abs() / b.abs()
        }
    }

    #[test]
    fn matches_exact_on_single_class_interactive_system() {
        let net = Network::builder(1)
            .station("think", StationKind::Delay, [100.0])
            .station("cpu", StationKind::Queueing, [1.0])
            .station("disk", StationKind::Queueing, [2.0])
            .build()
            .unwrap();
        for n in [1u32, 5, 20, 50] {
            let exact = solve(&net, &[n]);
            let approx = approx_solve(&net, &[n]);
            let err = rel_err(approx.throughput(0), exact.throughput(0));
            assert!(err < 0.03, "n = {n}: rel err {err}");
        }
    }

    #[test]
    fn matches_exact_on_two_class_site() {
        let net = Network::builder(2)
            .station("think", StationKind::Delay, [350.0, 350.0])
            .station("cpu", StationKind::Queueing, [1.0, 20.0])
            .station("d0", StationKind::Queueing, [10.0, 10.0])
            .station("d1", StationKind::Queueing, [10.0, 10.0])
            .build()
            .unwrap();
        let exact = solve(&net, &[10, 10]);
        let approx = approx_solve(&net, &[10, 10]);
        for c in 0..2 {
            let err = rel_err(approx.throughput(c), exact.throughput(c));
            assert!(err < 0.05, "class {c}: rel err {err}");
        }
    }

    #[test]
    fn queue_lengths_sum_to_population() {
        let net = Network::builder(2)
            .station("a", StationKind::Queueing, [1.0, 0.4])
            .station("b", StationKind::Queueing, [0.7, 1.9])
            .build()
            .unwrap();
        let sol = approx_solve(&net, &[6, 4]);
        let total: f64 = (0..2).map(|k| sol.total_queue_length(k)).sum();
        assert!((total - 10.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn handles_large_populations_exact_mva_cannot() {
        // 200 customers in each of 3 classes: the exact lattice would have
        // 201^3 ≈ 8.1M points; Schweitzer converges in milliseconds.
        let net = Network::builder(3)
            .station("think", StationKind::Delay, [500.0, 500.0, 500.0])
            .station("cpu", StationKind::Queueing, [1.0, 5.0, 0.2])
            .station("disk", StationKind::Queueing, [3.0, 1.0, 2.0])
            .build()
            .unwrap();
        let sol = approx_solve(&net, &[200, 200, 200]);
        for c in 0..3 {
            assert!(sol.throughput(c) > 0.0);
        }
        // Bottleneck sanity: total disk utilization cannot exceed 1.
        let rho: f64 = (0..3).map(|c| sol.throughput(c) * net.demand(2, c)).sum();
        assert!(rho <= 1.0 + 1e-6, "disk utilization {rho}");
    }

    #[test]
    fn zero_population_is_empty_view() {
        let net = Network::builder(1)
            .station("q", StationKind::Queueing, [2.0])
            .build()
            .unwrap();
        let sol = approx_solve(&net, &[0]);
        assert_eq!(sol.throughput(0), 0.0);
        assert!((sol.residence(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "multiserver")]
    fn multiserver_rejected() {
        let net = Network::builder(1)
            .station("ms", StationKind::MultiServer { servers: 2 }, [1.0])
            .build()
            .unwrap();
        let _ = approx_solve(&net, &[3]);
    }
}
