//! # dqa-mva — exact Mean Value Analysis and the optimal-allocation study
//!
//! Section 3 of the paper quantifies the *potential* of demand-aware query
//! allocation analytically: for a four-site system with two query classes it
//! compares, for a single arriving query, the expected per-cycle waiting
//! time under the naive "balance the number of queries" (BNQ) choice against
//! the best possible choice, using the **Mean Value algorithm** of Reiser &
//! Lavenberg for closed multi-chain queueing networks.
//!
//! This crate contains:
//!
//! * [`Network`] / [`solve`] — an exact multi-class MVA solver for closed
//!   product-form networks of queueing (PS / exponential-FCFS) and delay
//!   stations, recursing over the full lattice of population vectors.
//! * [`allocation`] — the paper's study: DB-site networks (one PS CPU plus
//!   `num_disks` FCFS disks), load-distribution matrices, the BNQ and
//!   optimal allocation rules, and the Waiting / Fairness Improvement
//!   Factors (WIF, FIF) reported in Tables 5 and 6.
//!
//! # Example
//!
//! A two-class network: one PS CPU shared by an I/O-bound and a CPU-bound
//! chain, plus one FCFS disk.
//!
//! ```
//! use dqa_mva::{Network, StationKind, solve};
//!
//! let net = Network::builder(2)
//!     .station("cpu", StationKind::Queueing, [0.05, 1.0])
//!     .station("disk", StationKind::Queueing, [0.5, 0.5])
//!     .build()?;
//! let sol = solve(&net, &[2, 1]);
//! // Throughputs and residence times are exact for this population.
//! assert!(sol.throughput(0) > 0.0);
//! assert!(sol.residence(1, 1) >= 1.0); // CPU-bound class spends >= demand at CPU
//! # Ok::<(), dqa_mva::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod allocation;
mod approx;
pub mod bounds;
mod network;
mod population;
pub mod search;
mod solver;

pub use approx::approx_solve;
pub use network::{Network, NetworkBuilder, NetworkError, StationKind};
pub use population::PopulationLattice;
pub use solver::{solve, Solution, SolvedLattice};
