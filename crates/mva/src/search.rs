//! Bounds-pruned optimal-allocation search.
//!
//! The allocation decision a running scheduler faces — "which site
//! minimizes the arriving query's expected waiting?" — does not need the
//! exhaustive per-site exact evaluation that the Table-5/6 *study* does:
//! most candidate sites can be discarded from their certified
//! [`bounds::waiting_bounds`] lower bound alone, and the cheap
//! Schweitzer [`approx_solve`] screening pass orders the survivors so the
//! likely winner is confirmed first (tightening the pruning threshold as
//! early as possible). Only candidates whose lower bound stays below the
//! best *exact* value seen are confirmed with exact MVA, via the shared
//! [`StudyCache`] recursion.
//!
//! The outcome — site **and** waiting value — is guaranteed identical to
//! the unpruned search (`analyze_arrival`'s `opt_site`/`waiting_opt`):
//! a pruned site has exact waiting at least its lower bound, which
//! strictly exceeds the best exact value at pruning time, and that best
//! value only decreases afterwards. Ties are impossible for pruned sites
//! (the exclusion test is strict), so the naive tie-break — lowest site
//! index — is preserved.

use crate::allocation::{ClassIndex, LoadMatrix, StudyCache};
use crate::bounds::waiting_bounds;
use crate::{approx_solve, StationKind};

/// Result of a pruned [`optimal_waiting_site`] search, with its work
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The site minimizing the arriving query's expected waiting per
    /// cycle (lowest index on exact ties) — identical to the unpruned
    /// `analyze_arrival(..).opt_site`.
    pub site: usize,
    /// The exact waiting per cycle at [`SearchOutcome::site`] — identical
    /// to the unpruned `waiting_opt`.
    pub waiting: f64,
    /// Candidate sites confirmed with exact MVA.
    pub exact_evaluated: usize,
    /// Candidate sites discarded from their lower bound alone.
    pub pruned: usize,
}

/// Finds the waiting-optimal site for a class-`class` arrival under load
/// `load`, pruning candidates with [`waiting_bounds`] and screening with
/// [`approx_solve`], confirming survivors through the `cache`'s shared
/// exact recursion.
///
/// # Panics
///
/// Panics if `class` is not 0 or 1.
#[must_use]
pub fn optimal_waiting_site(
    cache: &StudyCache,
    load: &LoadMatrix,
    class: ClassIndex,
) -> SearchOutcome {
    let network = cache.network();

    // Candidate populations and their certified lower bounds.
    let mut pops = [[0u32; 2]; LoadMatrix::SITES];
    let mut lower = [0.0f64; LoadMatrix::SITES];
    let mut estimate = [0.0f64; LoadMatrix::SITES];
    let screen_with_approx = (0..network.num_stations())
        .all(|k| !matches!(network.kind(k), StationKind::MultiServer { .. }));
    for j in 0..LoadMatrix::SITES {
        let pop = load.with_arrival(class, j).site_population(j);
        pops[j] = pop;
        let (lo, hi) = waiting_bounds(network, &pop, class);
        lower[j] = lo;
        // Screening order only — correctness never depends on it. The
        // Schweitzer fixed point is a far sharper guess than the bound
        // midpoint, but it has no multiserver form.
        estimate[j] = if screen_with_approx {
            approx_solve(network, &pop).waiting_per_cycle(class)
        } else {
            (lo + hi) / 2.0
        };
    }

    let mut order: [usize; LoadMatrix::SITES] = [0, 1, 2, 3];
    order.sort_by(|&a, &b| estimate[a].total_cmp(&estimate[b]).then(a.cmp(&b)));

    let mut best: Option<(f64, usize)> = None;
    let mut exact_evaluated = 0;
    let mut pruned = 0;
    for &j in &order {
        if let Some((w_best, _)) = best {
            if lower[j] > w_best {
                pruned += 1;
                continue;
            }
        }
        let w = cache.waiting_per_cycle(pops[j], class);
        exact_evaluated += 1;
        best = match best {
            None => Some((w, j)),
            Some((w_best, j_best)) => match w.total_cmp(&w_best) {
                std::cmp::Ordering::Less => Some((w, j)),
                std::cmp::Ordering::Equal if j < j_best => Some((w, j)),
                _ => Some((w_best, j_best)),
            },
        };
    }

    let (waiting, site) = best.expect("at least one site is always evaluated");
    SearchOutcome {
        site,
        waiting,
        exact_evaluated,
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{
        analyze_arrival, paper_cpu_ratios, paper_load_cases, DiskModel, StudyConfig,
    };

    #[test]
    fn pruned_search_matches_exhaustive_on_paper_sweep() {
        for (c1, c2) in paper_cpu_ratios() {
            let cfg = StudyConfig::new(c1, c2);
            let cache = StudyCache::new(cfg);
            for load in paper_load_cases() {
                for class in 0..2 {
                    let full = analyze_arrival(&cfg, &load, class);
                    let pruned = optimal_waiting_site(&cache, &load, class);
                    assert_eq!(pruned.site, full.opt_site, "{c1}/{c2} {load:?} {class}");
                    assert_eq!(
                        pruned.waiting.to_bits(),
                        full.waiting_opt.to_bits(),
                        "{c1}/{c2} {load:?} {class}"
                    );
                    assert_eq!(pruned.exact_evaluated + pruned.pruned, LoadMatrix::SITES);
                }
            }
        }
    }

    #[test]
    fn pruned_search_matches_exhaustive_under_multiserver_model() {
        // No Schweitzer screening here (multiserver stations): the search
        // falls back to bound midpoints and must still agree exactly.
        for (c1, c2) in paper_cpu_ratios() {
            let cfg = StudyConfig::new(c1, c2).with_disk_model(DiskModel::MultiServer);
            let cache = StudyCache::new(cfg);
            for load in paper_load_cases() {
                for class in 0..2 {
                    let full = analyze_arrival(&cfg, &load, class);
                    let got = optimal_waiting_site(&cache, &load, class);
                    assert_eq!(got.site, full.opt_site);
                    assert_eq!(got.waiting.to_bits(), full.waiting_opt.to_bits());
                }
            }
        }
    }

    #[test]
    fn search_prunes_lopsided_loads() {
        // One site is empty, one holds five same-class queries: the busy
        // site's lower bound exceeds the empty site's exact zero waiting.
        let cache = StudyCache::new(StudyConfig::new(0.05, 1.0));
        let load = LoadMatrix::new([[5, 2, 1, 0], [0, 0, 0, 0]]);
        let out = optimal_waiting_site(&cache, &load, 0);
        assert_eq!(out.site, 3, "arrival should join the empty site");
        assert_eq!(out.waiting, 0.0);
        assert!(out.pruned >= 1, "busy sites should be pruned: {out:?}");
    }

    #[test]
    fn search_accounts_for_every_site() {
        let cache = StudyCache::new(StudyConfig::new(0.10, 2.0));
        for load in paper_load_cases() {
            for class in 0..2 {
                let out = optimal_waiting_site(&cache, &load, class);
                assert_eq!(out.exact_evaluated + out.pruned, LoadMatrix::SITES);
                assert!(out.exact_evaluated >= 1);
                assert!(out.site < LoadMatrix::SITES);
            }
        }
    }
}
