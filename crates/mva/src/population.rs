//! Iteration over the lattice of population vectors.

/// The lattice of population vectors `0 <= n <= target` (componentwise),
/// with a dense mixed-radix index.
///
/// Exact multi-class MVA computes queue lengths for every population vector
/// below the target, in an order where each vector is visited only after all
/// vectors obtained by removing one customer. Lexicographic mixed-radix
/// order has that property (removing a customer strictly decreases the
/// index), so a flat `Vec` indexed by [`PopulationLattice::index`] can store
/// the whole recursion.
///
/// # Example
///
/// ```
/// use dqa_mva::PopulationLattice;
///
/// let lat = PopulationLattice::new(&[2, 1]);
/// assert_eq!(lat.len(), 6); // (2+1) * (1+1)
/// let idx = lat.index(&[2, 1]);
/// assert_eq!(idx, lat.len() - 1);
/// ```
#[derive(Debug, Clone)]
pub struct PopulationLattice {
    target: Vec<u32>,
    /// Mixed-radix place values: stride[c] = prod_{d > c} (target[d] + 1).
    stride: Vec<usize>,
    len: usize,
}

impl PopulationLattice {
    /// Creates the lattice for the given target population.
    ///
    /// # Panics
    ///
    /// Panics if `target` is empty or the lattice would overflow `usize`.
    #[must_use]
    pub fn new(target: &[u32]) -> Self {
        assert!(!target.is_empty(), "need at least one class");
        let mut stride = vec![0usize; target.len()];
        let mut len = 1usize;
        for c in (0..target.len()).rev() {
            stride[c] = len;
            len = len
                .checked_mul(target[c] as usize + 1)
                .expect("population lattice too large");
        }
        PopulationLattice {
            target: target.to_vec(),
            stride,
            len,
        }
    }

    /// The target population vector.
    #[must_use]
    pub fn target(&self) -> &[u32] {
        &self.target
    }

    /// Number of vectors in the lattice (product of `target[c] + 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` only for a degenerate empty lattice (never happens:
    /// the zero vector is always present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mixed-radix place value of class `c`: the index distance between a
    /// vector and the same vector with one class-`c` customer removed. The
    /// MVA recursion uses it to locate reduced populations without
    /// materializing the reduced vector.
    #[must_use]
    pub fn stride(&self, class: usize) -> usize {
        self.stride[class]
    }

    /// Dense index of population vector `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` has the wrong length or exceeds the target in any
    /// component.
    #[must_use]
    pub fn index(&self, n: &[u32]) -> usize {
        assert_eq!(n.len(), self.target.len(), "population length mismatch");
        let mut idx = 0;
        for (c, &count) in n.iter().enumerate() {
            assert!(
                count <= self.target[c],
                "population {count} exceeds target {} in class {c}",
                self.target[c]
            );
            idx += count as usize * self.stride[c];
        }
        idx
    }

    /// Iterates over all population vectors in an order compatible with the
    /// MVA recursion: every vector appears after all vectors with one fewer
    /// customer.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            lattice: self,
            next: Some(vec![0; self.target.len()]),
        }
    }
}

/// Iterator over a [`PopulationLattice`] in mixed-radix order.
#[derive(Debug)]
pub struct Iter<'a> {
    lattice: &'a PopulationLattice,
    next: Option<Vec<u32>>,
}

impl Iterator for Iter<'_> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let current = self.next.take()?;
        // Compute the successor in mixed-radix order (least-significant
        // class last).
        let mut succ = current.clone();
        let target = &self.lattice.target;
        let mut c = succ.len();
        loop {
            if c == 0 {
                // overflowed every digit: done after yielding `current`
                self.next = None;
                break;
            }
            c -= 1;
            if succ[c] < target[c] {
                succ[c] += 1;
                succ[c + 1..].fill(0);
                self.next = Some(succ);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_lattice() {
        let lat = PopulationLattice::new(&[3]);
        let all: Vec<_> = lat.iter().collect();
        assert_eq!(all, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(lat.len(), 4);
        for (i, n) in all.iter().enumerate() {
            assert_eq!(lat.index(n), i);
        }
    }

    #[test]
    fn two_class_lattice_is_exhaustive_and_ordered() {
        let lat = PopulationLattice::new(&[2, 2]);
        let all: Vec<_> = lat.iter().collect();
        assert_eq!(all.len(), 9);
        assert_eq!(lat.len(), 9);
        // indices are the iteration order
        for (i, n) in all.iter().enumerate() {
            assert_eq!(lat.index(n), i);
        }
        // recursion property: removing one customer decreases the index
        for n in &all {
            for c in 0..2 {
                if n[c] > 0 {
                    let mut m = n.clone();
                    m[c] -= 1;
                    assert!(lat.index(&m) < lat.index(n));
                }
            }
        }
    }

    #[test]
    fn zero_population_lattice() {
        let lat = PopulationLattice::new(&[0, 0]);
        assert_eq!(lat.len(), 1);
        assert_eq!(lat.iter().count(), 1);
        assert_eq!(lat.index(&[0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds target")]
    fn index_out_of_lattice_panics() {
        let lat = PopulationLattice::new(&[1, 1]);
        let _ = lat.index(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_arity_panics() {
        let lat = PopulationLattice::new(&[1, 1]);
        let _ = lat.index(&[1]);
    }
}
