//! Closed multi-class queueing network specifications.

use std::error::Error;
use std::fmt;

/// The service discipline of a station, as far as product-form MVA is
/// concerned.
///
/// Exact MVA treats processor-sharing stations and FCFS stations with
/// class-independent exponential service identically (both satisfy the BCMP
/// conditions and share the arrival-theorem recursion), so a single
/// `Queueing` kind covers the paper's CPU (PS) and disks (exponential FCFS
/// with the same mean for both classes). `Delay` stations are
/// infinite-server centers — terminals in think state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StationKind {
    /// A load-independent queueing station (PS, or exponential FCFS with
    /// class-independent rates).
    Queueing,
    /// An infinite-server (delay) station: residence equals demand.
    Delay,
    /// A multiserver queueing station: `servers` parallel servers sharing
    /// one FIFO queue, service rate `min(n, servers)` relative to a single
    /// server. Solved by the exact load-dependent MVA recursion over
    /// marginal queue-length probabilities. Exact for class-independent
    /// exponential service (e.g. the paper's disks); with class-dependent
    /// demands the recursion is the standard approximation.
    MultiServer {
        /// Number of parallel servers (≥ 1; `1` coincides with
        /// [`StationKind::Queueing`]).
        servers: u32,
    },
}

/// Error constructing a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The network has no stations.
    NoStations,
    /// A demand was negative, NaN, or infinite.
    InvalidDemand {
        /// Station name.
        station: String,
        /// Class index.
        class: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NoStations => write!(f, "network has no stations"),
            NetworkError::InvalidDemand {
                station,
                class,
                value,
            } => write!(
                f,
                "invalid service demand {value} for class {class} at station `{station}`"
            ),
        }
    }
}

impl Error for NetworkError {}

/// A closed multi-class product-form queueing network.
///
/// A network is a set of stations, each with a per-class *service demand*:
/// the total service time a class-`c` customer requires from that station
/// per cycle through the network (visit ratio × mean service time).
///
/// Build one with [`Network::builder`]:
///
/// ```
/// use dqa_mva::{Network, StationKind};
///
/// let site = Network::builder(2)
///     .station("cpu", StationKind::Queueing, [0.05, 1.0])
///     .station("disk0", StationKind::Queueing, [0.5, 0.5])
///     .station("disk1", StationKind::Queueing, [0.5, 0.5])
///     .build()?;
/// assert_eq!(site.num_stations(), 3);
/// assert_eq!(site.num_classes(), 2);
/// assert_eq!(site.demand(0, 1), 1.0);
/// # Ok::<(), dqa_mva::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    names: Vec<String>,
    kinds: Vec<StationKind>,
    /// `demands[k][c]`: demand of class `c` at station `k`.
    demands: Vec<Vec<f64>>,
    classes: usize,
}

impl Network {
    /// Starts building a network with `classes` customer classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    #[must_use]
    pub fn builder(classes: usize) -> NetworkBuilder {
        assert!(classes > 0, "need at least one class");
        NetworkBuilder {
            classes,
            names: Vec::new(),
            kinds: Vec::new(),
            demands: Vec::new(),
        }
    }

    /// Number of stations.
    #[must_use]
    pub fn num_stations(&self) -> usize {
        self.kinds.len()
    }

    /// Number of customer classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// The station's kind.
    ///
    /// # Panics
    ///
    /// Panics if `station` is out of range.
    #[must_use]
    pub fn kind(&self, station: usize) -> StationKind {
        self.kinds[station]
    }

    /// The station's name.
    ///
    /// # Panics
    ///
    /// Panics if `station` is out of range.
    #[must_use]
    pub fn name(&self, station: usize) -> &str {
        &self.names[station]
    }

    /// Service demand of class `class` at station `station`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn demand(&self, station: usize, class: usize) -> f64 {
        self.demands[station][class]
    }

    /// Total service demand of a class across all stations (one cycle's
    /// worth of service).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn total_demand(&self, class: usize) -> f64 {
        self.demands.iter().map(|d| d[class]).sum()
    }
}

/// Builder for [`Network`]; see [`Network::builder`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    classes: usize,
    names: Vec<String>,
    kinds: Vec<StationKind>,
    demands: Vec<Vec<f64>>,
}

impl NetworkBuilder {
    /// Adds a station with the given per-class demands.
    ///
    /// # Panics
    ///
    /// Panics if `demands` does not have exactly one entry per class.
    #[must_use]
    pub fn station(mut self, name: &str, kind: StationKind, demands: impl Into<Vec<f64>>) -> Self {
        let demands = demands.into();
        assert_eq!(
            demands.len(),
            self.classes,
            "station `{name}` needs one demand per class"
        );
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        self.demands.push(demands);
        self
    }

    /// Finishes the network.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoStations`] for an empty network,
    /// [`NetworkError::InvalidDemand`] for negative or non-finite demands,
    /// and [`NetworkError::InvalidDemand`] (on a zero value) for a
    /// multiserver station declared with zero servers.
    pub fn build(self) -> Result<Network, NetworkError> {
        if self.kinds.is_empty() {
            return Err(NetworkError::NoStations);
        }
        for (k, row) in self.demands.iter().enumerate() {
            if let StationKind::MultiServer { servers: 0 } = self.kinds[k] {
                return Err(NetworkError::InvalidDemand {
                    station: self.names[k].clone(),
                    class: 0,
                    value: 0.0,
                });
            }
            for (c, &d) in row.iter().enumerate() {
                if !d.is_finite() || d < 0.0 {
                    return Err(NetworkError::InvalidDemand {
                        station: self.names[k].clone(),
                        class: c,
                        value: d,
                    });
                }
            }
        }
        Ok(Network {
            names: self.names,
            kinds: self.kinds,
            demands: self.demands,
            classes: self.classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_exposes_fields() {
        let net = Network::builder(2)
            .station("cpu", StationKind::Queueing, [1.0, 2.0])
            .station("term", StationKind::Delay, [10.0, 10.0])
            .build()
            .unwrap();
        assert_eq!(net.num_stations(), 2);
        assert_eq!(net.num_classes(), 2);
        assert_eq!(net.kind(0), StationKind::Queueing);
        assert_eq!(net.kind(1), StationKind::Delay);
        assert_eq!(net.name(1), "term");
        assert_eq!(net.demand(0, 1), 2.0);
        assert_eq!(net.total_demand(0), 11.0);
    }

    #[test]
    fn empty_network_is_error() {
        assert!(matches!(
            Network::builder(1).build(),
            Err(NetworkError::NoStations)
        ));
    }

    #[test]
    fn negative_demand_is_error() {
        let err = Network::builder(1)
            .station("bad", StationKind::Queueing, [-1.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::InvalidDemand { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn nan_demand_is_error() {
        let err = Network::builder(1)
            .station("bad", StationKind::Queueing, [f64::NAN])
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::InvalidDemand { .. }));
    }

    #[test]
    #[should_panic(expected = "one demand per class")]
    fn wrong_demand_arity_panics() {
        let _ = Network::builder(2).station("cpu", StationKind::Queueing, [1.0]);
    }
}
