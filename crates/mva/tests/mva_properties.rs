//! Property tests of the exact MVA solver: conservation laws, Little's law,
//! monotonicity, and symmetry across randomized networks, driven by the
//! deterministic [`dqa_sim::testkit`] case runner.

use dqa_mva::allocation::{analyze_arrival, paper_cpu_ratios, LoadMatrix, StudyCache, StudyConfig};
use dqa_mva::search::optimal_waiting_site;
use dqa_mva::{approx_solve, solve, Network, SolvedLattice, StationKind};
use dqa_sim::testkit::{cases, Gen};

/// A random 2-class network with 1-4 queueing stations and optionally a
/// delay station.
fn arb_network(g: &mut Gen) -> Network {
    let stations = g.vec_with(1..5, |g| (g.f64_in(0.01..5.0), g.f64_in(0.01..5.0)));
    let delay = if g.bool(0.5) {
        Some((g.f64_in(0.1..50.0), g.f64_in(0.1..50.0)))
    } else {
        None
    };
    let mut b = Network::builder(2);
    for (k, (d0, d1)) in stations.into_iter().enumerate() {
        b = b.station(&format!("q{k}"), StationKind::Queueing, [d0, d1]);
    }
    if let Some((z0, z1)) = delay {
        b = b.station("think", StationKind::Delay, [z0, z1]);
    }
    b.build().expect("valid random network")
}

/// Mean queue lengths over all stations sum to the population.
#[test]
fn queue_lengths_sum_to_population() {
    cases(200, 0x3A_01, |g| {
        let net = arb_network(g);
        let n0 = g.u32_in(0..6);
        let n1 = g.u32_in(0..6);
        let sol = solve(&net, &[n0, n1]);
        let total: f64 = (0..net.num_stations())
            .map(|k| sol.total_queue_length(k))
            .sum();
        let pop = f64::from(n0 + n1);
        assert!(
            (total - pop).abs() < 1e-6 * (1.0 + pop),
            "case {}: queues sum to {} != population {}",
            g.case(),
            total,
            pop
        );
    });
}

/// Little's law holds per class and station: Q_kc = X_c * R_kc.
#[test]
fn littles_law_per_station() {
    cases(200, 0x3A_02, |g| {
        let net = arb_network(g);
        let n0 = g.u32_in(1..5);
        let n1 = g.u32_in(1..5);
        let sol = solve(&net, &[n0, n1]);
        for k in 0..net.num_stations() {
            for c in 0..2 {
                let expected = sol.throughput(c) * sol.residence(k, c);
                assert!(
                    (sol.queue_length(k, c) - expected).abs() < 1e-9,
                    "case {}: Little's law broken at station {} class {}",
                    g.case(),
                    k,
                    c
                );
            }
        }
    });
}

/// Cycle time never decreases when a customer is added to either class
/// (more contention can only slow you down).
#[test]
fn residence_monotone_in_population() {
    cases(150, 0x3A_03, |g| {
        let net = arb_network(g);
        let n0 = g.u32_in(1..5);
        let n1 = g.u32_in(1..5);
        let base = solve(&net, &[n0, n1]);
        let more0 = solve(&net, &[n0 + 1, n1]);
        let more1 = solve(&net, &[n0, n1 + 1]);
        for c in 0..2 {
            assert!(more0.cycle_time(c) >= base.cycle_time(c) - 1e-9);
            assert!(more1.cycle_time(c) >= base.cycle_time(c) - 1e-9);
        }
    });
}

/// Throughputs are positive for populated classes and bounded by the
/// bottleneck station: X_c <= 1 / max_k D_kc.
#[test]
fn throughput_bounded_by_bottleneck() {
    cases(200, 0x3A_04, |g| {
        let net = arb_network(g);
        let n0 = g.u32_in(1..6);
        let n1 = g.u32_in(0..6);
        let sol = solve(&net, &[n0, n1]);
        for (c, &n) in [n0, n1].iter().enumerate() {
            if n == 0 {
                assert_eq!(sol.throughput(c), 0.0);
                continue;
            }
            assert!(sol.throughput(c) > 0.0);
            // The utilization-law bound X <= 1/D applies to single-server
            // (queueing) stations only; delay stations serve in parallel.
            let bottleneck = (0..net.num_stations())
                .filter(|&k| net.kind(k) == StationKind::Queueing)
                .map(|k| net.demand(k, c))
                .fold(0.0f64, f64::max);
            if bottleneck > 0.0 {
                assert!(sol.throughput(c) <= 1.0 / bottleneck + 1e-9);
            }
        }
    });
}

/// With identical demands and populations, the two classes are
/// exchangeable.
#[test]
fn symmetric_classes_are_exchangeable() {
    cases(200, 0x3A_05, |g| {
        let demands = g.vec_f64(0.01..5.0, 1..5);
        let n = g.u32_in(1..5);
        let mut b = Network::builder(2);
        for (k, &d) in demands.iter().enumerate() {
            b = b.station(&format!("q{k}"), StationKind::Queueing, [d, d]);
        }
        let net = b.build().unwrap();
        let sol = solve(&net, &[n, n]);
        assert!((sol.throughput(0) - sol.throughput(1)).abs() < 1e-9);
        for k in 0..net.num_stations() {
            assert!((sol.residence(k, 0) - sol.residence(k, 1)).abs() < 1e-9);
        }
    });
}

/// The allocation study's improvement factors always land in [0, 1], the
/// optimum is never worse than BNQ, and both sides are finite.
#[test]
fn improvement_factors_well_formed() {
    cases(200, 0x3A_06, |g| {
        let counts: Vec<u32> = (0..8).map(|_| g.u32_in(0..4)).collect();
        let cpu_io = g.f64_in(0.01..0.49);
        let cpu_cpu = g.f64_in(0.5..3.0);
        let class = g.usize_in(0..2);
        let load = LoadMatrix::new([
            [counts[0], counts[1], counts[2], counts[3]],
            [counts[4], counts[5], counts[6], counts[7]],
        ]);
        let cfg = StudyConfig::new(cpu_io, cpu_cpu);
        let a = analyze_arrival(&cfg, &load, class);
        assert!(a.waiting_bnq.is_finite() && a.waiting_opt.is_finite());
        assert!(a.waiting_opt <= a.waiting_bnq + 1e-9);
        assert!(a.fairness_opt <= a.fairness_bnq + 1e-9);
        assert!((0.0..=1.0).contains(&a.wif()));
        assert!((0.0..=1.0).contains(&a.fif()));
        assert!(!a.bnq_candidates.is_empty());
        assert!(a.opt_site < LoadMatrix::SITES);
    });
}

/// A one-server multiserver station is exactly a load-independent queueing
/// station.
#[test]
fn single_server_multiserver_equivalence() {
    cases(150, 0x3A_07, |g| {
        let demands = g.vec_with(1..4, |g| (g.f64_in(0.01..5.0), g.f64_in(0.01..5.0)));
        let n0 = g.u32_in(0..4);
        let n1 = g.u32_in(0..4);
        let build = |first_kind: StationKind| {
            let mut b = Network::builder(2);
            for (k, &(d0, d1)) in demands.iter().enumerate() {
                let kind = if k == 0 {
                    first_kind
                } else {
                    StationKind::Queueing
                };
                b = b.station(&format!("q{k}"), kind, [d0, d1]);
            }
            b.build().unwrap()
        };
        let plain = solve(&build(StationKind::Queueing), &[n0, n1]);
        let ms = solve(&build(StationKind::MultiServer { servers: 1 }), &[n0, n1]);
        for c in 0..2 {
            assert!((plain.throughput(c) - ms.throughput(c)).abs() < 1e-9);
            for k in 0..demands.len() {
                assert!((plain.residence(k, c) - ms.residence(k, c)).abs() < 1e-9);
            }
        }
    });
}

/// More servers never increase residence, and infinitely many (>=
/// population) pin it at the bare demand.
#[test]
fn multiserver_residence_monotone_in_servers() {
    cases(150, 0x3A_08, |g| {
        let d = g.f64_in(0.1..5.0);
        let e = g.f64_in(0.1..5.0);
        let n = g.u32_in(1..6);
        let solve_with = |servers: u32| {
            let net = Network::builder(1)
                .station("ms", StationKind::MultiServer { servers }, [d])
                .station("q", StationKind::Queueing, [e])
                .build()
                .unwrap();
            solve(&net, &[n]).residence(0, 0)
        };
        let mut prev = f64::INFINITY;
        for m in 1..=n {
            let r = solve_with(m);
            assert!(
                r <= prev + 1e-9,
                "case {}: residence rose with servers: {} -> {}",
                g.case(),
                prev,
                r
            );
            prev = r;
        }
        let ample = solve_with(n);
        assert!(
            (ample - d).abs() < 1e-9,
            "case {}: ample servers should yield bare demand",
            g.case()
        );
    });
}

/// One [`SolvedLattice`] recursion agrees **bit-for-bit** with an
/// independent [`solve`] at every sub-population — the identity every
/// cache and sweep in the analytic fast path rests on.
#[test]
fn solved_lattice_matches_direct_solve_everywhere() {
    cases(60, 0x3A_0A, |g| {
        let net = arb_network(g);
        let n0 = g.u32_in(0..5);
        let n1 = g.u32_in(0..5);
        let lat = SolvedLattice::new(&net, &[n0, n1]);
        for m0 in 0..=n0 {
            for m1 in 0..=n1 {
                let pop = [m0, m1];
                let direct = solve(&net, &pop);
                let view = lat.solution(&pop);
                for c in 0..2 {
                    assert_eq!(
                        view.throughput(c).to_bits(),
                        direct.throughput(c).to_bits(),
                        "case {}: throughput diverged at {pop:?}",
                        g.case()
                    );
                    assert_eq!(
                        lat.waiting_per_cycle(&pop, c).to_bits(),
                        direct.waiting_per_cycle(c).to_bits(),
                        "case {}: waiting diverged at {pop:?}",
                        g.case()
                    );
                    for k in 0..net.num_stations() {
                        assert_eq!(
                            view.residence(k, c).to_bits(),
                            direct.residence(k, c).to_bits(),
                            "case {}: residence diverged at {pop:?} station {k}",
                            g.case()
                        );
                        assert_eq!(
                            view.queue_length(k, c).to_bits(),
                            direct.queue_length(k, c).to_bits(),
                            "case {}: queue diverged at {pop:?} station {k}",
                            g.case()
                        );
                    }
                }
            }
        }
    });
}

/// The Schweitzer approximation tracks exact MVA on the paper's 2-class
/// site networks: across all six CPU-ratio pairs and populations up to
/// (5, 5), approximate waiting per cycle stays within a bounded fraction
/// of the exact class cycle time, and throughput within the same relative
/// tolerance. This pins the screening quality the pruned allocation
/// search relies on (it never relies on it for *correctness* — exact MVA
/// confirms every surviving candidate).
#[test]
fn approx_solve_tracks_exact_on_site_networks() {
    // Schweitzer is least accurate at the small populations of this very
    // sweep (the error *shrinks* as N grows); the measured worst case here
    // is ~0.117, at the most CPU-skewed ratio. 0.15 bounds it with margin
    // while still failing on any real regression of the fixed point.
    const TOL: f64 = 0.15;
    let mut max_err = 0.0f64;
    for (c1, c2) in paper_cpu_ratios() {
        let net = StudyConfig::new(c1, c2).site_network();
        for n0 in 0..=5u32 {
            for n1 in 0..=5u32 {
                let pop = [n0, n1];
                let exact = solve(&net, &pop);
                let approx = approx_solve(&net, &pop);
                for (c, &n) in pop.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let thr_err =
                        (approx.throughput(c) - exact.throughput(c)).abs() / exact.throughput(c);
                    // Waiting can be exactly zero (lone customer), so
                    // normalize by the cycle time instead.
                    let wait_err = (approx.waiting_per_cycle(c) - exact.waiting_per_cycle(c)).abs()
                        / exact.cycle_time(c);
                    max_err = max_err.max(thr_err).max(wait_err);
                }
            }
        }
    }
    assert!(
        max_err < TOL,
        "Schweitzer error exceeded tolerance: max relative error {max_err:.6}"
    );
}

/// The bounds-pruned allocation search returns the identical optimal site
/// and bitwise-identical waiting as exhaustive evaluation, on random loads
/// and configurations, and accounts for every candidate site exactly once.
#[test]
fn pruned_search_matches_exhaustive_argmin() {
    cases(150, 0x3A_0B, |g| {
        let counts: Vec<u32> = (0..8).map(|_| g.u32_in(0..4)).collect();
        let cpu_io = g.f64_in(0.01..0.49);
        let cpu_cpu = g.f64_in(0.5..3.0);
        let class = g.usize_in(0..2);
        let load = LoadMatrix::new([
            [counts[0], counts[1], counts[2], counts[3]],
            [counts[4], counts[5], counts[6], counts[7]],
        ]);
        let cache = StudyCache::new(StudyConfig::new(cpu_io, cpu_cpu));
        let exhaustive = cache.analyze_arrival(&load, class);
        let outcome = optimal_waiting_site(&cache, &load, class);
        assert_eq!(
            outcome.site,
            exhaustive.opt_site,
            "case {}: pruned search picked a different site",
            g.case()
        );
        assert_eq!(
            outcome.waiting.to_bits(),
            exhaustive.waiting_opt.to_bits(),
            "case {}: pruned search waiting diverged",
            g.case()
        );
        assert_eq!(
            outcome.exact_evaluated + outcome.pruned,
            LoadMatrix::SITES,
            "case {}: candidate accounting broken",
            g.case()
        );
    });
}

/// A completely empty system: any arrival waits zero everywhere, so both
/// factors are exactly zero.
#[test]
fn empty_system_has_no_improvement() {
    cases(100, 0x3A_09, |g| {
        let cpu_io = g.f64_in(0.01..0.49);
        let cpu_cpu = g.f64_in(0.5..3.0);
        let class = g.usize_in(0..2);
        let cfg = StudyConfig::new(cpu_io, cpu_cpu);
        let load = LoadMatrix::new([[0, 0, 0, 0], [0, 0, 0, 0]]);
        let a = analyze_arrival(&cfg, &load, class);
        assert!(a.waiting_bnq.abs() < 1e-12);
        assert_eq!(a.wif(), 0.0);
        assert_eq!(a.fif(), 0.0);
    });
}
