//! Property-based tests of the exact MVA solver: conservation laws,
//! Little's law, monotonicity, and symmetry across random networks.

use dqa_mva::allocation::{analyze_arrival, LoadMatrix, StudyConfig};
use dqa_mva::{solve, Network, StationKind};
use proptest::prelude::*;

/// A random 2-class network with 1-4 queueing stations and optionally a
/// delay station.
fn arb_network() -> impl Strategy<Value = Network> {
    (
        prop::collection::vec((0.01f64..5.0, 0.01f64..5.0), 1..5),
        prop::option::of((0.1f64..50.0, 0.1f64..50.0)),
    )
        .prop_map(|(stations, delay)| {
            let mut b = Network::builder(2);
            for (k, (d0, d1)) in stations.into_iter().enumerate() {
                b = b.station(&format!("q{k}"), StationKind::Queueing, [d0, d1]);
            }
            if let Some((z0, z1)) = delay {
                b = b.station("think", StationKind::Delay, [z0, z1]);
            }
            b.build().expect("valid random network")
        })
}

proptest! {
    /// Mean queue lengths over all stations sum to the population.
    #[test]
    fn queue_lengths_sum_to_population(
        net in arb_network(),
        n0 in 0u32..6,
        n1 in 0u32..6,
    ) {
        let sol = solve(&net, &[n0, n1]);
        let total: f64 = (0..net.num_stations()).map(|k| sol.total_queue_length(k)).sum();
        let pop = f64::from(n0 + n1);
        prop_assert!((total - pop).abs() < 1e-6 * (1.0 + pop),
            "queues sum to {} != population {}", total, pop);
    }

    /// Little's law holds per class and station:
    /// Q_kc = X_c * R_kc.
    #[test]
    fn littles_law_per_station(net in arb_network(), n0 in 1u32..5, n1 in 1u32..5) {
        let sol = solve(&net, &[n0, n1]);
        for k in 0..net.num_stations() {
            for c in 0..2 {
                let expected = sol.throughput(c) * sol.residence(k, c);
                prop_assert!((sol.queue_length(k, c) - expected).abs() < 1e-9,
                    "Little's law broken at station {} class {}", k, c);
            }
        }
    }

    /// Cycle time never decreases when a customer is added to either
    /// class (more contention can only slow you down).
    #[test]
    fn residence_monotone_in_population(net in arb_network(), n0 in 1u32..5, n1 in 1u32..5) {
        let base = solve(&net, &[n0, n1]);
        let more0 = solve(&net, &[n0 + 1, n1]);
        let more1 = solve(&net, &[n0, n1 + 1]);
        for c in 0..2 {
            prop_assert!(more0.cycle_time(c) >= base.cycle_time(c) - 1e-9);
            prop_assert!(more1.cycle_time(c) >= base.cycle_time(c) - 1e-9);
        }
    }

    /// Throughputs are positive for populated classes and bounded by the
    /// bottleneck station: X_c <= 1 / max_k D_kc.
    #[test]
    fn throughput_bounded_by_bottleneck(net in arb_network(), n0 in 1u32..6, n1 in 0u32..6) {
        let sol = solve(&net, &[n0, n1]);
        for (c, &n) in [n0, n1].iter().enumerate() {
            if n == 0 {
                prop_assert_eq!(sol.throughput(c), 0.0);
                continue;
            }
            prop_assert!(sol.throughput(c) > 0.0);
            // The utilization-law bound X <= 1/D applies to single-server
            // (queueing) stations only; delay stations serve in parallel.
            let bottleneck = (0..net.num_stations())
                .filter(|&k| net.kind(k) == StationKind::Queueing)
                .map(|k| net.demand(k, c))
                .fold(0.0f64, f64::max);
            if bottleneck > 0.0 {
                prop_assert!(sol.throughput(c) <= 1.0 / bottleneck + 1e-9);
            }
        }
    }

    /// With identical demands and populations, the two classes are
    /// exchangeable.
    #[test]
    fn symmetric_classes_are_exchangeable(
        demands in prop::collection::vec(0.01f64..5.0, 1..5),
        n in 1u32..5,
    ) {
        let mut b = Network::builder(2);
        for (k, &d) in demands.iter().enumerate() {
            b = b.station(&format!("q{k}"), StationKind::Queueing, [d, d]);
        }
        let net = b.build().unwrap();
        let sol = solve(&net, &[n, n]);
        prop_assert!((sol.throughput(0) - sol.throughput(1)).abs() < 1e-9);
        for k in 0..net.num_stations() {
            prop_assert!((sol.residence(k, 0) - sol.residence(k, 1)).abs() < 1e-9);
        }
    }

    /// The allocation study's improvement factors always land in [0, 1],
    /// the optimum is never worse than BNQ, and both sides are finite.
    #[test]
    fn improvement_factors_well_formed(
        counts in prop::collection::vec(0u32..4, 8),
        cpu_io in 0.01f64..0.49,
        cpu_cpu in 0.5f64..3.0,
        class in 0usize..2,
    ) {
        let load = LoadMatrix::new([
            [counts[0], counts[1], counts[2], counts[3]],
            [counts[4], counts[5], counts[6], counts[7]],
        ]);
        let cfg = StudyConfig::new(cpu_io, cpu_cpu);
        let a = analyze_arrival(&cfg, &load, class);
        prop_assert!(a.waiting_bnq.is_finite() && a.waiting_opt.is_finite());
        prop_assert!(a.waiting_opt <= a.waiting_bnq + 1e-9);
        prop_assert!(a.fairness_opt <= a.fairness_bnq + 1e-9);
        prop_assert!((0.0..=1.0).contains(&a.wif()));
        prop_assert!((0.0..=1.0).contains(&a.fif()));
        prop_assert!(!a.bnq_candidates.is_empty());
        prop_assert!(a.opt_site < LoadMatrix::SITES);
    }

    /// A one-server multiserver station is exactly a load-independent
    /// queueing station.
    #[test]
    fn single_server_multiserver_equivalence(
        demands in prop::collection::vec((0.01f64..5.0, 0.01f64..5.0), 1..4),
        n0 in 0u32..4,
        n1 in 0u32..4,
    ) {
        let build = |first_kind: StationKind| {
            let mut b = Network::builder(2);
            for (k, &(d0, d1)) in demands.iter().enumerate() {
                let kind = if k == 0 { first_kind } else { StationKind::Queueing };
                b = b.station(&format!("q{k}"), kind, [d0, d1]);
            }
            b.build().unwrap()
        };
        let plain = solve(&build(StationKind::Queueing), &[n0, n1]);
        let ms = solve(&build(StationKind::MultiServer { servers: 1 }), &[n0, n1]);
        for c in 0..2 {
            prop_assert!((plain.throughput(c) - ms.throughput(c)).abs() < 1e-9);
            for k in 0..demands.len() {
                prop_assert!((plain.residence(k, c) - ms.residence(k, c)).abs() < 1e-9);
            }
        }
    }

    /// More servers never increase residence, and infinitely many (>=
    /// population) pin it at the bare demand.
    #[test]
    fn multiserver_residence_monotone_in_servers(
        d in 0.1f64..5.0,
        e in 0.1f64..5.0,
        n in 1u32..6,
    ) {
        let solve_with = |servers: u32| {
            let net = Network::builder(1)
                .station("ms", StationKind::MultiServer { servers }, [d])
                .station("q", StationKind::Queueing, [e])
                .build()
                .unwrap();
            solve(&net, &[n]).residence(0, 0)
        };
        let mut prev = f64::INFINITY;
        for m in 1..=n {
            let r = solve_with(m);
            prop_assert!(r <= prev + 1e-9, "residence rose with servers: {} -> {}", prev, r);
            prev = r;
        }
        let ample = solve_with(n);
        prop_assert!((ample - d).abs() < 1e-9, "ample servers should yield bare demand");
    }

    /// A completely empty system: any arrival waits zero everywhere, so
    /// both factors are exactly zero.
    #[test]
    fn empty_system_has_no_improvement(
        cpu_io in 0.01f64..0.49,
        cpu_cpu in 0.5f64..3.0,
        class in 0usize..2,
    ) {
        let cfg = StudyConfig::new(cpu_io, cpu_cpu);
        let load = LoadMatrix::new([[0, 0, 0, 0], [0, 0, 0, 0]]);
        let a = analyze_arrival(&cfg, &load, class);
        prop_assert!(a.waiting_bnq.abs() < 1e-12);
        prop_assert_eq!(a.wif(), 0.0);
        prop_assert_eq!(a.fif(), 0.0);
    }
}
