//! Seeded, splittable random-number streams and service-time distributions.
//!
//! Every stochastic element of the simulation (each site's think times, CPU
//! bursts, disk accesses, class coin-flips, ...) draws from its own
//! [`RngStream`], derived deterministically from a root seed and a stream
//! tag. Dedicated streams are a standard variance-reduction and
//! reproducibility technique: changing one model component does not perturb
//! the random inputs of the others.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) seeded
//! through a SplitMix64 expansion, so the crate builds with no external
//! dependencies and produces identical sequences on every platform.

/// A deterministic random-number stream.
///
/// Streams are created from a root seed ([`RngStream::new`]) and split into
/// independent child streams with [`RngStream::substream`]. Two streams
/// derived with different tags behave as statistically independent sources,
/// while the whole tree is reproducible from the root seed.
///
/// # Example
///
/// ```
/// use dqa_sim::random::RngStream;
///
/// let root = RngStream::new(42);
/// let mut a = root.substream(1);
/// let mut b = root.substream(2);
/// // Independent streams produce different sequences...
/// assert_ne!(a.next_u64(), b.next_u64());
/// // ...but the same (seed, tag) always produces the same sequence.
/// let mut a2 = RngStream::new(42).substream(1);
/// assert_eq!(RngStream::new(42).substream(1).next_u64(), a2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    seed: u64,
    state: [u64; 4],
}

/// SplitMix64 finalizer; mixes a seed and a tag into a well-distributed
/// child seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Expands one 64-bit seed into a full xoshiro256++ state with SplitMix64,
/// the seeding procedure recommended by the generator's authors.
fn expand_seed(seed: u64) -> [u64; 4] {
    let mut x = seed;
    let mut state = [0u64; 4];
    for word in &mut state {
        x = splitmix64(x);
        *word = x;
    }
    // xoshiro256++ must not start from the all-zero state; SplitMix64 never
    // maps distinct inputs onto four consecutive zeros, but guard anyway.
    if state == [0; 4] {
        state = [0x9E37_79B9_7F4A_7C15; 4];
    }
    state
}

impl RngStream {
    /// Creates the root stream for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RngStream {
            seed,
            state: expand_seed(splitmix64(seed)),
        }
    }

    /// Derives an independent child stream identified by `tag`.
    ///
    /// Children of the same parent with distinct tags are independent;
    /// the derivation is pure, so it may be called repeatedly.
    #[must_use]
    pub fn substream(&self, tag: u64) -> RngStream {
        let child_seed =
            splitmix64(self.seed ^ splitmix64(tag.wrapping_add(0xA5A5_5A5A_1234_5678)));
        RngStream::new(child_seed)
    }

    /// Returns the next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform variate in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // 1 - U is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Returns a uniform variate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's unbiased bounded-integer method: widen-multiply and
        // reject the few values that would skew the low residue classes.
        let range = n as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(range);
        let mut low = m as u64;
        if low < range {
            let threshold = range.wrapping_neg() % range;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(range);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }
}

/// A service-time (or think-time) distribution.
///
/// The variants cover everything the paper's model needs: constant message
/// times, exponential CPU bursts / think times / read counts, and the
/// uniform `disk_time ± disk_time_dev` disk-access times.
///
/// # Example
///
/// ```
/// use dqa_sim::random::{Dist, RngStream};
///
/// let mut rng = RngStream::new(7);
/// let disk = Dist::uniform_deviation(1.0, 0.2); // 1.0 +/- 20%
/// let x = disk.sample(&mut rng);
/// assert!((0.8..1.2).contains(&x));
/// assert_eq!(disk.mean(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl Dist {
    /// Constant distribution at `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite.
    #[must_use]
    pub fn constant(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "invalid constant {v}");
        Dist::Constant(v)
    }

    /// Exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    #[must_use]
    pub fn exponential(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "invalid exponential mean {mean}"
        );
        Dist::Exponential { mean }
    }

    /// Uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or extends below zero.
    #[must_use]
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        Dist::Uniform { lo, hi }
    }

    /// Uniform distribution on `mean ± mean * dev_frac`, the paper's
    /// `disk_time ± disk_time_dev` form.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `dev_frac` is outside `[0, 1]`.
    #[must_use]
    pub fn uniform_deviation(mean: f64, dev_frac: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        assert!(
            (0.0..=1.0).contains(&dev_frac),
            "deviation fraction out of range: {dev_frac}"
        );
        Dist::uniform(mean * (1.0 - dev_frac), mean * (1.0 + dev_frac))
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut RngStream) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Exponential { mean } => rng.exponential(mean),
            Dist::Uniform { lo, hi } => rng.uniform(lo, hi),
        }
    }

    /// The distribution's mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Exponential { mean } => mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
        }
    }

    /// Draws a positive integer count: samples the continuous distribution,
    /// rounds to the nearest integer, and clamps to at least one.
    ///
    /// The paper draws each query's number of reads from an exponential with
    /// mean `num_reads`; a query always performs at least one read.
    pub fn sample_count(&self, rng: &mut RngStream) -> u32 {
        let x = self.sample(rng);
        (x.round().max(1.0)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::new(123);
        let mut b = RngStream::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_differ_by_tag() {
        let root = RngStream::new(1);
        let mut s1 = root.substream(1);
        let mut s2 = root.substream(2);
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn substream_derivation_is_pure() {
        let root = RngStream::new(9);
        let mut a = root.substream(5);
        let mut b = root.substream(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = RngStream::new(2024);
        let m = mean_of(200_000, || rng.exponential(3.0));
        assert!((m - 3.0).abs() < 0.05, "sample mean {m} too far from 3.0");
    }

    #[test]
    fn uniform_stays_in_range_and_centered() {
        let mut rng = RngStream::new(77);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        let m = mean_of(100_000, || {
            let x = rng.uniform(0.8, 1.2);
            min = min.min(x);
            max = max.max(x);
            x
        });
        assert!(min >= 0.8 && max < 1.2);
        assert!((m - 1.0).abs() < 0.01);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = RngStream::new(5);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn below_covers_all_values() {
        let mut rng = RngStream::new(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.below(6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dist_means() {
        assert_eq!(Dist::constant(2.0).mean(), 2.0);
        assert_eq!(Dist::exponential(5.0).mean(), 5.0);
        assert_eq!(Dist::uniform(1.0, 3.0).mean(), 2.0);
        assert_eq!(Dist::uniform_deviation(1.0, 0.2).mean(), 1.0);
    }

    #[test]
    fn sample_count_is_at_least_one() {
        let mut rng = RngStream::new(3);
        let d = Dist::exponential(0.2); // most draws round to 0 without the clamp
        for _ in 0..1_000 {
            assert!(d.sample_count(&mut rng) >= 1);
        }
    }

    #[test]
    fn sample_count_mean_tracks_distribution() {
        let mut rng = RngStream::new(4);
        let d = Dist::exponential(20.0);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| d.sample_count(&mut rng) as f64).sum::<f64>() / n as f64;
        // Rounding + clamping bias is small at mean 20.
        assert!((m - 20.0).abs() < 0.5, "mean count {m}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bernoulli_rejects_bad_p() {
        RngStream::new(0).bernoulli(1.5);
    }

    #[test]
    #[should_panic(expected = "invalid exponential mean")]
    fn exponential_rejects_zero_mean() {
        let _ = Dist::exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_reversed_range() {
        let _ = Dist::uniform(2.0, 1.0);
    }
}
