//! The event loop: [`Model`], [`Scheduler`], and [`Engine`].

use crate::{EventQueue, SimTime};

/// A simulation model driven by the [`Engine`].
///
/// A model chooses an event payload type and reacts to events as the engine
/// delivers them in timestamp order. Handlers schedule follow-up events
/// through the [`Scheduler`] they are handed.
///
/// # Example
///
/// A model that rings a bell a fixed number of times, one time unit apart:
///
/// ```
/// use dqa_sim::{Engine, Model, Scheduler, SimTime};
///
/// struct Bell { remaining: u32, rings: Vec<f64> }
///
/// impl Model for Bell {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
///         self.rings.push(now.as_f64());
///         self.remaining -= 1;
///         if self.remaining > 0 {
///             sched.after(1.0, ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Bell { remaining: 3, rings: Vec::new() });
/// engine.schedule(SimTime::ZERO, ());
/// engine.run_to_completion();
/// assert_eq!(engine.model().rings, vec![0.0, 1.0, 2.0]);
/// ```
pub trait Model {
    /// The event payload delivered to [`Model::handle`].
    type Event;

    /// Reacts to one event. `now` is the event's timestamp, which the engine
    /// guarantees is monotonically non-decreasing across calls.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The scheduling interface handed to [`Model::handle`].
///
/// Wraps the future-event queue plus the current clock so handlers can
/// schedule at absolute times ([`Scheduler::at`]) or relative offsets
/// ([`Scheduler::after`]).
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock: delivering an
    /// event in the past would violate causality.
    pub fn at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        self.queue.push(time, event);
    }

    /// Schedules `event` to fire `delay` time units from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative, NaN, or infinite.
    pub fn after(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        self.queue.push(self.now + delay, event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The boxed callback installed by [`Engine::set_observer`].
type Observer<E> = Box<dyn FnMut(SimTime, &E)>;

/// Drives a [`Model`] by popping events in time order and dispatching them.
///
/// An optional *observer* ([`Engine::set_observer`]) sees every event just
/// before it is handled — the hook behind event tracing
/// ([`crate::trace::TraceLog`]), progress reporting, and debug logging,
/// without touching the model.
///
/// See the [crate-level documentation](crate) for a complete queueing
/// example.
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    steps: u64,
    observer: Option<Observer<M::Event>>,
}

impl<M: Model> std::fmt::Debug for Engine<M>
where
    M: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("model", &self.model)
            .field("now", &self.sched.now())
            .field("pending", &self.sched.pending())
            .field("steps", &self.steps)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<M: Model> Engine<M> {
    /// Creates an engine around `model` with an empty event queue and the
    /// clock at [`SimTime::ZERO`].
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            steps: 0,
            observer: None,
        }
    }

    /// Installs an observer called with every event just before it is
    /// dispatched to the model. Replaces any previous observer.
    pub fn set_observer(&mut self, observer: impl FnMut(SimTime, &M::Event) + 'static) {
        self.observer = Some(Box::new(observer));
    }

    /// Removes the observer.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Schedules an initial event from outside the model.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        self.sched.at(time, event);
    }

    /// Pops and dispatches the next event, returning its timestamp, or
    /// `None` if the event queue is empty.
    #[inline]
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, event) = self.sched.queue.pop()?;
        debug_assert!(time >= self.sched.now, "event queue returned past event");
        self.sched.now = time;
        self.steps += 1;
        if let Some(observer) = &mut self.observer {
            observer(time, &event);
        }
        self.model.handle(time, event, &mut self.sched);
        Some(time)
    }

    /// Drains and dispatches every event with timestamp `<= deadline`,
    /// returning how many were processed. The clock is left at the last
    /// dispatched event (it does **not** advance to `deadline`) — this is
    /// the reusable drain-and-dispatch core shared by the serial
    /// [`Engine::run_until`] and the sharded executor's per-window drains,
    /// which must not finalize time-weighted statistics mid-window.
    pub fn step_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.sched.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            processed += 1;
        }
        processed
    }

    /// Runs until the next pending event is strictly later than `deadline`
    /// (or the queue empties). Events *at* the deadline are processed
    /// (via [`Engine::step_until`]). The clock is advanced to `deadline`
    /// if it ends up earlier, so time-weighted statistics can be
    /// finalized consistently.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.step_until(deadline);
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
    }

    /// Runs until the event queue is empty and returns the final clock.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.step().is_some() {}
        self.sched.now
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events dispatched so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shared access to the model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (e.g. to reset statistics after
    /// warmup).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine and returns the model.
    #[must_use]
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Recorder {
        seen: Vec<(f64, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_f64(), ev));
            if ev == 1 {
                // chain: schedule two follow-ups
                sched.after(1.0, 10);
                sched.after(0.5, 11);
            }
        }
    }

    #[test]
    fn dispatches_in_time_order_with_chaining() {
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::new(2.0), 2);
        eng.schedule(SimTime::new(1.0), 1);
        let end = eng.run_to_completion();
        assert_eq!(
            eng.model().seen,
            vec![(1.0, 1), (1.5, 11), (2.0, 2), (2.0, 10)]
        );
        assert_eq!(end, SimTime::new(2.0));
        assert_eq!(eng.steps(), 4);
    }

    #[test]
    fn run_until_processes_events_at_deadline_and_advances_clock() {
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::new(1.0), 7);
        eng.schedule(SimTime::new(3.0), 8);
        eng.run_until(SimTime::new(1.0));
        assert_eq!(eng.model().seen, vec![(1.0, 7)]);
        assert_eq!(eng.now(), SimTime::new(1.0));
        eng.run_until(SimTime::new(2.5));
        // no event fired, but the clock moved forward
        assert_eq!(eng.now(), SimTime::new(2.5));
        eng.run_until(SimTime::new(10.0));
        assert_eq!(eng.model().seen.len(), 2);
        assert_eq!(eng.now(), SimTime::new(10.0));
    }

    #[test]
    fn step_until_counts_events_and_leaves_the_clock_on_the_last_one() {
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::new(1.0), 7);
        eng.schedule(SimTime::new(2.0), 8);
        eng.schedule(SimTime::new(5.0), 9);
        assert_eq!(eng.step_until(SimTime::new(3.0)), 2);
        // Unlike run_until, the clock stays at the last dispatched event.
        assert_eq!(eng.now(), SimTime::new(2.0));
        assert_eq!(eng.step_until(SimTime::new(3.0)), 0);
        assert_eq!(eng.step_until(SimTime::new(5.0)), 1);
        assert_eq!(eng.now(), SimTime::new(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                if now > SimTime::ZERO {
                    sched.at(SimTime::ZERO, ());
                }
            }
        }
        let mut eng = Engine::new(Bad);
        eng.schedule(SimTime::new(1.0), ());
        eng.run_to_completion();
    }

    #[test]
    fn into_model_returns_final_state() {
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::ZERO, 3);
        eng.run_to_completion();
        let model = eng.into_model();
        assert_eq!(model.seen, vec![(0.0, 3)]);
    }

    #[test]
    fn observer_sees_every_event_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.set_observer(move |t, &ev| sink.borrow_mut().push((t.as_f64(), ev)));
        eng.schedule(SimTime::new(2.0), 2);
        eng.schedule(SimTime::new(1.0), 1);
        eng.run_to_completion();
        // The observer saw exactly what the model handled.
        assert_eq!(*seen.borrow(), eng.model().seen);
    }

    #[test]
    fn observer_feeds_a_trace_log() {
        use crate::trace::TraceLog;
        use std::cell::RefCell;
        use std::rc::Rc;

        let log = Rc::new(RefCell::new(TraceLog::new(2)));
        let sink = Rc::clone(&log);
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.set_observer(move |t, &ev| sink.borrow_mut().record(t, ev));
        for k in 0..5 {
            eng.schedule(SimTime::new(f64::from(k)), k);
        }
        eng.run_to_completion();
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        // 5 scheduled + 2 chained by event 1, minus the 2 retained.
        assert_eq!(log.dropped(), 5);
        assert!(log.dump().contains("t=4"));
    }

    #[test]
    fn clear_observer_stops_observation() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let count = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&count);
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        eng.set_observer(move |_, _| *sink.borrow_mut() += 1);
        eng.schedule(SimTime::new(1.0), 1);
        eng.run_to_completion();
        eng.clear_observer();
        eng.schedule(SimTime::new(5.0), 2);
        eng.run_to_completion();
        // Recorder's event 1 chains two more, so 3 observed, then none.
        assert_eq!(*count.borrow(), 3);
        assert_eq!(eng.model().seen.len(), 4);
    }

    #[test]
    fn debug_format_is_informative() {
        let eng = Engine::new(Recorder { seen: Vec::new() });
        let s = format!("{eng:?}");
        assert!(s.contains("steps"));
        assert!(s.contains("observer"));
    }

    #[test]
    fn empty_engine_step_returns_none() {
        let mut eng = Engine::new(Recorder { seen: Vec::new() });
        assert!(eng.step().is_none());
        assert_eq!(eng.now(), SimTime::ZERO);
    }
}
