//! Deterministic property-testing helpers.
//!
//! The workspace checks algebraic properties (conservation laws, ordering
//! guarantees, merge identities) over many randomized inputs. Instead of an
//! external property-testing framework, these helpers drive the checks from
//! the crate's own [`RngStream`], so the suite is fully offline, every
//! failure is reproducible from the printed case seed, and no shrinking
//! machinery or regression files are needed.
//!
//! # Example
//!
//! ```
//! use dqa_sim::testkit::{cases, Gen};
//!
//! cases(100, 0xC0FFEE, |g: &mut Gen| {
//!     let xs = g.vec_f64(0.0..10.0, 1..20);
//!     let sum: f64 = xs.iter().sum();
//!     assert!(sum >= 0.0, "case {}: negative sum {sum}", g.case());
//! });
//! ```

use crate::random::RngStream;
use std::ops::Range;

/// A per-case generator of randomized test inputs.
///
/// Wraps an [`RngStream`] substream derived from the suite seed and the case
/// index, so each case is independent and individually reproducible.
pub struct Gen {
    rng: RngStream,
    case: u64,
}

impl Gen {
    /// The zero-based index of the current case (for failure messages).
    #[must_use]
    pub fn case(&self) -> u64 {
        self.case
    }

    /// A uniform `f64` in `range`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        self.rng.uniform(range.start, range.end)
    }

    /// A uniform `usize` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.rng.below(range.end - range.start)
    }

    /// A uniform `u32` in `range`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.usize_in(range.start as usize..range.end as usize) as u32
    }

    /// A uniform `u64` in `range`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        self.usize_in(range.start as usize..range.end as usize) as u64
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.bernoulli(p)
    }

    /// One element of `items`, by value.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.rng.below(items.len())]
    }

    /// A vector of uniform `f64` values with a random length in `len`.
    pub fn vec_f64(&mut self, range: Range<f64>, len: Range<usize>) -> Vec<f64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.f64_in(range.clone())).collect()
    }

    /// A vector built by calling `f` a random number of times.
    pub fn vec_with<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Direct access to the underlying stream for anything bespoke.
    pub fn rng(&mut self) -> &mut RngStream {
        &mut self.rng
    }
}

/// Runs `body` for `n` randomized cases derived from `seed`.
///
/// Each case gets its own [`Gen`]; assertion failures inside the body should
/// include [`Gen::case`] so the failing case can be re-run in isolation.
pub fn cases(n: u64, seed: u64, mut body: impl FnMut(&mut Gen)) {
    let root = RngStream::new(seed);
    for case in 0..n {
        let mut g = Gen {
            rng: root.substream(case),
            case,
        };
        body(&mut g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_runs_the_requested_count() {
        let mut count = 0;
        cases(25, 1, |_| count += 1);
        assert_eq!(count, 25);
    }

    #[test]
    fn cases_are_reproducible_and_distinct() {
        let mut first = Vec::new();
        cases(10, 9, |g| first.push(g.f64_in(0.0..1.0)));
        let mut second = Vec::new();
        cases(10, 9, |g| second.push(g.f64_in(0.0..1.0)));
        assert_eq!(first, second);
        let mut dedup = first.clone();
        dedup.sort_by(f64::total_cmp);
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "cases should differ");
    }

    #[test]
    fn generators_respect_ranges() {
        cases(200, 7, |g| {
            let x = g.f64_in(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let k = g.usize_in(1..5);
            assert!((1..5).contains(&k));
            let v = g.vec_f64(0.0..1.0, 2..6);
            assert!(v.len() >= 2 && v.len() < 6);
            let c = g.pick(&[10, 20, 30]);
            assert!([10, 20, 30].contains(&c));
        });
    }
}
