//! The simulation clock value.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation clock.
///
/// `SimTime` wraps an `f64` number of simulation time units (the distributed
/// database model measures everything in mean disk-access times). It differs
/// from a bare `f64` in two ways that matter for a simulation kernel:
///
/// * it is **totally ordered** — constructing a `SimTime` from a NaN panics,
///   so `Ord`/`Eq` are safe to implement and event queues can rely on them;
/// * it is **non-negative** — simulated time starts at [`SimTime::ZERO`] and
///   only moves forward.
///
/// # Example
///
/// ```
/// use dqa_sim::SimTime;
///
/// let t = SimTime::new(2.5) + 1.5;
/// assert_eq!(t, SimTime::new(4.0));
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::new(1.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimTime(TotalF64);

/// Private total-order wrapper; invariant: the value is finite and >= 0.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Invariant: never NaN, so total_cmp agrees with partial_cmp.
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for TotalF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(TotalF64(0.0));

    /// Creates a simulation time from a number of time units.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, infinite, or negative; those values would break
    /// the total ordering that the event queue depends on.
    #[must_use]
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "SimTime must be finite, got {t}");
        assert!(t >= 0.0, "SimTime must be non-negative, got {t}");
        SimTime(TotalF64(t))
    }

    /// Returns the clock value as a plain `f64` number of time units.
    #[must_use]
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 .0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0 .0)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.as_f64()
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// Advances the clock by `rhs` time units.
    ///
    /// # Panics
    ///
    /// Panics if the result would be NaN, infinite, or negative.
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.as_f64() + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;

    /// Returns the (possibly negative) span `self - rhs` in time units.
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.as_f64() - rhs.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_f64(), 0.0);
    }

    #[test]
    fn ordering_matches_f64() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(10.0);
        assert_eq!((t + 5.0).as_f64(), 15.0);
        assert_eq!(t - SimTime::new(4.0), 6.0);
        let mut u = t;
        u += 2.0;
        assert_eq!(u, SimTime::new(12.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::new(1.5)).is_empty());
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = SimTime::new(f64::INFINITY);
    }

    #[test]
    fn conversion_into_f64() {
        let x: f64 = SimTime::new(3.25).into();
        assert_eq!(x, 3.25);
    }
}
