//! # dqa-sim — a discrete-event simulation kernel
//!
//! This crate is the substrate on which the distributed-database simulator of
//! [`dqa-core`] runs. The original paper implemented its model in the DISS
//! simulation language on an IBM 4341; DISS is long gone, so this crate
//! provides the equivalent facilities as a small, self-contained,
//! deterministic discrete-event simulation (DES) kernel:
//!
//! * [`SimTime`] — the simulation clock value (a validated, totally ordered
//!   wrapper around `f64`).
//! * [`EventQueue`] — a stable priority queue of timestamped events: events
//!   with equal timestamps are delivered in the order they were scheduled.
//! * [`Engine`] / [`Model`] / [`Scheduler`] — the event loop. A model defines
//!   an event payload type and a `handle` method; the engine pops events in
//!   time order and dispatches them, letting the handler schedule more.
//! * [`random`] — seeded, splittable random-number streams and the service
//!   time distributions used by the paper (exponential, uniform ± deviation,
//!   constant).
//! * [`stats`] — observation statistics (Welford tallies), time-weighted
//!   averages for utilization/queue-length tracking, histograms, and batch
//!   means with confidence intervals for steady-state output analysis.
//!
//! Determinism is a design goal throughout: given the same model and the same
//! seeds, a simulation produces bit-identical results on every run, which the
//! test suites of the downstream crates rely on.
//!
//! # Example
//!
//! A one-server FCFS queue, hand-rolled on the kernel:
//!
//! ```
//! use dqa_sim::{Engine, Model, Scheduler, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! #[derive(Default)]
//! struct Queue { in_system: u32, served: u32 }
//!
//! impl Model for Queue {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
//!         match ev {
//!             Ev::Arrival => {
//!                 self.in_system += 1;
//!                 if self.in_system == 1 {
//!                     sched.after(1.0, Ev::Departure);
//!                 }
//!             }
//!             Ev::Departure => {
//!                 self.in_system -= 1;
//!                 self.served += 1;
//!                 if self.in_system > 0 {
//!                     sched.after(1.0, Ev::Departure);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Queue::default());
//! for k in 0..5 {
//!     engine.schedule(SimTime::new(k as f64 * 0.25), Ev::Arrival);
//! }
//! engine.run_to_completion();
//! assert_eq!(engine.model().served, 5);
//! ```
//!
//! [`dqa-core`]: https://example.invalid/dqa

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod queue;
mod time;

pub mod random;
pub mod stats;
pub mod testkit;
pub mod trace;

pub use engine::{Engine, Model, Scheduler};
pub use queue::EventQueue;
pub use time::SimTime;
