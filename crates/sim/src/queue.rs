//! A stable priority queue of timestamped events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A future-event set: a min-priority queue keyed by [`SimTime`].
///
/// Unlike a plain `BinaryHeap`, the queue is **stable**: two events scheduled
/// for the same instant are popped in the order they were pushed. Stability
/// makes simulations deterministic even when many events share a timestamp
/// (common in models with constant service times), which in turn makes
/// regression tests reproducible.
///
/// # Example
///
/// ```
/// use dqa_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::new(2.0), "late");
/// q.push(SimTime::new(1.0), "early");
/// q.push(SimTime::new(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::new(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::new(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::new(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties on time are broken by insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(SimTime::new(t), t as u32);
        }
        let mut got = Vec::new();
        while let Some((_, v)) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::new(7.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime::new(7.0), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), ());
        q.push(SimTime::new(2.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10.0), 10);
        q.push(SimTime::new(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::new(5.0), 5);
        q.push(SimTime::new(0.5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
