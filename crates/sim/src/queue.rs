//! A stable priority queue of timestamped events.

use crate::SimTime;

/// Children per node of the implicit heap. A 4-ary layout keeps the tree
/// half as deep as a binary one and touches sibling keys that sit in the
/// same cache line, which measurably helps the pop-heavy access pattern
/// of a discrete-event loop (pops always sift from the root; pushes of
/// near-future events rarely sift far).
const ARITY: usize = 4;

/// A future-event set: a min-priority queue keyed by [`SimTime`].
///
/// Unlike a plain `BinaryHeap`, the queue is **stable**: two events scheduled
/// for the same instant are popped in the order they were pushed. Stability
/// makes simulations deterministic even when many events share a timestamp
/// (common in models with constant service times), which in turn makes
/// regression tests reproducible.
///
/// Entries live inline in one flat `Vec` arranged as an implicit
/// [`ARITY`]-ary heap: no per-event allocation happens on push, and the
/// buffer is retained across pops, so a long simulation reaches its
/// high-water mark once and never touches the allocator again.
///
/// # Example
///
/// ```
/// use dqa_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::new(2.0), "late");
/// q.push(SimTime::new(1.0), "early");
/// q.push(SimTime::new(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::new(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::new(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::new(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    entries: Vec<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// The total-order key: earliest time first, then insertion order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            entries: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.entries.push(Entry { time, seq, payload });
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties on time are broken by insertion order.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.entries.is_empty() {
            return None;
        }
        let root = self.entries.swap_remove(0);
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some((root.time, root.payload))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    #[inline]
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.time)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all pending events (the buffer's capacity is retained).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Restores the heap property upward from `i` after a push.
    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.entries[i].key() < self.entries[parent].key() {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap property downward from `i` after a pop.
    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.entries.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let last = (first + ARITY).min(len);
            for child in (first + 1)..last {
                if self.entries[child].key() < self.entries[min].key() {
                    min = child;
                }
            }
            if self.entries[min].key() < self.entries[i].key() {
                self.entries.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(SimTime::new(t), t as u32);
        }
        let mut got = Vec::new();
        while let Some((_, v)) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::new(7.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime::new(7.0), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), ());
        q.push(SimTime::new(2.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10.0), 10);
        q.push(SimTime::new(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::new(5.0), 5);
        q.push(SimTime::new(0.5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn random_workload_pops_sorted_and_stable() {
        // Deterministic LCG-driven stress: push/pop interleaving over a
        // small set of distinct times exercises every sift path, and ties
        // must preserve push order.
        let mut q = EventQueue::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        let mut pushed = 0u64;
        for _ in 0..10_000 {
            if next() % 3 != 0 {
                let t = SimTime::new((next() % 16) as f64);
                q.push(t, pushed);
                pushed += 1;
            } else {
                let _ = q.pop();
            }
        }
        let mut drained = Vec::new();
        while let Some(e) = q.pop() {
            drained.push(e);
        }
        for w in drained.windows(2) {
            assert!(w[0].0 <= w[1].0, "times out of order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }

    #[test]
    fn capacity_is_retained_across_clear() {
        let mut q = EventQueue::new();
        for i in 0..512 {
            q.push(SimTime::new(f64::from(i)), i);
        }
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers keep increasing, so stability spans clears.
        q.push(SimTime::new(1.0), 7);
        assert_eq!(q.pop(), Some((SimTime::new(1.0), 7)));
    }
}
