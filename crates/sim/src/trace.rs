//! Event tracing: a bounded ring buffer of recent events.
//!
//! Attached to an [`Engine`](crate::Engine) via
//! [`Engine::set_observer`](crate::Engine::set_observer), a [`TraceLog`]
//! keeps the last `capacity` dispatched events with their timestamps —
//! exactly what you want on the floor when a simulation invariant fires:
//! the tail of history that led to the bad state, without unbounded
//! memory.
//!
//! # Example
//!
//! ```
//! use dqa_sim::trace::TraceLog;
//! use dqa_sim::SimTime;
//!
//! let mut log: TraceLog<&str> = TraceLog::new(2);
//! log.record(SimTime::new(1.0), "a");
//! log.record(SimTime::new(2.0), "b");
//! log.record(SimTime::new(3.0), "c"); // evicts "a"
//! let tail: Vec<_> = log.iter().map(|(_, e)| *e).collect();
//! assert_eq!(tail, vec!["b", "c"]);
//! assert_eq!(log.dropped(), 1);
//! ```

use std::collections::VecDeque;

use crate::SimTime;

/// A bounded log of `(time, event)` records; oldest entries are evicted
/// first.
#[derive(Debug, Clone)]
pub struct TraceLog<E> {
    entries: VecDeque<(SimTime, E)>,
    capacity: usize,
    dropped: u64,
}

impl<E> TraceLog<E> {
    /// Creates a log holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn record(&mut self, time: SimTime, event: E) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((time, event));
    }

    /// Iterates over the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.entries.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been recorded (or everything
    /// evicted... which cannot happen, evictions require newer entries).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of events evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the log (keeps the capacity).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

impl<E: std::fmt::Debug> TraceLog<E> {
    /// Renders the retained tail as one line per event, oldest first —
    /// the "flight recorder" dump for panic messages.
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for (t, e) in &self.entries {
            let _ = writeln!(out, "{t}  {e:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_tail() {
        let mut log = TraceLog::new(3);
        for i in 0..10 {
            log.record(SimTime::new(f64::from(i)), i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let tail: Vec<i32> = log.iter().map(|&(_, e)| e).collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }

    #[test]
    fn dump_mentions_drops_and_events() {
        let mut log = TraceLog::new(1);
        log.record(SimTime::new(1.0), "first");
        log.record(SimTime::new(2.0), "second");
        let dump = log.dump();
        assert!(dump.contains("1 earlier events dropped"));
        assert!(dump.contains("second"));
        assert!(!dump.contains("first\n"));
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new(2);
        log.record(SimTime::ZERO, ());
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: TraceLog<()> = TraceLog::new(0);
    }
}
