//! Fixed-width histograms for distribution-shape checks.

/// A histogram with uniform bins over `[0, bin_width * bins)` plus an
/// overflow bin.
///
/// Used in tests to sanity-check that simulated waiting-time distributions
/// have the right shape, and by the experiment harness to report response
/// time quantiles.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::Histogram;
///
/// let mut h = Histogram::new(1.0, 10);
/// for x in [0.5, 1.5, 1.7, 2.2, 50.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_count(1), 2);   // 1.5 and 1.7
/// assert_eq!(h.overflow(), 1);     // 50.0
/// assert!((h.quantile(0.5) - 2.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive or `bins` is zero.
    #[must_use]
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be positive, got {bin_width}"
        );
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a non-negative observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or NaN.
    pub fn record(&mut self, x: f64) {
        assert!(x >= 0.0, "histogram observations must be >= 0, got {x}");
        let idx = (x / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total observations recorded (including overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in bin `i` (covering `[i * w, (i+1) * w)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of bins (excluding the overflow bin).
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Observations beyond the last bin.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1), interpolated linearly within
    /// its bin (observations are assumed uniform across the bin, so the
    /// target rank's fractional position inside the bin maps linearly onto
    /// the bin's value range `[i·w, (i+1)·w)`).
    ///
    /// **Overflow is a defined clamp, not an estimate.** When the target
    /// rank falls in the overflow bin — i.e. `q · count` exceeds the
    /// cumulative count of the regular bins — the result is exactly the
    /// upper range limit `bin_width · bins`. The histogram records only
    /// *that* an observation exceeded the range, not where, so no
    /// interpolation is possible there; the clamp is a deliberate
    /// **lower bound** on the true quantile. Callers that need resolved
    /// extreme tails should widen the range or use
    /// [`TailSketch`](super::TailSketch), whose geometric buckets resolve
    /// tails without a pre-chosen range. An empty histogram reports `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0.0;
        }
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = (target - cum) / c as f64;
                return (i as f64 + frac) * self.bin_width;
            }
            cum = next;
        }
        self.bin_width * self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(2.0, 5);
        h.record(0.0);
        h.record(1.99);
        h.record(2.0);
        h.record(9.99);
        h.record(10.0); // overflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn median_of_uniform_data() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 10.0); // uniform on [0, 100)
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 1.0, "median {med}");
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_in_overflow_returns_limit() {
        let mut h = Histogram::new(1.0, 2);
        h.record(100.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn overflow_clamp_is_exact_at_the_range_limit() {
        // Mixed data: the quantile clamps to bin_width * bins precisely
        // when the target rank passes the regular bins' cumulative count,
        // and stays interpolated below that.
        let mut h = Histogram::new(2.0, 5); // range [0, 10)
        for x in [1.0, 3.0, 5.0, 7.0, 9.0] {
            h.record(x);
        }
        for _ in 0..5 {
            h.record(1e6); // overflow
        }
        // Ranks 1..=5 resolve in the bins; ranks 6..=10 are overflow.
        assert!(h.quantile(0.45) < 10.0);
        assert_eq!(h.quantile(0.6), 10.0);
        assert_eq!(h.quantile(0.99), 10.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn within_bin_interpolation_is_linear() {
        // Four observations in bin [10, 20): target rank q*4 lands a
        // fraction of the way through the bin's count, which maps linearly
        // onto the bin's value range.
        let mut h = Histogram::new(10.0, 4);
        for _ in 0..4 {
            h.record(12.0);
        }
        assert!((h.quantile(0.25) - 12.5).abs() < 1e-12); // 1/4 through the bin
        assert!((h.quantile(0.5) - 15.0).abs() < 1e-12); // midpoint
        assert!((h.quantile(1.0) - 20.0).abs() < 1e-12); // upper edge
    }

    #[test]
    fn all_overflow_histogram_still_clamps() {
        let mut h = Histogram::new(0.5, 3);
        for _ in 0..10 {
            h.record(99.0);
        }
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 1.5, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_observation_panics() {
        Histogram::new(1.0, 2).record(-0.5);
    }
}
