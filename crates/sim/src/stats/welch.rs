//! Warmup-length estimation by Welch's procedure.

/// Estimates the initial-transient (warmup) length from per-replication
/// observation series using Welch's procedure: average the series across
/// replications index-by-index, smooth with a centered moving average of
/// half-width `window`, and report the first index from which the
/// smoothed curve stays within `tolerance` (relative) of its settled
/// value — estimated as the mean of the final quarter.
///
/// Returns `None` when the curve never settles (tolerance too tight, or
/// the series is still trending at its end — run longer). Observations
/// beyond the shortest replication are ignored.
///
/// # Panics
///
/// Panics if `replications` is empty, any series is empty, `window` is
/// zero, or `tolerance` is not positive.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::welch_truncation;
///
/// // Two replications of a process that warms up after ~10 samples.
/// let rep = |off: f64| -> Vec<f64> {
///     (0..200)
///         .map(|j| 10.0 * (1.0 - (-(j as f64) / 3.0).exp()) + off)
///         .collect()
/// };
/// let cut = welch_truncation(&[rep(0.01), rep(-0.01)], 3, 0.02).unwrap();
/// assert!((5..40).contains(&cut), "cut at {cut}");
/// ```
#[must_use]
pub fn welch_truncation(replications: &[Vec<f64>], window: usize, tolerance: f64) -> Option<usize> {
    assert!(!replications.is_empty(), "need at least one replication");
    assert!(window > 0, "window must be positive");
    assert!(
        tolerance.is_finite() && tolerance > 0.0,
        "tolerance must be positive"
    );
    let len = replications
        .iter()
        .map(Vec::len)
        .min()
        .expect("non-empty slice");
    assert!(len > 0, "replications must contain observations");

    // Cross-replication mean at each index.
    let mean: Vec<f64> = (0..len)
        .map(|j| replications.iter().map(|r| r[j]).sum::<f64>() / replications.len() as f64)
        .collect();

    // Centered moving average, shrinking the window near the edges.
    let smoothed: Vec<f64> = (0..len)
        .map(|j| {
            let w = window.min(j).min(len - 1 - j);
            let lo = j - w;
            let hi = j + w;
            mean[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect();

    // Settled value: mean of the final quarter (at least one point).
    let tail_start = len - (len / 4).max(1);
    let settled = smoothed[tail_start..].iter().sum::<f64>() / (len - tail_start) as f64;
    let band = tolerance * settled.abs().max(f64::MIN_POSITIVE);

    // First index from which the curve never leaves the band.
    let mut cut = None;
    for (j, &v) in smoothed.iter().enumerate() {
        if (v - settled).abs() <= band {
            cut.get_or_insert(j);
        } else {
            cut = None;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RngStream;

    fn transient_series(tau: f64, target: f64, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = RngStream::new(seed);
        (0..n)
            .map(|j| {
                let drift = target * (1.0 - (-(j as f64) / tau).exp());
                drift + (rng.next_f64() - 0.5) * 0.05 * target
            })
            .collect()
    }

    #[test]
    fn detects_a_known_transient() {
        let reps: Vec<Vec<f64>> = (0..5)
            .map(|s| transient_series(20.0, 8.0, s, 400))
            .collect();
        let cut = welch_truncation(&reps, 10, 0.05).expect("settles");
        // The exponential reaches 95% of target at 3 tau = 60.
        assert!(
            (20..150).contains(&cut),
            "cut {cut} should be near the 3-tau mark"
        );
    }

    #[test]
    fn stationary_series_truncates_at_zero_ish() {
        let reps: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                let mut rng = RngStream::new(100 + s);
                (0..200)
                    .map(|_| 5.0 + (rng.next_f64() - 0.5) * 0.1)
                    .collect()
            })
            .collect();
        let cut = welch_truncation(&reps, 5, 0.05).expect("settles");
        assert!(cut < 10, "stationary data should need no warmup, got {cut}");
    }

    #[test]
    fn still_trending_series_returns_none() {
        // Linear growth never settles.
        let reps = vec![(0..100).map(f64::from).collect::<Vec<f64>>()];
        assert_eq!(welch_truncation(&reps, 5, 0.01), None);
    }

    #[test]
    fn respects_shortest_replication() {
        let reps = vec![vec![1.0; 50], vec![1.0; 500]];
        let cut = welch_truncation(&reps, 5, 0.05).unwrap();
        assert!(cut < 50);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = welch_truncation(&[vec![1.0]], 0, 0.1);
    }
}
