//! Output statistics for simulations.
//!
//! Three kinds of estimators cover everything the experiments need:
//!
//! * [`Tally`] — observation statistics (per-query waiting times, response
//!   times, service demands) via Welford's online algorithm.
//! * [`TimeWeighted`] — time-averaged quantities (queue lengths, number in
//!   service, utilizations) integrated against the simulation clock.
//! * [`BatchMeans`] — steady-state confidence intervals from a single long
//!   run, using the method of non-overlapping batch means.
//!
//! [`Histogram`] supports distribution-shape checks in tests,
//! [`TailSketch`]/[`WindowedTailSketch`] provide deterministic mergeable
//! streaming quantiles for tail percentiles at scale, and
//! [`student_t_975`] supplies the t-quantiles for interval construction.

mod batch;
mod histogram;
mod sketch;
mod tally;
mod time_weighted;
mod welch;

pub use batch::BatchMeans;
pub use histogram::Histogram;
pub use sketch::{TailSketch, WindowedTailSketch};
pub use tally::Tally;
pub use time_weighted::TimeWeighted;
pub use welch::welch_truncation;

/// Two-sided 95% Student-t critical value (the 0.975 quantile) for `df`
/// degrees of freedom.
///
/// Exact table values are used for small `df`; beyond the table the normal
/// quantile 1.96 is an adequate approximation.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::student_t_975;
/// assert!((student_t_975(9) - 2.262).abs() < 1e-3);
/// assert!((student_t_975(10_000) - 1.96).abs() < 1e-2);
/// ```
#[must_use]
pub fn student_t_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = student_t_975(df);
            assert!(t <= prev, "t({df}) = {t} > previous {prev}");
            prev = t;
        }
    }

    #[test]
    fn t_zero_df_is_infinite() {
        assert!(student_t_975(0).is_infinite());
    }
}
