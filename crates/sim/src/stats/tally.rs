//! Observation statistics via Welford's online algorithm.

/// An online tally of scalar observations: count, mean, variance, extrema.
///
/// Uses Welford's numerically stable update, so millions of observations can
/// be accumulated without catastrophic cancellation. Tallies from parallel
/// replications can be combined with [`Tally::merge`] (Chan et al.'s
/// pairwise formula).
///
/// # Example
///
/// ```
/// use dqa_sim::stats::Tally;
///
/// let mut t = Tally::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     t.record(x);
/// }
/// assert_eq!(t.count(), 8);
/// assert_eq!(t.mean(), 5.0);
/// assert_eq!(t.population_variance(), 4.0);
/// assert_eq!(t.min(), 2.0);
/// assert_eq!(t.max(), 9.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN would silently poison every statistic).
    #[inline]
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance (divides by `n - 1`); `0.0` with fewer than
    /// two observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `0.0` when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Returns `true` if no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another tally into this one, as if every observation of `other`
    /// had been recorded here.
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally_is_safe() {
        let t = Tally::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.sample_variance(), 0.0);
        assert_eq!(t.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut t = Tally::new();
        t.record(5.0);
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.sample_variance(), 0.0);
        assert_eq!(t.min(), 5.0);
        assert_eq!(t.max(), 5.0);
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1000) as f64 / 3.0)
            .collect();
        let mut t = Tally::new();
        for &x in &xs {
            t.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((t.mean() - mean).abs() < 1e-9);
        assert!((t.sample_variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut t = Tally::new();
        t.record(1.0);
        t.record(2.0);
        let before = t.clone();
        t.merge(&Tally::new());
        assert_eq!(t, before);

        let mut e = Tally::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Tally::new().record(f64::NAN);
    }
}
