//! Confidence intervals from a single long run via batch means.

use super::{student_t_975, Tally};

/// The method of non-overlapping batch means.
///
/// Steady-state simulation outputs are autocorrelated, so the naive standard
/// error of per-observation statistics is biased low. Batch means groups
/// consecutive observations into fixed-size batches; batch averages are far
/// less correlated, and a Student-t interval over them is a sound interval
/// for the steady-state mean.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100);
/// for i in 0..1000 {
///     bm.record((i % 7) as f64);
/// }
/// assert_eq!(bm.completed_batches(), 10);
/// let (lo, hi) = bm.confidence_interval();
/// let m = bm.mean();
/// assert!(lo <= m && m <= hi);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Tally,
    batches: Tally,
    grand: Tally,
}

impl BatchMeans {
    /// Creates an estimator with the given observations-per-batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Tally::new(),
            batches: Tally::new(),
            grand: Tally::new(),
        }
    }

    /// Records one observation, closing a batch whenever `batch_size`
    /// observations have accumulated.
    pub fn record(&mut self, x: f64) {
        self.grand.record(x);
        self.current.record(x);
        if self.current.count() == self.batch_size {
            self.batches.record(self.current.mean());
            self.current = Tally::new();
        }
    }

    /// Grand mean over every recorded observation (including any partial
    /// final batch).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.grand.mean()
    }

    /// Total number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.grand.count()
    }

    /// Number of completed batches.
    #[must_use]
    pub fn completed_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Half-width of the 95% confidence interval over batch means.
    /// `+inf` with fewer than two completed batches.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        let k = self.batches.count();
        if k < 2 {
            return f64::INFINITY;
        }
        student_t_975(k - 1) * self.batches.std_error()
    }

    /// The 95% confidence interval `(lo, hi)` for the steady-state mean.
    #[must_use]
    pub fn confidence_interval(&self) -> (f64, f64) {
        let hw = self.half_width();
        let m = self.batches.mean();
        (m - hw, m + hw)
    }

    /// Relative precision: half-width divided by |mean of batch means|.
    /// `+inf` if undefined.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        let m = self.batches.mean().abs();
        // dqa-lint: allow(no-float-eq) -- division guard: only exact zero divides badly
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.half_width() / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_close_at_size() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..25 {
            bm.record(1.0);
        }
        assert_eq!(bm.completed_batches(), 2);
        assert_eq!(bm.count(), 25);
        assert_eq!(bm.mean(), 1.0);
    }

    #[test]
    fn constant_data_zero_width_interval() {
        let mut bm = BatchMeans::new(5);
        for _ in 0..50 {
            bm.record(3.0);
        }
        assert_eq!(bm.half_width(), 0.0);
        assert_eq!(bm.confidence_interval(), (3.0, 3.0));
    }

    #[test]
    fn interval_covers_true_mean_for_iid_noise() {
        use crate::random::RngStream;
        let mut rng = RngStream::new(99);
        let mut bm = BatchMeans::new(500);
        for _ in 0..50_000 {
            bm.record(rng.exponential(2.0));
        }
        let (lo, hi) = bm.confidence_interval();
        assert!(lo < 2.0 && 2.0 < hi, "CI ({lo}, {hi}) misses 2.0");
        assert!(bm.relative_half_width() < 0.05);
    }

    #[test]
    fn too_few_batches_is_infinite() {
        let mut bm = BatchMeans::new(100);
        bm.record(1.0);
        assert!(bm.half_width().is_infinite());
        assert!(bm.relative_half_width().is_infinite());
    }
}
