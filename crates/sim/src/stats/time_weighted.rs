//! Time-weighted averages for queue lengths and utilizations.

use crate::SimTime;

/// A piecewise-constant signal integrated against the simulation clock.
///
/// Tracks quantities such as "number of queries at site 3" or "the token
/// ring is busy (0/1)". Each [`set`](TimeWeighted::set) or
/// [`add`](TimeWeighted::add) call closes the previous constant segment and
/// accumulates its area; [`time_average`](TimeWeighted::time_average) then
/// reports the integral divided by elapsed time.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::TimeWeighted;
/// use dqa_sim::SimTime;
///
/// let mut q = TimeWeighted::new(SimTime::ZERO, 0.0);
/// q.set(SimTime::new(2.0), 3.0);   // 0 for 2 units
/// q.set(SimTime::new(6.0), 1.0);   // 3 for 4 units
/// // integral = 0*2 + 3*4 = 12 over 6 units
/// assert_eq!(q.time_average(SimTime::new(6.0)), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    area: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Creates a signal with the given initial value at time `start`.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value: initial,
            area: 0.0,
            start,
            max: initial,
        }
    }

    /// Advances the integral to `now` without changing the value.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last update.
    #[inline]
    fn advance(&mut self, now: SimTime) {
        let dt = now - self.last_time;
        assert!(dt >= 0.0, "time went backwards: {now} < {}", self.last_time);
        self.area += self.value * dt;
        self.last_time = now;
    }

    /// Sets the signal to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previous update.
    #[inline]
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Adds `delta` to the signal at time `now` (convenient for queue
    /// lengths: `+1` on arrival, `-1` on departure).
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previous update.
    #[inline]
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value of the signal.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value the signal has taken.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The time average of the signal from the start time through `now`.
    /// Returns the current value if no time has elapsed.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last update.
    #[must_use]
    pub fn time_average(&self, now: SimTime) -> f64 {
        let tail = self.value * (now - self.last_time);
        assert!(
            now >= self.last_time,
            "time_average queried in the past: {now} < {}",
            self.last_time
        );
        let span = now - self.start;
        if span <= 0.0 {
            self.value
        } else {
            (self.area + tail) / span
        }
    }

    /// Restarts measurement at `now`, keeping the current value. Used to
    /// discard the warmup transient.
    pub fn reset(&mut self, now: SimTime) {
        self.last_time = now;
        self.start = now;
        self.area = 0.0;
        self.max = self.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_averages_to_itself() {
        let s = TimeWeighted::new(SimTime::ZERO, 4.0);
        assert_eq!(s.time_average(SimTime::new(10.0)), 4.0);
    }

    #[test]
    fn square_wave_average() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 0.0);
        // on for [1,3), off for [3,5): busy 2 of 5 units
        s.set(SimTime::new(1.0), 1.0);
        s.set(SimTime::new(3.0), 0.0);
        assert!((s.time_average(SimTime::new(5.0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn add_tracks_queue_length() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 0.0);
        s.add(SimTime::new(1.0), 1.0);
        s.add(SimTime::new(2.0), 1.0);
        s.add(SimTime::new(3.0), -1.0);
        // L(t): 0 on [0,1), 1 on [1,2), 2 on [2,3), 1 on [3,4)
        assert!((s.time_average(SimTime::new(4.0)) - 1.0).abs() < 1e-12);
        assert_eq!(s.value(), 1.0);
        assert_eq!(s.max(), 2.0);
    }

    #[test]
    fn zero_elapsed_returns_value() {
        let s = TimeWeighted::new(SimTime::new(5.0), 2.5);
        assert_eq!(s.time_average(SimTime::new(5.0)), 2.5);
    }

    #[test]
    fn reset_discards_history() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 10.0);
        s.set(SimTime::new(5.0), 0.0);
        s.reset(SimTime::new(5.0));
        assert_eq!(s.time_average(SimTime::new(10.0)), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_update_panics() {
        let mut s = TimeWeighted::new(SimTime::new(2.0), 0.0);
        s.set(SimTime::new(1.0), 1.0);
    }
}
