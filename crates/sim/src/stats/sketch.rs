//! Mergeable streaming quantile sketches for tail percentiles at scale.
//!
//! [`TailSketch`] is a fixed-size hierarchical log-bucket sketch: every
//! non-negative observation lands in one of a bounded set of buckets whose
//! edges grow geometrically (an HDR-histogram-style layout derived directly
//! from the IEEE-754 bit pattern), and each bucket is a plain `u64`
//! counter. That representation buys the two properties the open-system
//! experiments need and a comparator-based sketch (KLL, t-digest) cannot
//! give:
//!
//! 1. **Bounded memory, unbounded stream.** The bucket array never grows;
//!    recording is O(1) with no allocation, so multi-million-query runs
//!    stream through a few tens of kilobytes.
//! 2. **Exact merge associativity and commutativity.** A merge is an
//!    element-wise `u64` add, so *any* merge tree over *any* partition of a
//!    stream produces bit-identical counters — which is what lets the
//!    serial loop, `par_map` replication merges, and the parallel-in-time
//!    shard executor report **byte-identical** p50/p99/p999. Floating-point
//!    summaries (t-digest centroids) would differ by merge order.
//!
//! The price is bounded *relative* error: with [`TailSketch::SUB_BITS`]
//! sub-buckets per octave, a reported quantile is within one sub-bucket of
//! the exact order statistic — a relative error below `2^-SUB_BITS` (≈0.8%
//! at the default 7 bits; the property tests assert 1%).
//!
//! [`WindowedTailSketch`] keeps a ring of per-time-window sketches so
//! non-stationary runs (diurnal curves, flash crowds) can report
//! time-sliced tails instead of one stationarity-assuming aggregate.

/// IEEE-754 double exponent bias.
const BIAS: i64 = 1023;

/// A deterministic, mergeable log-bucket quantile sketch over non-negative
/// observations.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::TailSketch;
///
/// let mut a = TailSketch::new();
/// let mut b = TailSketch::new();
/// for x in [1.0, 2.0, 3.0] {
///     a.record(x);
/// }
/// for x in [100.0, 200.0] {
///     b.record(x);
/// }
/// a.merge(&b);
/// assert_eq!(a.count(), 5);
/// let p50 = a.quantile(0.5);
/// assert!((p50 - 3.0).abs() / 3.0 < 0.01, "p50 {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailSketch {
    counts: Box<[u64]>,
    total: u64,
}

impl TailSketch {
    /// Sub-bucket resolution: each power-of-two octave splits into
    /// `2^SUB_BITS` geometric sub-buckets, bounding relative quantile
    /// error by `2^-SUB_BITS` ≈ 0.8%.
    pub const SUB_BITS: u32 = 7;

    /// Smallest resolved magnitude, as a binary exponent: positive values
    /// below `2^MIN_EXP` collapse into the underflow bucket and report as
    /// `0.0`.
    pub const MIN_EXP: i32 = -30;

    /// Largest resolved magnitude, as a binary exponent: values at or
    /// above `2^MAX_EXP` (≈1.7e10) collapse into the overflow bucket and
    /// report as the range limit `2^MAX_EXP`.
    pub const MAX_EXP: i32 = 34;

    /// Resolved buckets between the underflow and overflow buckets.
    const MID_BUCKETS: usize = ((Self::MAX_EXP - Self::MIN_EXP) as usize) << Self::SUB_BITS;

    /// Total buckets: underflow + resolved range + overflow.
    const NUM_BUCKETS: usize = Self::MID_BUCKETS + 2;

    /// Bit-pattern key of the resolved range's lower edge (`2^MIN_EXP`).
    const LO_KEY: i64 = (Self::MIN_EXP as i64 + BIAS) << Self::SUB_BITS;

    /// Bit-pattern key one past the resolved range (`2^MAX_EXP`).
    const HI_KEY: i64 = (Self::MAX_EXP as i64 + BIAS) << Self::SUB_BITS;

    /// Creates an empty sketch (~64 KiB of counters, fixed for life).
    #[must_use]
    pub fn new() -> Self {
        TailSketch {
            counts: vec![0u64; Self::NUM_BUCKETS].into_boxed_slice(),
            total: 0,
        }
    }

    /// The bucket index of observation `x`.
    ///
    /// For positive finite doubles the bit pattern
    /// `(exponent << 52) | mantissa` is monotone in the value, so shifting
    /// away all but the top `SUB_BITS` mantissa bits yields a key that is
    /// exactly "which geometric sub-bucket" — no logarithms, no rounding,
    /// and bit-for-bit reproducible everywhere.
    #[inline]
    fn bucket_of(x: f64) -> usize {
        debug_assert!(x >= 0.0 && !x.is_nan(), "sketch observations must be >= 0");
        let key = (x.to_bits() >> (52 - Self::SUB_BITS)) as i64;
        if key < Self::LO_KEY {
            0
        } else if key >= Self::HI_KEY {
            Self::NUM_BUCKETS - 1
        } else {
            (key - Self::LO_KEY) as usize + 1
        }
    }

    /// The lower edge of resolved bucket `i` (1-based within the resolved
    /// range), reconstructed exactly from the bit pattern.
    #[inline]
    fn lower_edge(i: usize) -> f64 {
        let key = Self::LO_KEY + (i as i64 - 1);
        f64::from_bits((key as u64) << (52 - Self::SUB_BITS))
    }

    /// Records a non-negative observation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `x` is negative or NaN; release builds
    /// bucket the bit pattern, which for negatives lands in underflow.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.counts[Self::bucket_of(x)] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the sketch has no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Observations that fell below the resolved range (reported as `0.0`
    /// by quantile queries).
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.counts[0]
    }

    /// Observations at or above the resolved range limit `2^MAX_EXP`
    /// (clamped to the limit by quantile queries).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.counts[Self::NUM_BUCKETS - 1]
    }

    /// Merges another sketch into this one: an element-wise `u64` add.
    ///
    /// The operation is exactly associative and commutative, so any merge
    /// order over any partition of a stream yields identical counters —
    /// and therefore bit-identical quantiles.
    pub fn merge(&mut self, other: &TailSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`), interpolated linearly
    /// within its bucket. Returns `0.0` for an empty sketch or a quantile
    /// in the underflow bucket, and clamps to `2^MAX_EXP` in the overflow
    /// bucket.
    ///
    /// The result is a pure function of the counters, so two sketches with
    /// equal counters report byte-identical quantiles regardless of how
    /// their streams were partitioned or merged.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0.0;
        }
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                if i == 0 {
                    return 0.0;
                }
                if i == Self::NUM_BUCKETS - 1 {
                    return Self::lower_edge(Self::NUM_BUCKETS - 1);
                }
                let lo = Self::lower_edge(i);
                let hi = Self::lower_edge(i + 1);
                let frac = (target - cum) / c as f64;
                return lo + (hi - lo) * frac;
            }
            cum = next;
        }
        Self::lower_edge(Self::NUM_BUCKETS - 1)
    }

    /// Bytes of counter storage (the fixed memory footprint).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }
}

impl Default for TailSketch {
    fn default() -> Self {
        TailSketch::new()
    }
}

/// A ring of per-time-window [`TailSketch`]es for non-stationary tails.
///
/// Observations at time `t` land in window `floor(t / width)`; the ring
/// keeps the most recent `windows` of them, recycling the oldest slot in
/// place (bounded memory, no allocation after construction). Querying a
/// recycled window returns `None`.
///
/// # Example
///
/// ```
/// use dqa_sim::stats::WindowedTailSketch;
///
/// let mut w = WindowedTailSketch::new(100.0, 4);
/// w.record(10.0, 5.0); // window 0
/// w.record(250.0, 9.0); // window 2
/// assert_eq!(w.window(0).unwrap().count(), 1);
/// assert_eq!(w.window(2).unwrap().count(), 1);
/// assert!(w.window(1).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct WindowedTailSketch {
    width: f64,
    /// `(window index + 1, sketch)` per ring slot; tag 0 marks "never
    /// used". A slot is valid for window `w` only while its tag is `w + 1`.
    slots: Vec<(u64, TailSketch)>,
}

impl WindowedTailSketch {
    /// Creates a ring of `windows` sketches over windows of `width` time
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `windows` is zero.
    #[must_use]
    pub fn new(width: f64, windows: usize) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "window width must be positive, got {width}"
        );
        assert!(windows > 0, "need at least one window");
        WindowedTailSketch {
            width,
            slots: (0..windows).map(|_| (0, TailSketch::new())).collect(),
        }
    }

    /// The window index containing time `t`.
    #[must_use]
    pub fn window_of(&self, t: f64) -> u64 {
        debug_assert!(t >= 0.0, "windowed time must be >= 0, got {t}");
        (t / self.width) as u64
    }

    /// Records observation `x` made at time `t`, recycling the ring slot
    /// if it still holds an older window.
    pub fn record(&mut self, t: f64, x: f64) {
        let w = self.window_of(t);
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[(w % n) as usize];
        if slot.0 != w + 1 {
            slot.0 = w + 1;
            slot.1.counts.fill(0);
            slot.1.total = 0;
        }
        slot.1.record(x);
    }

    /// The sketch for window `w`, if it is still resident in the ring.
    #[must_use]
    pub fn window(&self, w: u64) -> Option<&TailSketch> {
        let n = self.slots.len() as u64;
        let slot = &self.slots[(w % n) as usize];
        (slot.0 == w + 1).then_some(&slot.1)
    }

    /// The window width in time units.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The ring capacity in windows.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{cases, Gen};

    fn sketch_of(xs: &[f64]) -> TailSketch {
        let mut s = TailSketch::new();
        for &x in xs {
            s.record(x);
        }
        s
    }

    /// Exact empirical quantile with the same rank convention the sketch
    /// uses (`target = q * n`, first observation whose cumulative count
    /// reaches the target).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let target = q * sorted.len() as f64;
        let idx = (target.ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    }

    #[test]
    fn empty_sketch_reports_zero() {
        let s = TailSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(0.999), 0.0);
    }

    #[test]
    fn single_value_is_recovered_within_resolution() {
        for x in [0.001, 1.0, 42.5, 1e6] {
            let s = sketch_of(&[x]);
            for q in [0.0, 0.5, 0.99, 1.0] {
                let got = s.quantile(q);
                assert!((got - x).abs() / x < 0.01, "q={q}: got {got} for value {x}");
            }
        }
    }

    #[test]
    fn underflow_and_overflow_clamp() {
        let tiny = 2.0_f64.powi(TailSketch::MIN_EXP - 3);
        let huge = 2.0_f64.powi(TailSketch::MAX_EXP + 3);
        let s = sketch_of(&[tiny, huge]);
        assert_eq!(s.underflow(), 1);
        assert_eq!(s.overflow(), 1);
        assert_eq!(s.quantile(0.25), 0.0);
        assert_eq!(s.quantile(1.0), 2.0_f64.powi(TailSketch::MAX_EXP));
    }

    #[test]
    fn zero_observations_land_in_underflow() {
        let s = sketch_of(&[0.0, 0.0, 5.0]);
        assert_eq!(s.underflow(), 2);
        assert_eq!(s.quantile(0.3), 0.0);
    }

    #[test]
    fn quantile_error_bound_against_exact_order_statistics() {
        cases(60, 0x5EEC, |g: &mut Gen| {
            // Mix scales so several octaves are exercised.
            let mut xs = g.vec_f64(0.01..10.0, 50..300);
            let heavy = g.vec_f64(100.0..50_000.0, 1..40);
            xs.extend(heavy);
            let s = sketch_of(&xs);
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
                let got = s.quantile(q);
                let exact = exact_quantile(&sorted, q);
                // The sketch answer must sit within one sub-bucket of an
                // exact order statistic: 2^-SUB_BITS relative error, plus
                // slack for the rank falling between two observations.
                let lo = exact_quantile(&sorted, (q - 2.0 / xs.len() as f64).max(0.0));
                let hi = exact_quantile(&sorted, (q + 2.0 / xs.len() as f64).min(1.0));
                assert!(
                    got >= lo * 0.99 && got <= hi * 1.01,
                    "case {}: q={q} got {got}, exact {exact} (band [{lo}, {hi}])",
                    g.case()
                );
            }
        });
    }

    #[test]
    fn merge_is_commutative_bitwise() {
        cases(40, 0xC0117, |g: &mut Gen| {
            let xs = g.vec_f64(0.1..1000.0, 1..100);
            let ys = g.vec_f64(0.1..1000.0, 1..100);
            let (a, b) = (sketch_of(&xs), sketch_of(&ys));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "case {}", g.case());
        });
    }

    #[test]
    fn merge_is_associative_bitwise() {
        cases(40, 0xA550C, |g: &mut Gen| {
            let xs = g.vec_f64(0.1..1000.0, 1..80);
            let ys = g.vec_f64(0.1..1000.0, 1..80);
            let zs = g.vec_f64(0.1..1000.0, 1..80);
            let (a, b, c) = (sketch_of(&xs), sketch_of(&ys), sketch_of(&zs));
            // (a ∪ b) ∪ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ∪ (b ∪ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "case {}", g.case());
        });
    }

    #[test]
    fn any_partition_equals_the_serial_sketch() {
        cases(40, 0x9A27, |g: &mut Gen| {
            let xs = g.vec_f64(0.1..5000.0, 10..200);
            let serial = sketch_of(&xs);
            // Split at a random point, sketch the halves independently
            // (in swapped order), merge: must be bit-identical.
            let cut = g.usize_in(0..xs.len());
            let mut merged = sketch_of(&xs[cut..]);
            merged.merge(&sketch_of(&xs[..cut]));
            assert_eq!(merged, serial, "case {}", g.case());
            for q in [0.5, 0.99, 0.999] {
                assert!(
                    merged.quantile(q).to_bits() == serial.quantile(q).to_bits(),
                    "case {}: quantile {q} differs bitwise",
                    g.case()
                );
            }
        });
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        cases(30, 0x304F, |g: &mut Gen| {
            let xs = g.vec_f64(0.01..10_000.0, 5..150);
            let s = sketch_of(&xs);
            let mut prev = 0.0;
            for i in 0..=20 {
                let q = f64::from(i) / 20.0;
                let v = s.quantile(q);
                assert!(v >= prev, "case {}: q={q} gave {v} < {prev}", g.case());
                prev = v;
            }
        });
    }

    #[test]
    fn footprint_is_fixed_and_small() {
        let mut s = TailSketch::new();
        let before = s.bytes();
        for i in 0..100_000 {
            s.record(0.1 + f64::from(i));
        }
        assert_eq!(s.bytes(), before, "recording must not grow the sketch");
        assert!(before <= 96 * 1024, "sketch footprint {before} too large");
    }

    #[test]
    fn windowed_ring_recycles_oldest_slot() {
        let mut w = WindowedTailSketch::new(10.0, 3);
        w.record(5.0, 1.0); // window 0
        w.record(15.0, 2.0); // window 1
        w.record(25.0, 3.0); // window 2
        assert_eq!(w.window(0).unwrap().count(), 1);
        w.record(35.0, 4.0); // window 3 recycles slot 0
        assert!(w.window(0).is_none(), "window 0 should be recycled");
        assert_eq!(w.window(3).unwrap().count(), 1);
        assert_eq!(w.window(1).unwrap().count(), 1);
    }

    #[test]
    fn windowed_observations_split_by_time() {
        let mut w = WindowedTailSketch::new(100.0, 4);
        for i in 0..50 {
            w.record(f64::from(i), 10.0); // window 0
        }
        for i in 0..30 {
            w.record(100.0 + f64::from(i), 500.0); // window 1
        }
        let w0 = w.window(0).unwrap();
        let w1 = w.window(1).unwrap();
        assert_eq!(w0.count(), 50);
        assert_eq!(w1.count(), 30);
        assert!((w0.quantile(0.5) - 10.0).abs() / 10.0 < 0.01);
        assert!((w1.quantile(0.5) - 500.0).abs() / 500.0 < 0.01);
    }
}
