//! Property tests of the simulation kernel's data structures, driven by the
//! crate's own deterministic [`dqa_sim::testkit`] case runner.

use dqa_sim::random::{Dist, RngStream};
use dqa_sim::stats::{BatchMeans, Tally, TimeWeighted};
use dqa_sim::testkit::cases;
use dqa_sim::{EventQueue, SimTime};

/// Popping returns events in non-decreasing time order, regardless of push
/// order.
#[test]
fn event_queue_pops_sorted() {
    cases(200, 0xE0_01, |g| {
        let times = g.vec_f64(0.0..1e6, 1..200);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::new(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev, "case {}: queue popped out of order", g.case());
            prev = t;
            count += 1;
        }
        assert_eq!(count, times.len());
    });
}

/// Events at identical timestamps preserve insertion order (stability), even
/// interleaved with other timestamps.
#[test]
fn event_queue_is_stable() {
    cases(200, 0xE0_02, |g| {
        let groups = g.vec_with(1..30, |g| (g.f64_in(0.0..100.0), g.usize_in(1..8)));
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::new(t), (t.to_bits(), seq));
                seq += 1;
            }
        }
        let mut last_seq_at: std::collections::HashMap<u64, u64> = Default::default();
        while let Some((t, (bits, s))) = q.pop() {
            assert_eq!(t.as_f64().to_bits(), bits);
            if let Some(&prev) = last_seq_at.get(&bits) {
                assert!(
                    s > prev,
                    "case {}: same-time events out of insertion order",
                    g.case()
                );
            }
            last_seq_at.insert(bits, s);
        }
    });
}

/// Welford tally matches the naive two-pass mean and variance.
#[test]
fn tally_matches_two_pass() {
    cases(300, 0xE0_03, |g| {
        let xs = g.vec_f64(-1e4..1e4, 2..300);
        let mut t = Tally::new();
        for &x in &xs {
            t.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((t.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((t.sample_variance() - var).abs() < 1e-5 * (1.0 + var));
        assert_eq!(t.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(
            t.max(),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
    });
}

/// Merging split tallies equals one combined tally.
#[test]
fn tally_merge_is_concatenation() {
    cases(300, 0xE0_04, |g| {
        let xs = g.vec_f64(-1e3..1e3, 1..100);
        let ys = g.vec_f64(-1e3..1e3, 1..100);
        let mut a = Tally::new();
        let mut b = Tally::new();
        let mut whole = Tally::new();
        for &x in &xs {
            a.record(x);
            whole.record(x);
        }
        for &y in &ys {
            b.record(y);
            whole.record(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
        assert!(
            (a.sample_variance() - whole.sample_variance()).abs()
                < 1e-6 * (1.0 + whole.sample_variance())
        );
    });
}

/// The time average of a piecewise-constant signal equals the manual
/// integral.
#[test]
fn time_weighted_matches_manual_integral() {
    cases(300, 0xE0_05, |g| {
        let steps = g.vec_with(1..50, |g| (g.f64_in(0.01..10.0), g.f64_in(-50.0..50.0)));
        let mut s = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut now = 0.0;
        let mut area = 0.0;
        let mut value = 0.0;
        for &(dt, v) in &steps {
            area += value * dt;
            now += dt;
            s.set(SimTime::new(now), v);
            value = v;
        }
        // extend one more unit at the final value
        area += value * 1.0;
        now += 1.0;
        let expected = area / now;
        assert!(
            (s.time_average(SimTime::new(now)) - expected).abs() < 1e-9 * (1.0 + expected.abs()),
            "case {}: integral mismatch",
            g.case()
        );
    });
}

/// Batch means: the grand mean equals the plain mean and the batch count
/// matches the sample count.
#[test]
fn batch_means_grand_mean() {
    cases(200, 0xE0_06, |g| {
        let xs = g.vec_f64(0.0..100.0, 20..400);
        let mut bm = BatchMeans::new(10);
        for &x in &xs {
            bm.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((bm.mean() - mean).abs() < 1e-9 * (1.0 + mean));
        assert_eq!(bm.completed_batches(), xs.len() as u64 / 10);
    });
}

/// Distribution samples respect their supports and (for constants) their
/// exact values.
#[test]
fn dist_samples_stay_in_support() {
    cases(200, 0xE0_07, |g| {
        let seed = g.u64_in(0..1_000);
        let mean = g.f64_in(0.01..50.0);
        let dev = g.f64_in(0.0..1.0);
        let mut rng = RngStream::new(seed);
        let c = Dist::constant(mean);
        assert_eq!(c.sample(&mut rng), mean);
        let e = Dist::exponential(mean);
        for _ in 0..50 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
        let u = Dist::uniform_deviation(mean, dev);
        for _ in 0..50 {
            let x = u.sample(&mut rng);
            assert!(x >= mean * (1.0 - dev) - 1e-12);
            assert!(x <= mean * (1.0 + dev) + 1e-12);
        }
        assert!(e.sample_count(&mut rng) >= 1);
    });
}

/// Substreams with distinct tags never produce the same initial draw
/// sequence (collision would break independence assumptions).
#[test]
fn substreams_do_not_collide() {
    cases(500, 0xE0_08, |g| {
        let seed = g.u64_in(0..500);
        let a = g.u64_in(0..64);
        let b = g.u64_in(0..64);
        if a == b {
            return;
        }
        let root = RngStream::new(seed);
        let mut sa = root.substream(a);
        let mut sb = root.substream(b);
        let va: Vec<u64> = (0..4).map(|_| sa.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| sb.next_u64()).collect();
        assert_ne!(va, vb, "case {}: substream collision", g.case());
    });
}
