//! Property-based tests of the simulation kernel's data structures.

use dqa_sim::random::{Dist, RngStream};
use dqa_sim::stats::{BatchMeans, Tally, TimeWeighted};
use dqa_sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping returns events in non-decreasing time order, regardless of
    /// push order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::new(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Events at identical timestamps preserve insertion order (stability),
    /// even interleaved with other timestamps.
    #[test]
    fn event_queue_is_stable(
        groups in prop::collection::vec((0.0f64..100.0, 1usize..8), 1..30)
    ) {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::new(t), (t.to_bits(), seq));
                seq += 1;
            }
        }
        let mut last_seq_at: std::collections::HashMap<u64, u64> = Default::default();
        while let Some((t, (bits, s))) = q.pop() {
            prop_assert_eq!(t.as_f64().to_bits(), bits);
            if let Some(&prev) = last_seq_at.get(&bits) {
                prop_assert!(s > prev, "same-time events out of insertion order");
            }
            last_seq_at.insert(bits, s);
        }
    }

    /// Welford tally matches the naive two-pass mean and variance.
    #[test]
    fn tally_matches_two_pass(xs in prop::collection::vec(-1e4f64..1e4, 2..300)) {
        let mut t = Tally::new();
        for &x in &xs {
            t.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((t.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((t.sample_variance() - var).abs() < 1e-5 * (1.0 + var));
        prop_assert_eq!(t.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(t.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging split tallies equals one combined tally.
    #[test]
    fn tally_merge_is_concatenation(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        ys in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut a = Tally::new();
        let mut b = Tally::new();
        let mut whole = Tally::new();
        for &x in &xs { a.record(x); whole.record(x); }
        for &y in &ys { b.record(y); whole.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.sample_variance() - whole.sample_variance()).abs()
                < 1e-6 * (1.0 + whole.sample_variance())
        );
    }

    /// The time average of a piecewise-constant signal equals the manual
    /// integral.
    #[test]
    fn time_weighted_matches_manual_integral(
        steps in prop::collection::vec((0.01f64..10.0, -50.0f64..50.0), 1..50)
    ) {
        let mut s = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut now = 0.0;
        let mut area = 0.0;
        let mut value = 0.0;
        for &(dt, v) in &steps {
            area += value * dt;
            now += dt;
            s.set(SimTime::new(now), v);
            value = v;
        }
        // extend one more unit at the final value
        area += value * 1.0;
        now += 1.0;
        let expected = area / now;
        prop_assert!((s.time_average(SimTime::new(now)) - expected).abs() < 1e-9 * (1.0 + expected.abs()));
    }

    /// Batch means: the grand mean equals the plain mean and the interval
    /// contains it when data are exchangeable.
    #[test]
    fn batch_means_grand_mean(xs in prop::collection::vec(0.0f64..100.0, 20..400)) {
        let mut bm = BatchMeans::new(10);
        for &x in &xs {
            bm.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((bm.mean() - mean).abs() < 1e-9 * (1.0 + mean));
        prop_assert_eq!(bm.completed_batches(), xs.len() as u64 / 10);
    }

    /// Distribution samples respect their supports and (for constants)
    /// their exact values.
    #[test]
    fn dist_samples_stay_in_support(
        seed in 0u64..1_000,
        mean in 0.01f64..50.0,
        dev in 0.0f64..1.0,
    ) {
        let mut rng = RngStream::new(seed);
        let c = Dist::constant(mean);
        prop_assert_eq!(c.sample(&mut rng), mean);
        let e = Dist::exponential(mean);
        for _ in 0..50 {
            prop_assert!(e.sample(&mut rng) >= 0.0);
        }
        let u = Dist::uniform_deviation(mean, dev);
        for _ in 0..50 {
            let x = u.sample(&mut rng);
            prop_assert!(x >= mean * (1.0 - dev) - 1e-12);
            prop_assert!(x <= mean * (1.0 + dev) + 1e-12);
        }
        prop_assert!(e.sample_count(&mut rng) >= 1);
    }

    /// Substreams with distinct tags never produce the same initial draw
    /// sequence (collision would break independence assumptions).
    #[test]
    fn substreams_do_not_collide(seed in 0u64..500, a in 0u64..64, b in 0u64..64) {
        prop_assume!(a != b);
        let root = RngStream::new(seed);
        let mut sa = root.substream(a);
        let mut sb = root.substream(b);
        let va: Vec<u64> = (0..4).map(|_| sa.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| sb.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }
}
