//! Central registry of RNG substream tags.
//!
//! Every random draw in the simulator comes from a child stream derived
//! from the replication's root [`dqa_sim::random::RngStream`] via
//! [`dqa_sim::random::RngStream::substream`]. The tag passed to `substream`
//! determines *which* independent stream a consumer gets, and the whole
//! common-random-numbers (CRN) methodology of the paper's comparisons —
//! and of our byte-identity tests — rests on two properties:
//!
//! 1. **Uniqueness.** No two consumers may share a tag, or their draws
//!    become correlated and a change in one perturbs the other.
//! 2. **Stability.** Tags must never change value, or previously recorded
//!    trajectories (and every bitwise `RunReport` equality test) break.
//!
//! This module is the single place tags are defined. `dqa-lint`'s
//! `substream-registry` rule rejects any `substream(<numeric literal>)`
//! call outside this registry and re-checks uniqueness of the constants
//! below, so a new consumer *must* claim a fresh named tag here.
//!
//! # Who draws what
//!
//! | constant | tag | consumer | draws |
//! |---|---|---|---|
//! | [`THINK`] | 1 | terminals | think times between queries |
//! | [`CLASS`] | 2 | workload generator | query class selection |
//! | [`READS`] | 3 | workload generator | number of reads per query |
//! | [`CPU`] | 4 | workload generator | per-read CPU demand |
//! | [`DISK`] | 5 | disk stations | per-access disk service time |
//! | [`CHOICE`] | 6 | model | uniform tie-breaks (disk choice, …) |
//! | [`ESTIMATE`] | 7 | optimizer model | estimate noise (ablation) |
//! | [`RELATION`] | 8 | workload generator | relation referenced by a query |
//! | [`UPDATE`] | 9 | workload generator | update-query coin flips |
//! | [`FAULT_CRASH`] | 10 | fault layer | site crash / repair times |
//! | [`FAULT_MSG`] | 11 | fault layer | query/result message-loss coins |
//! | [`FAULT_BACKOFF`] | 12 | fault layer | retry backoff jitter |
//! | [`FAULT_STATUS`] | 13 | fault layer | status-frame loss coins |
//! | [`DEADLINE`] | 14 | resilience layer | per-query deadline draws |
//! | [`REALLOC_BACKOFF`] | 15 | resilience layer | reallocation backoff jitter |
//! | [`ARRIVAL`] | 16 | open-arrival layer | thinning candidate gaps + accept coins |
//! | [`BURST`] | 17 | open-arrival layer | MMPP burst-state dwell times |
//! | [`USER`] | 18 | user population | Zipf user selection + affinity coins |
//! | [`SESSION`] | 19 | user population | per-user session state at first touch |
//! | [`REDUNDANCY`] | 20 | redundancy layer | hedged-dispatch coin flips |
//! | [`POLICY_RANDOM`] | 0xD1CE | RANDOM policy | uniform site selection |
//!
//! Tags 1–9 are the workload/model streams that exist in every run; tags
//! 10–13 belong to the fault layer, 14–15 to the resilience layer, 16–17
//! to the time-varying open-arrival layer, 18–19 to the user
//! population model, and 20 to the hedged-redundancy layer, so runs with
//! those layers disabled never draw from
//! them and stay byte-identical to seed trajectories (CRN, asserted in
//! `tests/fault_tolerance.rs`, `tests/resilience.rs`, and
//! `tests/live_service.rs`). The RANDOM policy's stream is deliberately
//! far from the dense range so the model can grow new streams without
//! colliding with it.

/// Terminal think times between consecutive queries of one terminal.
pub const THINK: u64 = 1;
/// Query class selection (I/O-bound vs CPU-bound mix).
pub const CLASS: u64 = 2;
/// Number of reads a query performs.
pub const READS: u64 = 3;
/// Per-read CPU demand.
pub const CPU: u64 = 4;
/// Per-access disk service time deviation.
pub const DISK: u64 = 5;
/// Uniform tie-breaking choices (e.g. which disk serves a read).
pub const CHOICE: u64 = 6;
/// Optimizer estimate noise (estimate-error ablation).
pub const ESTIMATE: u64 = 7;
/// Which relation a query references (partial replication).
pub const RELATION: u64 = 8;
/// Update-query coin flips.
pub const UPDATE: u64 = 9;
/// Fault layer: site crash and repair (MTBF/MTTR) event times.
pub const FAULT_CRASH: u64 = 10;
/// Fault layer: query/result message-loss Bernoulli coins.
pub const FAULT_MSG: u64 = 11;
/// Fault layer: jittered-exponential retry backoff.
pub const FAULT_BACKOFF: u64 = 12;
/// Fault layer: status-frame loss Bernoulli coins.
pub const FAULT_STATUS: u64 = 13;
/// Resilience layer: per-query deadline draws (floor + Exp(mean)).
pub const DEADLINE: u64 = 14;
/// Resilience layer: jittered reallocation backoff.
pub const REALLOC_BACKOFF: u64 = 15;
/// Open-arrival layer: nonhomogeneous-Poisson thinning (candidate
/// inter-arrival gaps and acceptance coins).
pub const ARRIVAL: u64 = 16;
/// Open-arrival layer: MMPP burst-chain state dwell times.
pub const BURST: u64 = 17;
/// User population: Zipf user selection and class-affinity coins.
pub const USER: u64 = 18;
/// User population: per-user session state drawn at first touch
/// (preferred class, session length).
pub const SESSION: u64 = 19;
/// Redundancy layer: per-query hedged-dispatch Bernoulli coins. Drawn
/// once per hedge-eligible submit whenever the spec is active —
/// *independent* of the controller's current effective level — so the
/// coin sequence is load-invariant (CRN across redundancy settings).
pub const REDUNDANCY: u64 = 20;
/// The RANDOM allocation policy's site-selection stream. Kept far from
/// the dense model range so new model streams can be appended freely.
pub const POLICY_RANDOM: u64 = 0xD1CE;

/// Derives the per-site child of a registered stream:
/// `root.substream(tag).substream(site)`.
///
/// The parallel-in-time executor partitions every model stream by site so
/// that each logical process draws from streams no other LP touches —
/// draw *order* across sites then cannot perturb the trajectory, which is
/// what makes the sharded schedule byte-identical to the serial one. The
/// serial path uses the exact same derivation (DESIGN.md §12). The outer
/// tag must come from this registry; the inner index is the site number,
/// not a registry tag — each registered tag owns the whole family of its
/// per-site children.
#[must_use]
pub fn per_site(
    root: &dqa_sim::random::RngStream,
    tag: u64,
    site: usize,
) -> dqa_sim::random::RngStream {
    root.substream(tag).substream(site as u64)
}

/// Every registered tag, for uniqueness checks and documentation tooling.
pub const ALL: &[(&str, u64)] = &[
    ("THINK", THINK),
    ("CLASS", CLASS),
    ("READS", READS),
    ("CPU", CPU),
    ("DISK", DISK),
    ("CHOICE", CHOICE),
    ("ESTIMATE", ESTIMATE),
    ("RELATION", RELATION),
    ("UPDATE", UPDATE),
    ("FAULT_CRASH", FAULT_CRASH),
    ("FAULT_MSG", FAULT_MSG),
    ("FAULT_BACKOFF", FAULT_BACKOFF),
    ("FAULT_STATUS", FAULT_STATUS),
    ("DEADLINE", DEADLINE),
    ("REALLOC_BACKOFF", REALLOC_BACKOFF),
    ("ARRIVAL", ARRIVAL),
    ("BURST", BURST),
    ("USER", USER),
    ("SESSION", SESSION),
    ("REDUNDANCY", REDUNDANCY),
    ("POLICY_RANDOM", POLICY_RANDOM),
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn tags_are_unique() {
        for (i, (name_a, tag_a)) in ALL.iter().enumerate() {
            for (name_b, tag_b) in &ALL[i + 1..] {
                assert_ne!(
                    tag_a, tag_b,
                    "substream tag collision: {name_a} and {name_b} both use {tag_a}"
                );
            }
        }
    }

    #[test]
    fn registry_covers_historical_values() {
        // The numeric values are load-bearing: they are what every recorded
        // byte-identity trajectory was generated with. Freeze them.
        let expected: Vec<u64> = (1..=20).chain(std::iter::once(0xD1CE)).collect();
        let actual: Vec<u64> = ALL.iter().map(|&(_, t)| t).collect();
        assert_eq!(actual, expected);
    }
}
