//! Plain-text table rendering for experiment output.
//!
//! The benchmark binaries print each reproduced table in the same row/column
//! layout as the paper; this tiny formatter keeps them dependency-free.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use dqa_core::table::TextTable;
///
/// let mut t = TextTable::new(vec!["policy", "W̄"]);
/// t.row(vec!["LOCAL".into(), "22.71".into()]);
/// t.row(vec!["LERT".into(), "12.82".into()]);
/// let s = t.to_string();
/// assert!(s.contains("LOCAL"));
/// assert!(s.lines().count() >= 4); // header + separator + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                // right-pad with spaces to the column width
                write!(f, "{cell}")?;
                for _ in cell.chars().count()..*w {
                    write!(f, " ")?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimals ("22.71").
#[must_use]
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a percentage with two decimals ("38.53").
#[must_use]
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "longer"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // header and row have the same rendered width
        assert!(lines[0].trim_end().len() <= lines[1].len());
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn tracks_row_count() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        t.row(vec!["2".into()]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(22.7149, 2), "22.71");
        assert_eq!(fmt_pct(38.534), "38.53");
    }
}
