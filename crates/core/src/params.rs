//! System, site, and class parameters (Tables 1–3 and 7 of the paper).

use std::error::Error;
use std::fmt;

/// Identifies a DB site. Sites are numbered `0..num_sites`.
pub type SiteId = usize;

/// Identifies a query class. Classes are numbered `0..classes.len()`; the
/// paper's two-class workload uses `0` for the I/O-bound class and `1` for
/// the CPU-bound class.
pub type ClassId = usize;

/// Mid-execution migration of partially executed queries — the paper's
/// first item of future work (§6.2: "moving partially executed queries
/// from site to site at certain critical times ... probably between its
/// primitive relational operations").
///
/// A migrating query re-runs the allocation decision every
/// `check_every_reads` completed reads, over its *remaining* work. Moving
/// is charged a transfer whose length grows with the partial results
/// accumulated so far (the paper's footnote: results accumulate in main
/// memory as the query executes), and only happens when the estimated
/// gain exceeds `min_gain` in the policy's cost units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationSpec {
    /// Re-evaluate the placement after every this many completed reads.
    pub check_every_reads: u32,
    /// Required estimated improvement (stay-cost minus move-cost, in the
    /// allocation policy's cost units) before a move is made. Guards
    /// against thrashing on marginal differences.
    pub min_gain: f64,
    /// Growth of the migration message per completed read, as a fraction
    /// of `msg_length`: the state carried is
    /// `msg_length * (1 + state_growth * reads_done)`.
    pub state_growth: f64,
}

impl Default for MigrationSpec {
    /// Check every 5 reads, demand a gain of one mean read's worth of
    /// time, and grow state by half a message per read.
    fn default() -> Self {
        MigrationSpec {
            check_every_reads: 5,
            min_gain: 2.0,
            state_growth: 0.5,
        }
    }
}

/// Fault-injection parameters (a robustness extension; the paper assumes
/// "the sites never fail" and a perfectly reliable subnet, §2).
///
/// Site crashes are fail-stop with perfect detection: a crashed site loses
/// the queries resident at its stations, its load-table row is marked
/// unavailable to every policy immediately, and it rejoins after an
/// exponential repair time. Message loss strikes token-ring frames at
/// delivery. All fault randomness is drawn from dedicated RNG substreams,
/// so two runs that differ only in their fault rates still share every
/// workload draw (common random numbers), and a spec with all rates zero
/// reproduces the fault-free trajectory byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Mean time between failures per site (exponential). `0.0` disables
    /// crashes entirely.
    pub mtbf: f64,
    /// Mean time to repair a crashed site (exponential). Must be positive
    /// when `mtbf > 0`.
    pub mttr: f64,
    /// Probability that a token-ring frame (query, result, or status) is
    /// lost at delivery. `0.0` disables message loss.
    pub msg_loss: f64,
    /// Probability that one free status-exchange round is dropped (only
    /// meaningful with `status_period > 0` and `status_msg_length == 0`).
    pub status_loss: f64,
    /// Bounded retry budget per query. A query whose retries exceed this
    /// is abandoned (its terminal thinks and submits a fresh query).
    pub max_retries: u32,
    /// Base delay of the exponential backoff: retry `k` waits roughly
    /// `backoff_base * 2^(k-1)`, jittered ±50%.
    pub backoff_base: f64,
    /// Start time of an injected network partition. Only meaningful with
    /// `partition_groups >= 2` and `partition_for > 0`.
    pub partition_at: f64,
    /// Duration of the injected partition; `0.0` disables it.
    pub partition_for: f64,
    /// Number of disjoint contiguous site groups the token ring splits
    /// into while the partition is active (site `s` belongs to group
    /// `s * groups / num_sites`). Query/result frames crossing a group
    /// boundary are dropped at delivery; `0` (or `1`) disables the
    /// partition.
    pub partition_groups: u32,
}

impl Default for FaultSpec {
    /// Crashes disabled, repairs of 50 time units when enabled, no message
    /// loss, 5 retries on a base backoff of 10 time units, no partition.
    fn default() -> Self {
        FaultSpec {
            mtbf: 0.0,
            mttr: 50.0,
            msg_loss: 0.0,
            status_loss: 0.0,
            max_retries: 5,
            backoff_base: 10.0,
            partition_at: 0.0,
            partition_for: 0.0,
            partition_groups: 0,
        }
    }
}

impl FaultSpec {
    /// Whether any fault process is actually switched on.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mtbf > 0.0 || self.msg_loss > 0.0 || self.status_loss > 0.0 || self.has_partition()
    }

    /// Whether an injected ring partition is configured.
    #[must_use]
    pub fn has_partition(&self) -> bool {
        self.partition_groups >= 2 && self.partition_for > 0.0
    }
}

/// One deterministic fault-environment action in a replay script.
///
/// Scripted actions bypass the stochastic fault processes entirely: a
/// scripted crash draws no repair time and schedules no follow-up, a
/// scripted partition toggle ignores `partition_at`/`partition_for`.
/// This is how `dqa-check` counterexample traces are replayed through
/// the simulator — the checker's abstract fault schedule becomes an
/// exact, RNG-free event sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptAction {
    /// Crash a site (drops its resident queries; no repair is scheduled).
    SiteDown(usize),
    /// Bring a crashed site back up (no follow-up crash is scheduled).
    SiteUp(usize),
    /// Activate the ring partition (`partition_groups` must be >= 2).
    PartitionStart,
    /// Heal the ring partition.
    PartitionHeal,
}

/// A timed [`ScriptAction`]: `action` fires at simulated time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptEntry {
    /// Simulated time at which the action fires.
    pub at: f64,
    /// The fault-environment action to apply.
    pub action: ScriptAction,
}

/// Per-query deadlines with bounded reallocation (a robustness
/// extension; the paper assumes every submitted query runs to
/// completion wherever it was placed).
///
/// Each submitted query draws a deadline `floor + Exp(mean)` from a
/// dedicated RNG substream when it is allocated. A query still executing
/// when its deadline expires is cancelled at its site — its unserved work
/// is unwound from the PS/FCFS stations — and re-allocated to the current
/// best site after a jittered exponential backoff, up to
/// `max_reallocations` times; after that it is abandoned. A fresh
/// deadline is armed per allocation attempt. `mean == 0` disables the
/// whole lifecycle (no draws, trajectory-identical to `None`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineSpec {
    /// Mean of the exponential slack added on top of `floor`. `0.0`
    /// disables deadlines entirely.
    pub mean: f64,
    /// Minimum deadline granted to every query.
    pub floor: f64,
    /// How many times an expired query may be re-allocated before it is
    /// abandoned (`0` = abandon on first expiry).
    pub max_reallocations: u32,
    /// Base delay of the jittered exponential backoff between a
    /// cancellation and the reallocation attempt (same shape as
    /// [`FaultSpec::backoff_base`], drawn from the resilience substream).
    pub backoff_base: f64,
}

impl Default for DeadlineSpec {
    /// Deadlines disabled; when enabled: no floor, 2 reallocations on a
    /// base backoff of 5 time units.
    fn default() -> Self {
        DeadlineSpec {
            mean: 0.0,
            floor: 0.0,
            max_reallocations: 2,
            backoff_base: 5.0,
        }
    }
}

impl DeadlineSpec {
    /// Whether deadlines are actually drawn.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mean > 0.0
    }
}

/// Heartbeat-style failure suspicion with hysteresis, built on the
/// costed status broadcasts (`status_period > 0`,
/// `status_msg_length > 0`).
///
/// Every site expects one status frame per peer per `status_period`.
/// An observer that has not heard a peer for `threshold` consecutive
/// periods marks it *suspected* and its `SelectSite` scan quarantines it
/// (unless no trusted candidate remains, in which case suspicion is
/// ignored rather than stalling allocation). A suspected peer is trusted
/// again only after `probation` consecutive broadcasts are heard —
/// hysteresis against flapping on a congested ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspicionSpec {
    /// Missed broadcast periods before a peer is suspected.
    pub threshold: u32,
    /// Consecutive heard broadcasts before a suspected peer is trusted
    /// again.
    pub probation: u32,
}

impl Default for SuspicionSpec {
    /// Suspect after 3 silent periods; rejoin after 2 heard broadcasts.
    fn default() -> Self {
        SuspicionSpec {
            threshold: 3,
            probation: 2,
        }
    }
}

/// What an admission-controlled site does with a query it cannot accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SheddingMode {
    /// Send the query into a jittered backoff and re-run the allocation
    /// decision, up to [`AdmissionSpec::max_retries`] times; exhausted
    /// queries are dropped (with a metric).
    #[default]
    RejectRetry,
    /// Redirect to the least-loaded trusted candidate that still has
    /// room; falls back to [`SheddingMode::RejectRetry`] when every
    /// alternative is also full.
    Redirect,
    /// Drop the query immediately, counting it; its terminal thinks and
    /// submits a fresh query.
    Drop,
}

/// Per-site admission control with load shedding (a robustness
/// extension: the paper's sites accept every query routed to them).
///
/// A site is *full* when its resident multiprogramming level reaches
/// `mpl_cap` or its allocated-queue length reaches `queue_limit`; full
/// sites shed new work per `mode`, and advertise a backpressure bit on
/// their status broadcasts that demand-aware allocation treats as "do
/// not route here".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSpec {
    /// Maximum queries resident at the site's stations (CPU + disks)
    /// before new arrivals are shed. `None` = uncapped.
    pub mpl_cap: Option<u32>,
    /// Maximum queries allocated to the site (resident plus in transit)
    /// before new arrivals are shed. `None` = uncapped.
    pub queue_limit: Option<u32>,
    /// What happens to a shed query.
    pub mode: SheddingMode,
    /// Retry budget under [`SheddingMode::RejectRetry`] before a shed
    /// query is dropped.
    pub max_retries: u32,
    /// Base delay of the jittered exponential backoff between a
    /// rejection and the next allocation attempt.
    pub backoff_base: f64,
}

impl Default for AdmissionSpec {
    /// No caps (inactive); when capped: reject-to-retry with 5 retries
    /// on a base backoff of 10 time units.
    fn default() -> Self {
        AdmissionSpec {
            mpl_cap: None,
            queue_limit: None,
            mode: SheddingMode::RejectRetry,
            max_retries: 5,
            backoff_base: 10.0,
        }
    }
}

impl AdmissionSpec {
    /// Whether any cap is actually configured.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mpl_cap.is_some() || self.queue_limit.is_some()
    }
}

/// Hedged replicate-to-`n` dispatch with first-win cancellation (a
/// robustness extension after Aktaş & Soljanin's redundancy-d access
/// model; the paper's policies pick exactly one site per query).
///
/// An eligible query — read-only, admitted, with at least two usable
/// candidate sites under the replication catalog — is dispatched to up
/// to `max_level` candidate sites: the policy's chosen primary plus the
/// cheapest remaining candidates under the policy's own cost order.
/// The first attempt to finish executing wins; explicit cancel frames
/// reap the losers phase-exactly from the PS/FCFS stations and the
/// ring. Cancel frames are fire-and-forget (they may be lost to message
/// loss or a partition); a loser whose cancel never arrived is discarded
/// at completion time instead, so exactly one completion is ever
/// counted per logical query.
///
/// The *load-adaptive controller* throttles the effective level toward
/// 1 as observed load rises: each multiple of `load_threshold` in the
/// mean published board load per available site steps the level down by
/// one, and when more than `full_threshold` of the available sites
/// advertise their admission backpressure bit, hedging switches off
/// entirely — redundancy degrades gracefully instead of amplifying
/// overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedundancySpec {
    /// Maximum number of sites a hedged query is dispatched to. `0` or
    /// `1` disables hedging entirely (trajectory-identical to `None`:
    /// the `REDUNDANCY` substream is never drawn).
    pub max_level: u32,
    /// Probability that an eligible query is hedged, in `[0, 1]`. The
    /// coin comes from the dedicated per-site `REDUNDANCY` substream and
    /// is drawn once per eligible submit whenever the spec is active,
    /// independent of the controller's current effective level (CRN
    /// across load conditions). `0.0` disables hedging (no draws).
    pub hedge_prob: f64,
    /// Mean published board load per available site at which the
    /// controller steps the effective level down by one (two thresholds
    /// of load = two steps, and so on). `0.0` disables load throttling.
    pub load_threshold: f64,
    /// Fraction of available sites advertising the backpressure `full`
    /// bit above which hedging turns off entirely, in `[0, 1]`. `1.0`
    /// never turns hedging off.
    pub full_threshold: f64,
}

impl Default for RedundancySpec {
    /// Hedging disabled; when enabled: every eligible query hedges, no
    /// load throttle, backpressure cut-off at half the sites full.
    fn default() -> Self {
        RedundancySpec {
            max_level: 0,
            hedge_prob: 1.0,
            load_threshold: 0.0,
            full_threshold: 0.5,
        }
    }
}

impl RedundancySpec {
    /// Whether hedged dispatch can actually occur. `false` guarantees
    /// the run is byte-identical to `redundancy: None` (the
    /// `REDUNDANCY` substream is never drawn).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.max_level >= 2 && self.hedge_prob > 0.0
    }
}

/// Time-varying open-arrival modulation (the "live service" extension;
/// the paper's open door, `ext_open_overload`, is a constant-rate Poisson
/// stream).
///
/// The spec turns [`Workload::Open`]'s `arrival_rate` into the *mean base
/// rate* of a nonhomogeneous Poisson process
/// `λ(t) = base · diurnal(t) · flash(t) · burst(t)` with three layers:
///
/// * **Diurnal curve** — a sinusoid `1 + amplitude · sin(2πt / period)`
///   modeling the daily load cycle.
/// * **Flash crowd** — a deterministic window `[flash_at, flash_at +
///   flash_for)` during which the rate is multiplied by
///   `flash_multiplier` (a breaking-news spike every site sees at once).
/// * **MMPP burst chain** — a two-state Markov-modulated Poisson layer
///   per site: exponential dwell times (`burst_off_mean` quiet,
///   `burst_on_mean` bursty) and a rate factor `burst_multiplier` while
///   ON, modeling correlated arrival bursts.
///
/// Arrivals are generated *lazily by thinning*: each site keeps exactly
/// one pending-arrival event, drawing candidate gaps at the envelope rate
/// [`ArrivalSpec::lambda_max`] and accepting each candidate with
/// probability `λ(t)/λ_max` — never a pre-materialized schedule, so a
/// million-query horizon costs O(1) memory. All draws come from the
/// dedicated per-site `ARRIVAL`/`BURST` substreams, so a spec with no
/// modulation (`is_active() == false`) draws nothing and reproduces the
/// constant-rate trajectory byte for byte (CRN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Amplitude of the diurnal sinusoid, in `[0, 1)`. `0.0` disables the
    /// diurnal layer.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid in simulated time units.
    pub diurnal_period: f64,
    /// Start of the flash-crowd window.
    pub flash_at: f64,
    /// Duration of the flash-crowd window; `0.0` disables the flash layer.
    pub flash_for: f64,
    /// Rate multiplier while the flash crowd is active (`> 0`; values
    /// above 1 spike the load, below 1 model a brown-out).
    pub flash_multiplier: f64,
    /// Rate multiplier while a site's burst chain is ON (`>= 1`; `1.0`
    /// disables the MMPP layer).
    pub burst_multiplier: f64,
    /// Mean dwell time of the bursty (ON) state.
    pub burst_on_mean: f64,
    /// Mean dwell time of the quiet (OFF) state.
    pub burst_off_mean: f64,
}

impl Default for ArrivalSpec {
    /// All layers disabled (trajectory-identical to `None`); when
    /// enabled: a 10 000-unit diurnal period and 200-on/2 000-off burst
    /// dwells.
    fn default() -> Self {
        ArrivalSpec {
            diurnal_amplitude: 0.0,
            diurnal_period: 10_000.0,
            flash_at: 0.0,
            flash_for: 0.0,
            flash_multiplier: 1.0,
            burst_multiplier: 1.0,
            burst_on_mean: 200.0,
            burst_off_mean: 2_000.0,
        }
    }
}

impl ArrivalSpec {
    /// Whether any modulation layer is switched on. `false` guarantees
    /// the run is byte-identical to `arrivals: None` (the `ARRIVAL` and
    /// `BURST` substreams are never drawn).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.diurnal_amplitude > 0.0 || self.has_flash() || self.has_burst()
    }

    /// Whether the flash-crowd window is configured.
    #[must_use]
    pub fn has_flash(&self) -> bool {
        // dqa-lint: allow(no-float-eq) -- 1.0 is the exact inert-sentinel default; any other value configures a flash
        self.flash_for > 0.0 && self.flash_multiplier != 1.0
    }

    /// Whether the MMPP burst layer is configured.
    #[must_use]
    pub fn has_burst(&self) -> bool {
        self.burst_multiplier > 1.0
    }

    /// The deterministic (non-burst) rate factor at time `t`:
    /// `diurnal(t) · flash(t)`.
    #[must_use]
    pub fn modulation_at(&self, t: f64) -> f64 {
        let diurnal = if self.diurnal_amplitude > 0.0 {
            1.0 + self.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * t / self.diurnal_period).sin()
        } else {
            1.0
        };
        let flash = if self.has_flash() && t >= self.flash_at && t < self.flash_at + self.flash_for
        {
            self.flash_multiplier
        } else {
            1.0
        };
        diurnal * flash
    }

    /// The thinning envelope rate: an upper bound on `λ(t)` for every `t`
    /// and burst state, given the base rate.
    #[must_use]
    pub fn lambda_max(&self, base_rate: f64) -> f64 {
        base_rate
            * (1.0 + self.diurnal_amplitude)
            * self.flash_envelope()
            * self.burst_multiplier.max(1.0)
    }

    /// The flash layer's contribution to the envelope (`>= 1`).
    fn flash_envelope(&self) -> f64 {
        if self.has_flash() {
            self.flash_multiplier.max(1.0)
        } else {
            1.0
        }
    }
}

/// A million-user population with heavy-tailed per-user session state
/// (the "live service" extension; without it every open arrival is an
/// anonymous query from nowhere).
///
/// The user space is partitioned evenly across sites (a user's *home* is
/// the site whose shard holds it — structural home affinity: all of a
/// user's queries originate there). Each arrival at a site selects a user
/// from the site's shard by a Zipf-like power law, so a small hot set of
/// users dominates traffic. Per-user state — preferred query class and
/// remaining session length — is materialized *on first touch* into a
/// compact open-addressed arena ([`crate::users::UserArena`]) and evicted
/// when the session ends, so memory is proportional to *active* users,
/// never `O(total_users)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserSpec {
    /// Total simulated users across all sites. `0` disables the
    /// population model (trajectory-identical to `None`).
    pub total_users: u64,
    /// Zipf popularity exponent `s >= 0` over each site's user shard
    /// (`0` = uniform selection; larger = heavier skew toward hot users).
    pub zipf_exponent: f64,
    /// Mean queries per user session (exponential, rounded up to at least
    /// one — the same shape as per-query read counts). When a session's
    /// queries are spent the user's state is evicted from the arena.
    pub session_mean: f64,
    /// Probability that a query takes its user's preferred class instead
    /// of an independent draw from the global class mix, in `[0, 1]`.
    pub class_affinity: f64,
}

impl Default for UserSpec {
    /// Inactive (`total_users == 0`); when enabled: Zipf 1.2, 20-query
    /// sessions, 0.8 class affinity.
    fn default() -> Self {
        UserSpec {
            total_users: 0,
            zipf_exponent: 1.2,
            session_mean: 20.0,
            class_affinity: 0.8,
        }
    }
}

impl UserSpec {
    /// Whether the population model is switched on. `false` guarantees
    /// the run is byte-identical to `users: None` (the `USER` and
    /// `SESSION` substreams are never drawn).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.total_users > 0
    }

    /// The size of site `site`'s user shard (users are dealt round-robin,
    /// so shards differ by at most one user).
    #[must_use]
    pub fn shard_size(&self, site: SiteId, num_sites: usize) -> u64 {
        let n = num_sites as u64;
        let site = site as u64;
        self.total_users / n + u64::from(site < self.total_users % n)
    }
}

/// How queries enter the system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Workload {
    /// The paper's closed model: `mpl` terminals per site, each thinking
    /// (mean `think_time`) between queries.
    #[default]
    Closed,
    /// An open model: each site receives an independent Poisson stream of
    /// queries; completions leave the system. Useful for overload and
    /// stability-frontier studies that a closed model cannot express
    /// (its population is bounded by construction).
    Open {
        /// Mean query arrivals per time unit, per site.
        arrival_rate: f64,
    },
}

/// How a query picks a disk for each page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskChoice {
    /// Uniformly random disk per read — matches the MVA model's visit
    /// ratio of `1/num_disks` per disk and is the default.
    #[default]
    Random,
    /// Cycle through the disks per site in fixed order.
    RoundRobin,
    /// Join the disk with the fewest queued requests (ties to the lowest
    /// index). An ablation: real systems often do this, the paper's
    /// analytic model does not.
    ShortestQueue,
}

/// Workload parameters of one query class (Table 2 / Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Human-readable name ("io-bound", "cpu-bound").
    pub name: String,
    /// Mean CPU time to process one page read from disk
    /// (`page_cpu_time`).
    pub page_cpu_time: f64,
    /// Mean number of disk reads per query (`num_reads`); per-query counts
    /// are exponential with this mean, rounded to at least one read.
    pub num_reads: f64,
    /// Probability that a newly generated query belongs to this class
    /// (`class_prob`).
    pub probability: f64,
    /// Bytes needed to describe a query of the class (`query_size`,
    /// Table 2) — the dispatch-message payload under
    /// [`MessageCosting::Detailed`].
    pub query_size: f64,
    /// Mean result pages per page read (`result_fraction`, Table 2) —
    /// sizes the result message under [`MessageCosting::Detailed`].
    pub result_fraction: f64,
}

impl ClassSpec {
    /// Creates a class spec with Table-2 message-shape defaults
    /// (`query_size` 4000 bytes, `result_fraction` 0.2).
    #[must_use]
    pub fn new(name: &str, page_cpu_time: f64, num_reads: f64, probability: f64) -> Self {
        ClassSpec {
            name: name.to_owned(),
            page_cpu_time,
            num_reads,
            probability,
            query_size: 4_000.0,
            result_fraction: 0.2,
        }
    }

    /// Overrides the Table-2 message-shape parameters.
    #[must_use]
    pub fn with_message_shape(mut self, query_size: f64, result_fraction: f64) -> Self {
        self.query_size = query_size;
        self.result_fraction = result_fraction;
        self
    }
}

/// How remote-execution messages are priced (Tables 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MessageCosting {
    /// The paper's simulation-study simplification: `result_fraction`,
    /// `query_size`, and `msg_time` "are currently combined into a single
    /// parameter, `msg_length`" (§5.1) — every dispatch and result takes
    /// `msg_length` time units.
    #[default]
    Combined,
    /// The full Table-2/3 decomposition: a dispatch takes
    /// `query_size × msg_time`, and a result takes
    /// `result_fraction × reads × page_size × msg_time` — big queries
    /// return big results, so the network price varies per query (and
    /// LERT's Figure-6 net term can see it).
    Detailed {
        /// Network transfer time for one byte (`msg_time`, Table 3).
        msg_time: f64,
        /// Disk page size in bytes (`page_size`, Table 3).
        page_size: f64,
    },
}

/// Error from [`SystemParams::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// A field that must be positive was not.
    NonPositive {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A field that must be a valid fraction was not.
    BadFraction {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The system needs at least one site / disk / terminal / class.
    Missing {
        /// What is missing.
        what: &'static str,
    },
    /// Class probabilities do not sum to 1.
    BadClassProbabilities {
        /// The actual sum.
        sum: f64,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::NonPositive { field, value } => {
                write!(f, "`{field}` must be positive, got {value}")
            }
            ParamsError::BadFraction { field, value } => {
                write!(f, "`{field}` must lie in [0, 1], got {value}")
            }
            ParamsError::Missing { what } => write!(f, "system needs at least one {what}"),
            ParamsError::BadClassProbabilities { sum } => {
                write!(f, "class probabilities must sum to 1, got {sum}")
            }
        }
    }
}

impl Error for ParamsError {}

/// Complete parameterization of the distributed database system
/// (Tables 1, 2, 3, and 7 of the paper).
///
/// Construct with [`SystemParams::builder`]; [`SystemParams::paper_base`]
/// gives the simulation study's base configuration (6 sites, 2 disks,
/// `mpl = 20`, `think_time = 350`, a 50/50 mix of I/O-bound
/// (`page_cpu_time = 0.05`) and CPU-bound (`1.0`) queries with 20 reads
/// each, `msg_length = 1`).
///
/// # Example
///
/// ```
/// use dqa_core::params::SystemParams;
///
/// let params = SystemParams::builder()
///     .num_sites(4)
///     .mpl(10)
///     .think_time(200.0)
///     .build()?;
/// assert_eq!(params.num_sites, 4);
/// assert_eq!(params.classes.len(), 2);
/// # Ok::<(), dqa_core::params::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// Number of DB sites (`num_sites`).
    pub num_sites: usize,
    /// Disks per site (`num_disks`).
    pub num_disks: u32,
    /// Mean disk page access time (`disk_time`); the model's unit of time.
    pub disk_time: f64,
    /// Half-width of the uniform disk-time distribution, as a fraction of
    /// `disk_time` (`disk_time_dev`, 20% in the paper).
    pub disk_time_dev: f64,
    /// Terminals per site (`mpl`).
    pub mpl: u32,
    /// Mean terminal think time (`think_time`), exponentially distributed.
    pub think_time: f64,
    /// The query classes with their probabilities (`class_prob`).
    pub classes: Vec<ClassSpec>,
    /// Time units to send a query to a remote site or return its results
    /// (`msg_length`, the paper's combination of `result_fraction`,
    /// `query_size`, and `msg_time`). Used under
    /// [`MessageCosting::Combined`], and for status/migration/propagation
    /// frames under either costing.
    pub msg_length: f64,
    /// How dispatch and result messages are priced.
    pub message_costing: MessageCosting,
    /// Disk-selection discipline per page read.
    pub disk_choice: DiskChoice,
    /// Relative error applied to the optimizer's read-count estimate seen
    /// by policies: the estimate is drawn uniformly from
    /// `actual * (1 ± estimate_error)`. `0.0` (the paper's assumption)
    /// means perfect estimates.
    pub estimate_error: f64,
    /// Period between load-status exchanges. `0.0` (the paper's
    /// assumption) means every site always sees the instantaneous load of
    /// every other site.
    pub status_period: f64,
    /// Transfer time of one status broadcast on the ring. `0.0` makes the
    /// periodic exchange free and globally synchronized (the idealized
    /// stale model); a positive value makes each site broadcast its own
    /// row as a real ring message every `status_period`, so status
    /// traffic competes with query transfers and arrives late — the §4.4
    /// information-exchange question made concrete.
    pub status_msg_length: f64,
    /// Number of relations in the database. Each query references one
    /// relation, drawn uniformly. Irrelevant under full replication.
    pub num_relations: usize,
    /// Copies per relation: `None` is the paper's fully replicated
    /// database; `Some(k)` places `k` copies round-robin
    /// ([`crate::replication::Catalog`]), restricting each query's
    /// candidate sites to the holders of its relation (the §6.2
    /// partially-replicated extension).
    pub copies: Option<u32>,
    /// Mid-execution query migration (the §6.2 extension); `None`
    /// reproduces the paper's allocate-once-at-start model.
    pub migration: Option<MigrationSpec>,
    /// Per-site CPU speed factors (1.0 = nominal; a site with factor 2
    /// finishes CPU bursts twice as fast). `None` is the paper's
    /// "completely homogeneous" assumption (§2). Demand-aware policies
    /// (LERT) read the factors through [`SystemParams::cpu_speed`];
    /// count-based policies are speed-blind by construction.
    pub cpu_speeds: Option<Vec<f64>>,
    /// How queries enter the system (closed terminals vs open Poisson
    /// sources). Closed is the paper's model; `mpl`/`think_time` are
    /// ignored under [`Workload::Open`].
    pub workload: Workload,
    /// Probability that a query is an *update*. The paper studies
    /// read-only queries, noting that "updates must be propagated to all
    /// sites regardless of the processing site"; with a positive fraction
    /// this model makes that cost explicit: when an update finishes
    /// executing, an asynchronous apply job is shipped over the ring to
    /// every other holder of its relation (read-one-write-all).
    pub update_fraction: f64,
    /// Work of one apply job as a fraction of the originating update's
    /// read count (applying a logged write is cheaper than computing it).
    /// Zero disables propagation entirely.
    pub propagation_factor: f64,
    /// Fault injection (site crashes, message loss, status dropouts,
    /// ring partition). `None` is the paper's reliability assumption;
    /// `Some` with all rates zero is trajectory-identical to `None`.
    pub faults: Option<FaultSpec>,
    /// Per-query deadlines with cancellation and bounded reallocation.
    /// `None` (or a spec with `mean == 0`) reproduces the paper's
    /// run-to-completion model byte for byte.
    pub deadlines: Option<DeadlineSpec>,
    /// Heartbeat suspicion/quarantine on the costed status broadcasts.
    /// Requires `status_period > 0` and `status_msg_length > 0`; `None`
    /// disables the detector (no site is ever quarantined).
    pub suspicion: Option<SuspicionSpec>,
    /// Per-site admission control with load shedding. `None` (or a spec
    /// with no caps) accepts every query, as the paper does.
    pub admission: Option<AdmissionSpec>,
    /// Hedged replicate-to-`n` dispatch with first-win cancellation and
    /// a load-adaptive redundancy controller. `None` (or an inactive
    /// spec) reproduces the paper's one-site-per-query model byte for
    /// byte.
    pub redundancy: Option<RedundancySpec>,
    /// Time-varying open-arrival modulation (diurnal curve, flash crowd,
    /// MMPP bursts). Requires [`Workload::Open`] when active; `None` (or
    /// an inactive spec) keeps the constant-rate Poisson stream and is
    /// trajectory-inert.
    pub arrivals: Option<ArrivalSpec>,
    /// Heavy-tailed user population with lazy per-user session state.
    /// Requires [`Workload::Open`] when active; `None` (or an inactive
    /// spec) is trajectory-inert.
    pub users: Option<UserSpec>,
    /// Deterministic fault-environment script: timed crash/repair and
    /// partition toggles that fire exactly as written, drawing no random
    /// numbers. Requires `faults` to be set (the retry/partition
    /// machinery lives there); an empty script is trajectory-inert.
    /// Used to replay `dqa-check` counterexample traces.
    pub script: Vec<ScriptEntry>,
}

impl SystemParams {
    /// Starts a builder initialized to the paper's base configuration.
    #[must_use]
    pub fn builder() -> SystemParamsBuilder {
        SystemParamsBuilder {
            params: SystemParams::paper_base(),
        }
    }

    /// The base configuration of the simulation study (Section 5.1,
    /// Table 7).
    #[must_use]
    pub fn paper_base() -> Self {
        SystemParams {
            num_sites: 6,
            num_disks: 2,
            disk_time: 1.0,
            disk_time_dev: 0.2,
            mpl: 20,
            think_time: 350.0,
            classes: vec![
                ClassSpec::new("io-bound", 0.05, 20.0, 0.5),
                ClassSpec::new("cpu-bound", 1.0, 20.0, 0.5),
            ],
            msg_length: 1.0,
            message_costing: MessageCosting::Combined,
            disk_choice: DiskChoice::Random,
            estimate_error: 0.0,
            status_period: 0.0,
            status_msg_length: 0.0,
            num_relations: 12,
            copies: None,
            migration: None,
            cpu_speeds: None,
            workload: Workload::Closed,
            update_fraction: 0.0,
            propagation_factor: 0.5,
            faults: None,
            deadlines: None,
            suspicion: None,
            admission: None,
            redundancy: None,
            arrivals: None,
            users: None,
            script: Vec::new(),
        }
    }

    /// Checks every constraint the simulator depends on.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ParamsError> {
        fn positive(field: &'static str, value: f64) -> Result<(), ParamsError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ParamsError::NonPositive { field, value })
            }
        }
        fn fraction(field: &'static str, value: f64) -> Result<(), ParamsError> {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(ParamsError::BadFraction { field, value })
            }
        }

        if self.num_sites == 0 {
            return Err(ParamsError::Missing { what: "site" });
        }
        if self.num_disks == 0 {
            return Err(ParamsError::Missing { what: "disk" });
        }
        if self.mpl == 0 {
            return Err(ParamsError::Missing { what: "terminal" });
        }
        if self.classes.is_empty() {
            return Err(ParamsError::Missing {
                what: "query class",
            });
        }
        positive("disk_time", self.disk_time)?;
        fraction("disk_time_dev", self.disk_time_dev)?;
        positive("think_time", self.think_time)?;
        for class in &self.classes {
            positive("page_cpu_time", class.page_cpu_time)?;
            positive("num_reads", class.num_reads)?;
            fraction("class probability", class.probability)?;
            positive("query_size", class.query_size)?;
            if !class.result_fraction.is_finite() || class.result_fraction < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "result_fraction",
                    value: class.result_fraction,
                });
            }
        }
        if let MessageCosting::Detailed {
            msg_time,
            page_size,
        } = self.message_costing
        {
            positive("msg_time", msg_time)?;
            positive("page_size", page_size)?;
        }
        let sum: f64 = self.classes.iter().map(|c| c.probability).sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(ParamsError::BadClassProbabilities { sum });
        }
        if !self.msg_length.is_finite() || self.msg_length < 0.0 {
            return Err(ParamsError::NonPositive {
                field: "msg_length",
                value: self.msg_length,
            });
        }
        fraction("estimate_error", self.estimate_error)?;
        if !self.status_period.is_finite() || self.status_period < 0.0 {
            return Err(ParamsError::NonPositive {
                field: "status_period",
                value: self.status_period,
            });
        }
        if !self.status_msg_length.is_finite() || self.status_msg_length < 0.0 {
            return Err(ParamsError::NonPositive {
                field: "status_msg_length",
                value: self.status_msg_length,
            });
        }
        if self.num_relations == 0 {
            return Err(ParamsError::Missing { what: "relation" });
        }
        if let Some(copies) = self.copies {
            if copies == 0 {
                return Err(ParamsError::Missing {
                    what: "relation copy",
                });
            }
            if copies as usize > self.num_sites {
                return Err(ParamsError::NonPositive {
                    field: "copies (exceeds num_sites)",
                    value: f64::from(copies),
                });
            }
        }
        if let Workload::Open { arrival_rate } = self.workload {
            positive("arrival_rate", arrival_rate)?;
        }
        fraction("update_fraction", self.update_fraction)?;
        if !self.propagation_factor.is_finite() || self.propagation_factor < 0.0 {
            return Err(ParamsError::NonPositive {
                field: "propagation_factor",
                value: self.propagation_factor,
            });
        }
        if let Some(speeds) = &self.cpu_speeds {
            if speeds.len() != self.num_sites {
                return Err(ParamsError::Missing {
                    what: "CPU speed per site",
                });
            }
            for &s in speeds {
                positive("cpu_speeds entry", s)?;
            }
        }
        if let Some(f) = &self.faults {
            if !f.mtbf.is_finite() || f.mtbf < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "fault mtbf",
                    value: f.mtbf,
                });
            }
            // MTTR of zero means instant repair, which is legal (the
            // crash still drops the site's resident queries).
            if !f.mttr.is_finite() || f.mttr < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "fault mttr",
                    value: f.mttr,
                });
            }
            fraction("fault msg_loss", f.msg_loss)?;
            fraction("fault status_loss", f.status_loss)?;
            positive("fault backoff_base", f.backoff_base)?;
            if !f.partition_at.is_finite() || f.partition_at < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "partition_at",
                    value: f.partition_at,
                });
            }
            if !f.partition_for.is_finite() || f.partition_for < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "partition_for",
                    value: f.partition_for,
                });
            }
            if f.partition_for > 0.0 && f.partition_groups < 2 {
                return Err(ParamsError::NonPositive {
                    field: "partition_groups (a partition needs at least 2 groups)",
                    value: f64::from(f.partition_groups),
                });
            }
            if f.partition_groups as usize > self.num_sites {
                return Err(ParamsError::NonPositive {
                    field: "partition_groups (exceeds num_sites)",
                    value: f64::from(f.partition_groups),
                });
            }
        }
        if !self.script.is_empty() {
            let faults = self.faults.as_ref().ok_or(ParamsError::Missing {
                what: "fault spec for the event script (scripted crashes and \
                       partitions use the FaultSpec retry/partition machinery)",
            })?;
            // A script is a *deterministic* fault environment; mixing it
            // with the stochastic crash process would let a scripted
            // repair collide with a pending stochastic one.
            if faults.mtbf > 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "fault mtbf (must be 0 with an event script)",
                    value: faults.mtbf,
                });
            }
            for entry in &self.script {
                if !entry.at.is_finite() || entry.at < 0.0 {
                    return Err(ParamsError::NonPositive {
                        field: "script entry time",
                        value: entry.at,
                    });
                }
                match entry.action {
                    ScriptAction::SiteDown(s) | ScriptAction::SiteUp(s) => {
                        if s >= self.num_sites {
                            return Err(ParamsError::NonPositive {
                                field: "script site index (exceeds num_sites)",
                                value: s as f64,
                            });
                        }
                    }
                    ScriptAction::PartitionStart | ScriptAction::PartitionHeal => {
                        if faults.partition_groups < 2 {
                            return Err(ParamsError::NonPositive {
                                field: "partition_groups (a scripted partition \
                                        needs at least 2 groups)",
                                value: f64::from(faults.partition_groups),
                            });
                        }
                    }
                }
            }
        }
        if let Some(d) = &self.deadlines {
            if !d.mean.is_finite() || d.mean < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "deadline mean",
                    value: d.mean,
                });
            }
            if !d.floor.is_finite() || d.floor < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "deadline floor",
                    value: d.floor,
                });
            }
            positive("deadline backoff_base", d.backoff_base)?;
        }
        if let Some(s) = &self.suspicion {
            if s.threshold == 0 {
                return Err(ParamsError::Missing {
                    what: "suspicion threshold period",
                });
            }
            if s.probation == 0 {
                return Err(ParamsError::Missing {
                    what: "suspicion probation broadcast",
                });
            }
            if self.status_period <= 0.0 || self.status_msg_length <= 0.0 {
                return Err(ParamsError::Missing {
                    what: "costed status broadcast for the suspicion detector \
                           (status_period > 0 and status_msg_length > 0)",
                });
            }
        }
        if let Some(a) = &self.admission {
            if a.mpl_cap == Some(0) {
                return Err(ParamsError::Missing {
                    what: "admitted query under mpl_cap (cap must be >= 1)",
                });
            }
            if a.queue_limit == Some(0) {
                return Err(ParamsError::Missing {
                    what: "admitted query under queue_limit (limit must be >= 1)",
                });
            }
            positive("admission backoff_base", a.backoff_base)?;
        }
        if let Some(r) = &self.redundancy {
            fraction("redundancy hedge_prob", r.hedge_prob)?;
            fraction("redundancy full_threshold", r.full_threshold)?;
            if !r.load_threshold.is_finite() || r.load_threshold < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "redundancy load_threshold",
                    value: r.load_threshold,
                });
            }
        }
        if let Some(a) = &self.arrivals {
            if a.is_active() && !matches!(self.workload, Workload::Open { .. }) {
                return Err(ParamsError::Missing {
                    what: "open workload for arrival modulation (ArrivalSpec \
                           shapes Workload::Open's base arrival rate)",
                });
            }
            fraction("diurnal_amplitude", a.diurnal_amplitude)?;
            if a.diurnal_amplitude > 0.0 {
                positive("diurnal_period", a.diurnal_period)?;
            }
            if !a.flash_at.is_finite() || a.flash_at < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "flash_at",
                    value: a.flash_at,
                });
            }
            if !a.flash_for.is_finite() || a.flash_for < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "flash_for",
                    value: a.flash_for,
                });
            }
            if a.flash_for > 0.0 {
                positive("flash_multiplier", a.flash_multiplier)?;
            }
            if !a.burst_multiplier.is_finite() || a.burst_multiplier < 1.0 {
                return Err(ParamsError::NonPositive {
                    field: "burst_multiplier (must be >= 1)",
                    value: a.burst_multiplier,
                });
            }
            if a.has_burst() {
                positive("burst_on_mean", a.burst_on_mean)?;
                positive("burst_off_mean", a.burst_off_mean)?;
            }
        }
        if let Some(u) = &self.users {
            if u.is_active() {
                if !matches!(self.workload, Workload::Open { .. }) {
                    return Err(ParamsError::Missing {
                        what: "open workload for the user population (users \
                               arrive with open queries, not closed terminals)",
                    });
                }
                if !u.zipf_exponent.is_finite() || u.zipf_exponent < 0.0 {
                    return Err(ParamsError::NonPositive {
                        field: "zipf_exponent",
                        value: u.zipf_exponent,
                    });
                }
                positive("session_mean", u.session_mean)?;
                fraction("class_affinity", u.class_affinity)?;
            }
        }
        if let Some(m) = &self.migration {
            if m.check_every_reads == 0 {
                return Err(ParamsError::Missing {
                    what: "migration check interval",
                });
            }
            if !m.min_gain.is_finite() || m.min_gain < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "migration min_gain",
                    value: m.min_gain,
                });
            }
            if !m.state_growth.is_finite() || m.state_growth < 0.0 {
                return Err(ParamsError::NonPositive {
                    field: "migration state_growth",
                    value: m.state_growth,
                });
            }
        }
        Ok(())
    }

    /// I/O demand per disk used by the classification rule of Figure 5:
    /// `disk_time / num_disks`.
    #[must_use]
    pub fn io_demand_per_disk(&self) -> f64 {
        self.disk_time / f64::from(self.num_disks)
    }

    /// Classifies a query by its per-page CPU demand, per Figure 5: it is
    /// I/O-bound iff `disk_time / num_disks > page_cpu_time`.
    #[must_use]
    pub fn is_io_bound(&self, page_cpu_time: f64) -> bool {
        self.io_demand_per_disk() > page_cpu_time
    }

    /// Transfer time of a dispatch message for a class-`class` query.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn dispatch_cost(&self, class: ClassId) -> f64 {
        match self.message_costing {
            MessageCosting::Combined => self.msg_length,
            MessageCosting::Detailed { msg_time, .. } => self.classes[class].query_size * msg_time,
        }
    }

    /// Transfer time of the result message for a class-`class` query that
    /// performed `reads` page reads.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn result_cost(&self, class: ClassId, reads: f64) -> f64 {
        match self.message_costing {
            MessageCosting::Combined => self.msg_length,
            MessageCosting::Detailed {
                msg_time,
                page_size,
            } => self.classes[class].result_fraction * reads * page_size * msg_time,
        }
    }

    /// The CPU speed factor of `site` (1.0 when homogeneous).
    ///
    /// # Panics
    ///
    /// Panics if heterogeneous speeds are configured and `site` is out of
    /// range.
    #[must_use]
    pub fn cpu_speed(&self, site: SiteId) -> f64 {
        match &self.cpu_speeds {
            None => 1.0,
            Some(speeds) => speeds[site],
        }
    }

    /// Whether any part of the resilience layer (deadlines, suspicion,
    /// admission control) can influence the trajectory. `false`
    /// guarantees the run is byte-identical to one with all three specs
    /// set to `None` (CRN: the resilience substreams are never drawn).
    #[must_use]
    pub fn resilience_active(&self) -> bool {
        self.deadlines.is_some_and(|d| d.is_active())
            || self.suspicion.is_some()
            || self.admission.is_some_and(|a| a.is_active())
    }

    /// Mean total service demand of a class-`c` query:
    /// `num_reads * (disk_time + page_cpu_time)`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn mean_service_demand(&self, class: ClassId) -> f64 {
        let c = &self.classes[class];
        c.num_reads * (self.disk_time + c.page_cpu_time)
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams::paper_base()
    }
}

/// Builder for [`SystemParams`]; see [`SystemParams::builder`].
#[derive(Debug, Clone)]
pub struct SystemParamsBuilder {
    params: SystemParams,
}

impl SystemParamsBuilder {
    /// Sets the number of sites.
    #[must_use]
    pub fn num_sites(mut self, n: usize) -> Self {
        self.params.num_sites = n;
        self
    }

    /// Sets the number of disks per site.
    #[must_use]
    pub fn num_disks(mut self, n: u32) -> Self {
        self.params.num_disks = n;
        self
    }

    /// Sets the mean disk access time.
    #[must_use]
    pub fn disk_time(mut self, t: f64) -> Self {
        self.params.disk_time = t;
        self
    }

    /// Sets the disk-time deviation fraction.
    #[must_use]
    pub fn disk_time_dev(mut self, d: f64) -> Self {
        self.params.disk_time_dev = d;
        self
    }

    /// Sets the number of terminals per site.
    #[must_use]
    pub fn mpl(mut self, n: u32) -> Self {
        self.params.mpl = n;
        self
    }

    /// Sets the mean terminal think time.
    #[must_use]
    pub fn think_time(mut self, t: f64) -> Self {
        self.params.think_time = t;
        self
    }

    /// Replaces the class list.
    #[must_use]
    pub fn classes(mut self, classes: Vec<ClassSpec>) -> Self {
        self.params.classes = classes;
        self
    }

    /// Convenience for the paper's two-class workload: sets the I/O-bound
    /// class probability to `p` (CPU-bound gets `1 - p`) and the per-page
    /// CPU times of the two classes.
    ///
    /// # Panics
    ///
    /// Panics if the current class list does not have exactly two classes.
    #[must_use]
    pub fn two_class(mut self, io_prob: f64, io_cpu: f64, cpu_cpu: f64) -> Self {
        assert_eq!(
            self.params.classes.len(),
            2,
            "two_class requires the two-class workload"
        );
        self.params.classes[0].probability = io_prob;
        self.params.classes[0].page_cpu_time = io_cpu;
        self.params.classes[1].probability = 1.0 - io_prob;
        self.params.classes[1].page_cpu_time = cpu_cpu;
        self
    }

    /// Sets the I/O-bound class probability (`class_io_prob` in Table 7),
    /// keeping the CPU times.
    ///
    /// # Panics
    ///
    /// Panics if the current class list does not have exactly two classes.
    #[must_use]
    pub fn class_io_prob(mut self, p: f64) -> Self {
        assert_eq!(self.params.classes.len(), 2);
        self.params.classes[0].probability = p;
        self.params.classes[1].probability = 1.0 - p;
        self
    }

    /// Sets the message length (remote-transfer time units).
    #[must_use]
    pub fn msg_length(mut self, t: f64) -> Self {
        self.params.msg_length = t;
        self
    }

    /// Sets the message-costing mode (combined vs Table-2/3 detailed).
    #[must_use]
    pub fn message_costing(mut self, c: MessageCosting) -> Self {
        self.params.message_costing = c;
        self
    }

    /// Sets the disk-selection discipline.
    #[must_use]
    pub fn disk_choice(mut self, c: DiskChoice) -> Self {
        self.params.disk_choice = c;
        self
    }

    /// Sets the demand-estimate error fraction.
    #[must_use]
    pub fn estimate_error(mut self, e: f64) -> Self {
        self.params.estimate_error = e;
        self
    }

    /// Sets the load-status exchange period.
    #[must_use]
    pub fn status_period(mut self, p: f64) -> Self {
        self.params.status_period = p;
        self
    }

    /// Sets the status-broadcast transfer time (0 = free snapshots).
    #[must_use]
    pub fn status_msg_length(mut self, t: f64) -> Self {
        self.params.status_msg_length = t;
        self
    }

    /// Sets the number of relations in the database.
    #[must_use]
    pub fn num_relations(mut self, n: usize) -> Self {
        self.params.num_relations = n;
        self
    }

    /// Sets the replication degree: `None` for full replication,
    /// `Some(k)` for `k` round-robin copies per relation.
    #[must_use]
    pub fn copies(mut self, copies: Option<u32>) -> Self {
        self.params.copies = copies;
        self
    }

    /// Enables or disables mid-execution query migration.
    #[must_use]
    pub fn migration(mut self, spec: Option<MigrationSpec>) -> Self {
        self.params.migration = spec;
        self
    }

    /// Sets per-site CPU speed factors (`None` = homogeneous).
    #[must_use]
    pub fn cpu_speeds(mut self, speeds: Option<Vec<f64>>) -> Self {
        self.params.cpu_speeds = speeds;
        self
    }

    /// Switches between the closed (paper) and open workload models.
    #[must_use]
    pub fn workload(mut self, w: Workload) -> Self {
        self.params.workload = w;
        self
    }

    /// Sets the update fraction of the workload (0 = the paper's
    /// read-only workload).
    #[must_use]
    pub fn update_fraction(mut self, u: f64) -> Self {
        self.params.update_fraction = u;
        self
    }

    /// Sets the per-replica apply work as a fraction of the update's
    /// reads.
    #[must_use]
    pub fn propagation_factor(mut self, f: f64) -> Self {
        self.params.propagation_factor = f;
        self
    }

    /// Enables or disables fault injection (`None` = the paper's
    /// never-fail assumption).
    #[must_use]
    pub fn faults(mut self, spec: Option<FaultSpec>) -> Self {
        self.params.faults = spec;
        self
    }

    /// Enables or disables per-query deadlines with reallocation.
    #[must_use]
    pub fn deadlines(mut self, spec: Option<DeadlineSpec>) -> Self {
        self.params.deadlines = spec;
        self
    }

    /// Enables or disables the heartbeat suspicion detector.
    #[must_use]
    pub fn suspicion(mut self, spec: Option<SuspicionSpec>) -> Self {
        self.params.suspicion = spec;
        self
    }

    /// Enables or disables per-site admission control.
    #[must_use]
    pub fn admission(mut self, spec: Option<AdmissionSpec>) -> Self {
        self.params.admission = spec;
        self
    }

    /// Enables or disables hedged redundant dispatch.
    #[must_use]
    pub fn redundancy(mut self, spec: Option<RedundancySpec>) -> Self {
        self.params.redundancy = spec;
        self
    }

    /// Enables or disables time-varying open-arrival modulation.
    #[must_use]
    pub fn arrivals(mut self, spec: Option<ArrivalSpec>) -> Self {
        self.params.arrivals = spec;
        self
    }

    /// Enables or disables the heavy-tailed user population model.
    #[must_use]
    pub fn users(mut self, spec: Option<UserSpec>) -> Self {
        self.params.users = spec;
        self
    }

    /// Replaces the deterministic fault-environment script (requires a
    /// fault spec; see [`ScriptEntry`]).
    #[must_use]
    pub fn script(mut self, script: Vec<ScriptEntry>) -> Self {
        self.params.script = script;
        self
    }

    /// Validates and returns the parameters.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violated (see
    /// [`SystemParams::validate`]).
    pub fn build(self) -> Result<SystemParams, ParamsError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_is_valid() {
        assert_eq!(SystemParams::paper_base().validate(), Ok(()));
    }

    #[test]
    fn default_is_paper_base() {
        assert_eq!(SystemParams::default(), SystemParams::paper_base());
    }

    #[test]
    fn builder_round_trip() {
        let p = SystemParams::builder()
            .num_sites(8)
            .num_disks(3)
            .mpl(25)
            .think_time(150.0)
            .msg_length(2.0)
            .build()
            .unwrap();
        assert_eq!(p.num_sites, 8);
        assert_eq!(p.num_disks, 3);
        assert_eq!(p.mpl, 25);
        assert_eq!(p.think_time, 150.0);
        assert_eq!(p.msg_length, 2.0);
    }

    #[test]
    fn two_class_helper() {
        let p = SystemParams::builder()
            .two_class(0.3, 0.01, 0.65)
            .build()
            .unwrap();
        assert_eq!(p.classes[0].probability, 0.3);
        assert_eq!(p.classes[1].probability, 0.7);
        assert_eq!(p.classes[0].page_cpu_time, 0.01);
        assert_eq!(p.classes[1].page_cpu_time, 0.65);
    }

    #[test]
    fn classification_rule_matches_figure5() {
        let p = SystemParams::paper_base(); // per-disk demand = 0.5
        assert!(p.is_io_bound(0.05));
        assert!(!p.is_io_bound(1.0));
        assert!(!p.is_io_bound(0.5)); // strict inequality
    }

    #[test]
    fn mean_service_demand_matches_paper_quote() {
        // Section 5.2 quotes mean execution time 30.5 for the base mix;
        // per class: io = 20 * 1.05 = 21, cpu = 20 * 2.0 = 40; mean 30.5.
        let p = SystemParams::paper_base();
        assert!((p.mean_service_demand(0) - 21.0).abs() < 1e-12);
        assert!((p.mean_service_demand(1) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_sites() {
        let mut p = SystemParams::paper_base();
        p.num_sites = 0;
        assert_eq!(p.validate(), Err(ParamsError::Missing { what: "site" }));
    }

    #[test]
    fn rejects_bad_probability_sum() {
        let mut p = SystemParams::paper_base();
        p.classes[0].probability = 0.9;
        assert!(matches!(
            p.validate(),
            Err(ParamsError::BadClassProbabilities { .. })
        ));
    }

    #[test]
    fn rejects_negative_msg_length() {
        let mut p = SystemParams::paper_base();
        p.msg_length = -1.0;
        assert!(matches!(
            p.validate(),
            Err(ParamsError::NonPositive {
                field: "msg_length",
                ..
            })
        ));
    }

    #[test]
    fn rejects_nonpositive_think_time() {
        let mut p = SystemParams::paper_base();
        p.think_time = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn message_costs_combined_vs_detailed() {
        let combined = SystemParams::paper_base();
        assert_eq!(combined.dispatch_cost(0), 1.0);
        assert_eq!(combined.result_cost(1, 50.0), 1.0);

        let detailed = SystemParams::builder()
            .message_costing(MessageCosting::Detailed {
                msg_time: 0.000_25,
                page_size: 1_000.0,
            })
            .build()
            .unwrap();
        // dispatch: 4000 B x 0.00025 = 1.0
        assert!((detailed.dispatch_cost(0) - 1.0).abs() < 1e-12);
        // result: 0.2 x 20 reads x 1000 B x 0.00025 = 1.0 at the mean...
        assert!((detailed.result_cost(0, 20.0) - 1.0).abs() < 1e-12);
        // ...and scales with the query's actual size.
        assert!((detailed.result_cost(0, 40.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detailed_costing_validated() {
        let bad = SystemParams::builder()
            .message_costing(MessageCosting::Detailed {
                msg_time: 0.0,
                page_size: 1_000.0,
            })
            .build();
        assert!(bad.is_err());
        let mut p = SystemParams::paper_base();
        p.classes[0].result_fraction = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn replication_bounds_checked() {
        let ok = SystemParams::builder()
            .num_sites(4)
            .copies(Some(2))
            .num_relations(8)
            .build();
        assert!(ok.is_ok());
        let too_many = SystemParams::builder().num_sites(4).copies(Some(5)).build();
        assert!(too_many.is_err());
        let zero_copies = SystemParams::builder().copies(Some(0)).build();
        assert!(zero_copies.is_err());
        let mut p = SystemParams::paper_base();
        p.num_relations = 0;
        assert_eq!(p.validate(), Err(ParamsError::Missing { what: "relation" }));
    }

    #[test]
    fn fault_spec_defaults_are_inactive_and_valid() {
        let spec = FaultSpec::default();
        assert!(!spec.is_active());
        let p = SystemParams::builder().faults(Some(spec)).build().unwrap();
        assert_eq!(p.faults, Some(spec));
    }

    #[test]
    fn fault_spec_validation() {
        // MTTR of zero is instant repair, which is legal; a negative
        // repair time is not.
        let instant = SystemParams::builder()
            .faults(Some(FaultSpec {
                mtbf: 100.0,
                mttr: 0.0,
                ..FaultSpec::default()
            }))
            .build();
        assert!(instant.is_ok());
        let bad_mttr = SystemParams::builder()
            .faults(Some(FaultSpec {
                mtbf: 100.0,
                mttr: -1.0,
                ..FaultSpec::default()
            }))
            .build();
        assert!(bad_mttr.is_err());
        let bad_loss = SystemParams::builder()
            .faults(Some(FaultSpec {
                msg_loss: 1.5,
                ..FaultSpec::default()
            }))
            .build();
        assert!(bad_loss.is_err());
        let bad_backoff = SystemParams::builder()
            .faults(Some(FaultSpec {
                backoff_base: 0.0,
                ..FaultSpec::default()
            }))
            .build();
        assert!(bad_backoff.is_err());
        let ok = SystemParams::builder()
            .faults(Some(FaultSpec {
                mtbf: 500.0,
                mttr: 50.0,
                msg_loss: 0.01,
                ..FaultSpec::default()
            }))
            .build();
        assert!(ok.is_ok());
        assert!(ok.unwrap().faults.unwrap().is_active());
    }

    #[test]
    fn partition_validation() {
        // Duration without groups is rejected; so are more groups than
        // sites; a well-formed partition activates the fault layer.
        let no_groups = SystemParams::builder()
            .faults(Some(FaultSpec {
                partition_at: 100.0,
                partition_for: 50.0,
                ..FaultSpec::default()
            }))
            .build();
        assert!(no_groups.is_err());
        let too_many = SystemParams::builder()
            .num_sites(4)
            .faults(Some(FaultSpec {
                partition_for: 50.0,
                partition_groups: 5,
                ..FaultSpec::default()
            }))
            .build();
        assert!(too_many.is_err());
        let ok = SystemParams::builder()
            .faults(Some(FaultSpec {
                partition_at: 100.0,
                partition_for: 50.0,
                partition_groups: 2,
                ..FaultSpec::default()
            }))
            .build()
            .unwrap();
        assert!(ok.faults.unwrap().has_partition());
        assert!(ok.faults.unwrap().is_active());
        // Groups configured but zero duration = disabled, valid.
        let idle = FaultSpec {
            partition_groups: 3,
            ..FaultSpec::default()
        };
        assert!(!idle.has_partition());
    }

    #[test]
    fn script_validation() {
        // A script without a fault spec is rejected: the scripted
        // actions reuse the FaultSpec retry/partition machinery.
        let down = |at| ScriptEntry {
            at,
            action: ScriptAction::SiteDown(1),
        };
        let orphan = SystemParams::builder().script(vec![down(100.0)]).build();
        assert!(orphan.is_err());
        // Site indices are bounds-checked against num_sites.
        let oob = SystemParams::builder()
            .num_sites(3)
            .faults(Some(FaultSpec::default()))
            .script(vec![ScriptEntry {
                at: 10.0,
                action: ScriptAction::SiteUp(3),
            }])
            .build();
        assert!(oob.is_err());
        // Partition toggles need partition_groups >= 2 even though the
        // stochastic partition window (partition_for) stays zero.
        let no_groups = SystemParams::builder()
            .faults(Some(FaultSpec::default()))
            .script(vec![ScriptEntry {
                at: 10.0,
                action: ScriptAction::PartitionStart,
            }])
            .build();
        assert!(no_groups.is_err());
        let ok = SystemParams::builder()
            .faults(Some(FaultSpec {
                partition_groups: 2,
                ..FaultSpec::default()
            }))
            .script(vec![
                down(100.0),
                ScriptEntry {
                    at: 150.0,
                    action: ScriptAction::PartitionStart,
                },
                ScriptEntry {
                    at: 250.0,
                    action: ScriptAction::PartitionHeal,
                },
                ScriptEntry {
                    at: 300.0,
                    action: ScriptAction::SiteUp(1),
                },
            ])
            .build()
            .unwrap();
        assert_eq!(ok.script.len(), 4);
        // Negative or non-finite times are rejected.
        let bad_time = SystemParams::builder()
            .faults(Some(FaultSpec::default()))
            .script(vec![down(f64::NAN)])
            .build();
        assert!(bad_time.is_err());
    }

    #[test]
    fn deadline_spec_validation() {
        // Default spec is inactive and valid.
        let p = SystemParams::builder()
            .deadlines(Some(DeadlineSpec::default()))
            .build()
            .unwrap();
        assert!(!p.resilience_active());
        let bad_mean = SystemParams::builder()
            .deadlines(Some(DeadlineSpec {
                mean: -10.0,
                ..DeadlineSpec::default()
            }))
            .build();
        assert!(bad_mean.is_err());
        let bad_backoff = SystemParams::builder()
            .deadlines(Some(DeadlineSpec {
                mean: 100.0,
                backoff_base: 0.0,
                ..DeadlineSpec::default()
            }))
            .build();
        assert!(bad_backoff.is_err());
        let active = SystemParams::builder()
            .deadlines(Some(DeadlineSpec {
                mean: 100.0,
                ..DeadlineSpec::default()
            }))
            .build()
            .unwrap();
        assert!(active.resilience_active());
    }

    #[test]
    fn suspicion_requires_costed_broadcasts() {
        let no_broadcasts = SystemParams::builder()
            .suspicion(Some(SuspicionSpec::default()))
            .build();
        assert!(no_broadcasts.is_err());
        let ok = SystemParams::builder()
            .status_period(30.0)
            .status_msg_length(1.0)
            .suspicion(Some(SuspicionSpec::default()))
            .build()
            .unwrap();
        assert!(ok.resilience_active());
        let zero_threshold = SystemParams::builder()
            .status_period(30.0)
            .status_msg_length(1.0)
            .suspicion(Some(SuspicionSpec {
                threshold: 0,
                ..SuspicionSpec::default()
            }))
            .build();
        assert!(zero_threshold.is_err());
    }

    #[test]
    fn admission_spec_validation() {
        // No caps = inactive and valid.
        let p = SystemParams::builder()
            .admission(Some(AdmissionSpec::default()))
            .build()
            .unwrap();
        assert!(!p.resilience_active());
        let zero_cap = SystemParams::builder()
            .admission(Some(AdmissionSpec {
                mpl_cap: Some(0),
                ..AdmissionSpec::default()
            }))
            .build();
        assert!(zero_cap.is_err());
        let zero_queue = SystemParams::builder()
            .admission(Some(AdmissionSpec {
                queue_limit: Some(0),
                ..AdmissionSpec::default()
            }))
            .build();
        assert!(zero_queue.is_err());
        let capped = SystemParams::builder()
            .admission(Some(AdmissionSpec {
                mpl_cap: Some(10),
                ..AdmissionSpec::default()
            }))
            .build()
            .unwrap();
        assert!(capped.resilience_active());
    }

    #[test]
    fn arrival_spec_validation() {
        // A fully-defaulted spec is inactive and valid even on a closed
        // workload (it draws nothing).
        let inert = SystemParams::builder()
            .arrivals(Some(ArrivalSpec::default()))
            .build()
            .unwrap();
        assert!(!inert.arrivals.unwrap().is_active());
        // Any active layer demands an open workload.
        let closed = SystemParams::builder()
            .arrivals(Some(ArrivalSpec {
                diurnal_amplitude: 0.3,
                ..ArrivalSpec::default()
            }))
            .build();
        assert!(closed.is_err());
        let open = SystemParams::builder()
            .workload(Workload::Open { arrival_rate: 0.02 })
            .arrivals(Some(ArrivalSpec {
                diurnal_amplitude: 0.3,
                flash_at: 1_000.0,
                flash_for: 500.0,
                flash_multiplier: 3.0,
                burst_multiplier: 2.0,
                ..ArrivalSpec::default()
            }))
            .build()
            .unwrap();
        let spec = open.arrivals.unwrap();
        assert!(spec.is_active() && spec.has_flash() && spec.has_burst());
        // The envelope dominates every layer at once.
        let lmax = spec.lambda_max(0.02);
        assert!((lmax - 0.02 * 1.3 * 3.0 * 2.0).abs() < 1e-15);
        assert!(spec.modulation_at(1_100.0) <= lmax / 0.02 * 1.000_000_1);
        // Bad numerics are rejected.
        for bad in [
            ArrivalSpec {
                diurnal_amplitude: 1.5,
                ..ArrivalSpec::default()
            },
            ArrivalSpec {
                diurnal_amplitude: 0.2,
                diurnal_period: 0.0,
                ..ArrivalSpec::default()
            },
            ArrivalSpec {
                flash_for: 10.0,
                flash_multiplier: 0.0,
                ..ArrivalSpec::default()
            },
            ArrivalSpec {
                burst_multiplier: 0.5,
                ..ArrivalSpec::default()
            },
            ArrivalSpec {
                burst_multiplier: 2.0,
                burst_on_mean: 0.0,
                ..ArrivalSpec::default()
            },
        ] {
            let r = SystemParams::builder()
                .workload(Workload::Open { arrival_rate: 0.02 })
                .arrivals(Some(bad))
                .build();
            assert!(r.is_err(), "accepted bad spec {bad:?}");
        }
    }

    #[test]
    fn user_spec_validation() {
        // total_users == 0 is the inert default: valid anywhere.
        let inert = SystemParams::builder()
            .users(Some(UserSpec::default()))
            .build()
            .unwrap();
        assert!(!inert.users.unwrap().is_active());
        // Active population demands an open workload.
        let closed = SystemParams::builder()
            .users(Some(UserSpec {
                total_users: 1_000,
                ..UserSpec::default()
            }))
            .build();
        assert!(closed.is_err());
        let open = SystemParams::builder()
            .workload(Workload::Open { arrival_rate: 0.02 })
            .users(Some(UserSpec {
                total_users: 1_000_000,
                ..UserSpec::default()
            }))
            .build()
            .unwrap();
        assert!(open.users.unwrap().is_active());
        for bad in [
            UserSpec {
                total_users: 10,
                zipf_exponent: -1.0,
                ..UserSpec::default()
            },
            UserSpec {
                total_users: 10,
                session_mean: 0.0,
                ..UserSpec::default()
            },
            UserSpec {
                total_users: 10,
                class_affinity: 1.5,
                ..UserSpec::default()
            },
        ] {
            let r = SystemParams::builder()
                .workload(Workload::Open { arrival_rate: 0.02 })
                .users(Some(bad))
                .build();
            assert!(r.is_err(), "accepted bad spec {bad:?}");
        }
    }

    #[test]
    fn user_shards_partition_the_population() {
        let spec = UserSpec {
            total_users: 1_000_003,
            ..UserSpec::default()
        };
        let total: u64 = (0..6).map(|s| spec.shard_size(s, 6)).sum();
        assert_eq!(total, 1_000_003);
        let sizes: Vec<u64> = (0..6).map(|s| spec.shard_size(s, 6)).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "uneven shards: {sizes:?}");
    }

    #[test]
    fn error_messages_are_nonempty() {
        for e in [
            ParamsError::NonPositive {
                field: "x",
                value: -1.0,
            },
            ParamsError::BadFraction {
                field: "y",
                value: 2.0,
            },
            ParamsError::Missing { what: "site" },
            ParamsError::BadClassProbabilities { sum: 0.5 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
