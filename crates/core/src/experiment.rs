//! The experiment harness: warmup, measurement, replication, capacity
//! search.

use dqa_sim::stats::{student_t_975, Tally};
use dqa_sim::{Engine, SimTime};

use crate::model::shard::{ShardEngine, ShardError};
use crate::model::DbSystem;
use crate::parallel;
use crate::params::{ParamsError, SystemParams};
use crate::policy::PolicyKind;

/// One simulation run: parameters, policy, seed, and the output-analysis
/// windows.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// System parameters.
    pub params: SystemParams,
    /// Allocation policy under test.
    pub policy: PolicyKind,
    /// Root random seed; replication `k` uses [`replication_seed`]
    /// (`seed.wrapping_add(k)` — the offsets wrap around `u64::MAX`).
    pub seed: u64,
    /// Simulated time discarded as warmup transient.
    pub warmup: f64,
    /// Simulated time measured after warmup.
    pub measure: f64,
}

impl RunConfig {
    /// Creates a run configuration with the default output-analysis
    /// windows (3 000 time units of warmup, 30 000 measured — roughly
    /// 9 000 completions at the paper's base parameters).
    #[must_use]
    pub fn new(params: SystemParams, policy: PolicyKind) -> Self {
        RunConfig {
            params,
            policy,
            seed: 1,
            warmup: 3_000.0,
            measure: 30_000.0,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the warmup and measurement windows.
    #[must_use]
    pub fn windows(mut self, warmup: f64, measure: f64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }
}

/// Per-site station statistics of a run.
///
/// `PartialEq` compares every field bitwise (no rounding): it exists so
/// tests can assert that parallel and serial execution produce
/// *byte-identical* reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSummary {
    /// CPU busy fraction at the site.
    pub cpu_utilization: f64,
    /// Mean per-disk busy fraction at the site.
    pub disk_utilization: f64,
    /// Time-averaged queries resident at the CPU.
    pub mean_cpu_queue: f64,
    /// CPU bursts completed at the site (a proxy for work served).
    pub cpu_completions: u64,
}

/// Per-class results of a run.
///
/// `PartialEq` compares every field bitwise; see [`SiteSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSummary {
    /// The class name from [`SystemParams::classes`].
    pub name: String,
    /// Mean waiting time.
    pub mean_waiting: f64,
    /// Mean response time.
    pub mean_response: f64,
    /// Mean service demand actually received.
    pub mean_service: f64,
    /// Normalized mean waiting `Ŵ = W̄ / x̄`.
    pub normalized_waiting: f64,
    /// Completed queries of the class.
    pub completed: u64,
    /// Deadline expiries that cancelled an execution attempt (zero unless
    /// deadlines are enabled).
    pub deadline_timeouts: u64,
    /// Expired queries re-allocated to another site.
    pub deadline_reallocations: u64,
    /// Expired queries abandoned after exhausting their reallocation
    /// budget.
    pub deadline_abandoned: u64,
}

/// Results of one simulation run.
///
/// `PartialEq` compares every field bitwise (exact `f64` equality, no
/// tolerance). Two reports are equal only if the runs were numerically
/// indistinguishable — which is exactly the guarantee the deterministic
/// parallel executor makes, and what `tests/parallel_determinism.rs`
/// asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The policy's display name.
    pub policy: String,
    /// Measured simulated time.
    pub measured_time: f64,
    /// Mean waiting time over all queries (the paper's `W̄`).
    pub mean_waiting: f64,
    /// 95% batch-means half-width for `mean_waiting` (single-run
    /// confidence interval; infinite for very short runs).
    pub waiting_half_width: f64,
    /// Mean response time over all queries.
    pub mean_response: f64,
    /// Median response time (histogram approximation, 2-unit bins).
    pub response_p50: f64,
    /// 90th-percentile response time.
    pub response_p90: f64,
    /// 99th-percentile response time.
    pub response_p99: f64,
    /// Median response time from the streaming tail sketch (no range
    /// clamp, exactly mergeable — bit-identical across serial, `par_map`,
    /// and sharded execution).
    pub sketch_p50: f64,
    /// 99th-percentile response time from the tail sketch.
    pub sketch_p99: f64,
    /// 99.9th-percentile response time from the tail sketch — the far
    /// tail the fixed-range histogram cannot resolve.
    pub sketch_p999: f64,
    /// Signed fairness `F = Ŵ_io − Ŵ_cpu` (two-class runs).
    pub fairness: f64,
    /// Mean CPU utilization across sites (`ρ_c`).
    pub cpu_utilization: f64,
    /// Mean per-disk utilization across sites (`ρ_d`).
    pub disk_utilization: f64,
    /// Token-ring utilization.
    pub subnet_utilization: f64,
    /// Completions per time unit.
    pub throughput: f64,
    /// Fraction of queries executed away from their home site.
    pub transfer_fraction: f64,
    /// Time-averaged query difference `QD`.
    pub mean_query_difference: f64,
    /// Total completions measured.
    pub completed: u64,
    /// Mid-execution migrations (zero unless the migration extension is
    /// enabled).
    pub migrations: u64,
    /// Completed update-apply jobs at replicas (zero unless
    /// `update_fraction > 0`).
    pub propagations: u64,
    /// Fault-recovery retries (zero unless fault injection is enabled).
    pub queries_retried: u64,
    /// Queries abandoned after exhausting their retry budget.
    pub queries_lost: u64,
    /// Queries that completed despite at least one retry.
    pub queries_recovered: u64,
    /// Ring messages dropped in flight.
    pub msgs_lost: u64,
    /// Time-averaged fraction of sites up (1.0 without faults).
    pub mean_availability: f64,
    /// Deadline expiries that cancelled an execution attempt (zero unless
    /// the deadline lifecycle is enabled).
    pub deadline_timeouts: u64,
    /// Expired queries re-allocated to another site.
    pub deadline_reallocations: u64,
    /// Expired queries abandoned after their reallocation budget.
    pub deadline_abandoned: u64,
    /// Queries turned away by a full site into a retry backoff.
    pub admission_rejected: u64,
    /// Queries redirected by admission control to a site with room.
    pub admission_redirected: u64,
    /// Queries shed outright by admission control.
    pub admission_dropped: u64,
    /// Query/result frames dropped at a partition group boundary.
    pub partition_drops: u64,
    /// Hedge-eligible queries actually dispatched redundantly (effective
    /// level ≥ 2).
    pub hedged_dispatched: u64,
    /// Duplicate attempts spawned across all hedged dispatches.
    pub hedge_duplicates: u64,
    /// Hedged dispatches won by a duplicate rather than the primary.
    pub hedge_wins: u64,
    /// Hedge attempts reaped by first-win cancellation.
    pub hedge_cancelled: u64,
    /// Service time absorbed by reaped attempts (wasted redundant work).
    pub hedge_wasted_service: f64,
    /// Histogram of effective redundancy levels: index `i` counts
    /// eligible submissions dispatched to `i + 1` sites (empty when the
    /// redundancy layer never fired).
    pub redundancy_levels: Vec<u64>,
    /// Kernel events dispatched over the whole run (warmup included) —
    /// the denominator for ns/event in the perf benches.
    pub events: u64,
    /// High-water mark of concurrently active user sessions across all
    /// sites (zero without a user population).
    pub peak_active_users: u64,
    /// High-water mark of the user arenas' table footprint in bytes —
    /// divided by `peak_active_users` this is the measured
    /// bytes-per-active-user figure (zero without a user population).
    pub user_arena_peak_bytes: u64,
    /// Per-class breakdown.
    pub per_class: Vec<ClassSummary>,
    /// Per-site station breakdown.
    pub per_site: Vec<SiteSummary>,
}

/// Runs one simulation: build, prime, warm up, reset statistics, measure,
/// and summarize.
///
/// # Errors
///
/// Returns [`ParamsError`] if the configuration's parameters are invalid.
///
/// # Example
///
/// ```
/// use dqa_core::experiment::{run, RunConfig};
/// use dqa_core::params::SystemParams;
/// use dqa_core::policy::PolicyKind;
///
/// let params = SystemParams::builder().num_sites(2).mpl(5).build()?;
/// let report = run(&RunConfig::new(params, PolicyKind::Bnq).windows(500.0, 5_000.0))?;
/// assert!(report.completed > 0);
/// assert!(report.mean_response > report.mean_waiting);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(config: &RunConfig) -> Result<RunReport, ParamsError> {
    let system = DbSystem::new(config.params.clone(), config.policy, config.seed)?;
    let mut engine = Engine::new(system);
    DbSystem::prime(&mut engine);

    engine.run_until(SimTime::new(config.warmup));
    let now = engine.now();
    engine.model_mut().reset_stats(now);

    let end = SimTime::new(config.warmup + config.measure);
    engine.run_until(end);

    Ok(summarize(
        engine.model(),
        end,
        config.measure,
        engine.steps(),
    ))
}

/// Runs one simulation under the conservative parallel executor
/// ([`crate::model::shard`]): same build/warmup/measure/summarize
/// schedule as [`run`], but LP windows drain across `jobs` worker
/// threads. The report is byte-identical to [`run`]'s on the same
/// configuration and seed.
///
/// # Errors
///
/// Returns [`ShardError::Params`] if the parameters are invalid, or
/// [`ShardError::Unsupported`] if the configuration trips the
/// shardability gate ([`crate::model::shard::shardable`]).
///
/// # Example
///
/// ```
/// use dqa_core::experiment::{run, run_sharded, RunConfig};
/// use dqa_core::params::SystemParams;
/// use dqa_core::policy::PolicyKind;
///
/// let params = SystemParams::builder().num_sites(3).status_period(50.0).build()?;
/// let config = RunConfig::new(params, PolicyKind::Bnq).windows(500.0, 5_000.0);
/// let serial = run(&config)?;
/// let sharded = run_sharded(&config, 2)?;
/// assert_eq!(serial, sharded);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_sharded(config: &RunConfig, jobs: usize) -> Result<RunReport, ShardError> {
    let system = DbSystem::new(config.params.clone(), config.policy, config.seed)?;
    let mut engine = ShardEngine::new(system, jobs)?;

    engine.run_until(SimTime::new(config.warmup));
    let now = engine.now();
    engine.model_mut().reset_stats(now);

    let end = SimTime::new(config.warmup + config.measure);
    engine.run_until(end);

    Ok(summarize(
        engine.model(),
        end,
        config.measure,
        engine.steps(),
    ))
}

/// Extracts a [`RunReport`] from a measured model at time `end`.
fn summarize(model: &DbSystem, end: SimTime, measured_time: f64, events: u64) -> RunReport {
    debug_assert!({
        model.check_invariants();
        true
    });
    let metrics = model.metrics();
    let per_class = (0..model.params().classes.len())
        .map(|c| {
            let cm = metrics.class(c);
            ClassSummary {
                name: model.params().classes[c].name.clone(),
                mean_waiting: cm.waiting.mean(),
                mean_response: cm.response.mean(),
                mean_service: cm.service.mean(),
                normalized_waiting: cm.normalized_waiting(),
                completed: cm.waiting.count(),
                deadline_timeouts: cm.deadline_timeouts,
                deadline_reallocations: cm.deadline_reallocations,
                deadline_abandoned: cm.deadline_abandoned,
            }
        })
        .collect();
    let per_site = model
        .sites()
        .map(|s| SiteSummary {
            cpu_utilization: s.cpu.utilization(end),
            disk_utilization: s.disk_utilization(end),
            mean_cpu_queue: s.cpu.mean_population(end),
            cpu_completions: s.cpu.completions(),
        })
        .collect();

    RunReport {
        policy: model.policy_name().to_owned(),
        measured_time,
        mean_waiting: metrics.mean_waiting(),
        waiting_half_width: metrics.waiting_half_width(),
        mean_response: metrics.mean_response(),
        response_p50: metrics.response_quantile(0.5),
        response_p90: metrics.response_quantile(0.9),
        response_p99: metrics.response_quantile(0.99),
        sketch_p50: metrics.response_tail_quantile(0.5),
        sketch_p99: metrics.response_tail_quantile(0.99),
        sketch_p999: metrics.response_tail_quantile(0.999),
        fairness: metrics.fairness(),
        cpu_utilization: model.cpu_utilization(end),
        disk_utilization: model.disk_utilization(end),
        subnet_utilization: model.subnet_utilization(end),
        throughput: metrics.throughput(end),
        transfer_fraction: metrics.transfer_fraction(),
        mean_query_difference: metrics.mean_query_difference(end),
        completed: metrics.completed(),
        migrations: metrics.migrations(),
        propagations: metrics.propagations(),
        queries_retried: metrics.queries_retried(),
        queries_lost: metrics.queries_lost(),
        queries_recovered: metrics.queries_recovered(),
        msgs_lost: metrics.msgs_lost(),
        mean_availability: metrics.mean_availability(end),
        deadline_timeouts: metrics.deadline_timeouts(),
        deadline_reallocations: metrics.deadline_reallocations(),
        deadline_abandoned: metrics.deadline_abandoned(),
        admission_rejected: metrics.admission_rejected(),
        admission_redirected: metrics.admission_redirected(),
        admission_dropped: metrics.admission_dropped(),
        partition_drops: metrics.partition_drops(),
        hedged_dispatched: metrics.hedged_dispatched(),
        hedge_duplicates: metrics.hedge_duplicates(),
        hedge_wins: metrics.hedge_wins(),
        hedge_cancelled: metrics.hedge_cancelled(),
        hedge_wasted_service: metrics.hedge_wasted_service(),
        redundancy_levels: metrics.redundancy_levels().to_vec(),
        events,
        peak_active_users: model.user_arena_stats().1,
        user_arena_peak_bytes: model.user_arena_stats().3,
        per_class,
        per_site,
    }
}

/// Runs with *sequential stopping*: after the warmup, measurement extends
/// in chunks of `config.measure` until the batch-means 95% half-width of
/// the mean waiting time falls to `rel_half_width` of the mean (e.g.
/// `0.05` for ±5%), or `max_measure` simulated time units have been
/// measured. The report's `measured_time` records how long was actually
/// needed — a run-length oracle for sizing fixed-window studies.
///
/// This function stays serial by design: it extends *one* trajectory in
/// time, and each chunk's stopping decision depends on the statistics of
/// everything before it. The worker pool applies across independent
/// replications and probe points ([`run_replicated_jobs`],
/// [`max_mpl_for_response_jobs`]), never inside a single run.
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `rel_half_width` or `max_measure` is not positive.
pub fn run_to_precision(
    config: &RunConfig,
    rel_half_width: f64,
    max_measure: f64,
) -> Result<RunReport, ParamsError> {
    assert!(
        rel_half_width.is_finite() && rel_half_width > 0.0,
        "precision target must be positive"
    );
    assert!(
        max_measure.is_finite() && max_measure > 0.0,
        "measurement cap must be positive"
    );
    let system = DbSystem::new(config.params.clone(), config.policy, config.seed)?;
    let mut engine = Engine::new(system);
    DbSystem::prime(&mut engine);

    engine.run_until(SimTime::new(config.warmup));
    let now = engine.now();
    engine.model_mut().reset_stats(now);

    let mut measured = 0.0;
    loop {
        measured += config.measure;
        engine.run_until(SimTime::new(config.warmup + measured));
        let m = engine.model().metrics();
        let mean = m.mean_waiting().abs();
        let precise = mean > 0.0 && m.waiting_half_width() <= rel_half_width * mean;
        if precise || measured >= max_measure {
            let end = SimTime::new(config.warmup + measured);
            return Ok(summarize(engine.model(), end, measured, engine.steps()));
        }
    }
}

/// The seed of replication `k` of a run rooted at `base`:
/// `base.wrapping_add(k)`.
///
/// The offsets deliberately **wrap** around `u64::MAX` rather than
/// saturate: saturation would collapse the last replications of a
/// near-`u64::MAX` root seed onto the *same* seed, silently destroying
/// their independence, while wrapping keeps all `n` seeds distinct for
/// every root (`n < 2^64`). Wrapping is also what the bench harness's
/// cell-seed derivation already does, and — because it is a pure function
/// of `(base, k)` — it guarantees the parallel executor hands every
/// replication exactly the seed the serial loop would have.
#[must_use]
pub fn replication_seed(base: u64, k: u32) -> u64 {
    base.wrapping_add(u64::from(k))
}

/// Aggregate of independent replications (seeds
/// `replication_seed(seed, 0..n)`).
///
/// `PartialEq` compares the underlying reports bitwise; see
/// [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct Replicated {
    /// The individual run reports.
    pub reports: Vec<RunReport>,
}

impl Replicated {
    fn tally(&self, f: impl Fn(&RunReport) -> f64) -> Tally {
        let mut t = Tally::new();
        for r in &self.reports {
            t.record(f(r));
        }
        t
    }

    /// Mean over replications of a report field.
    #[must_use]
    pub fn mean(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        self.tally(f).mean()
    }

    /// 95% confidence half-width over replications of a report field.
    #[must_use]
    pub fn half_width(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        let t = self.tally(f);
        if t.count() < 2 {
            f64::INFINITY
        } else {
            student_t_975(t.count() - 1) * t.std_error()
        }
    }

    /// Mean waiting time `W̄` over replications.
    #[must_use]
    pub fn mean_waiting(&self) -> f64 {
        self.mean(|r| r.mean_waiting)
    }

    /// Mean response time over replications.
    #[must_use]
    pub fn mean_response(&self) -> f64 {
        self.mean(|r| r.mean_response)
    }

    /// Mean signed fairness over replications.
    #[must_use]
    pub fn mean_fairness(&self) -> f64 {
        self.mean(|r| r.fairness)
    }

    /// Mean CPU utilization over replications.
    #[must_use]
    pub fn mean_cpu_utilization(&self) -> f64 {
        self.mean(|r| r.cpu_utilization)
    }

    /// Mean subnet utilization over replications.
    #[must_use]
    pub fn mean_subnet_utilization(&self) -> f64 {
        self.mean(|r| r.subnet_utilization)
    }
}

/// Runs `replications` independent replications of `config` (seeds
/// `replication_seed(seed, 0..n)`) on [`parallel::jobs`] worker threads.
///
/// Every replication owns its seed, engine, and RNG substreams, and the
/// reports are collected in replication order, so the result is
/// byte-identical for every worker count (asserted in
/// `tests/parallel_determinism.rs`).
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `replications` is zero.
pub fn run_replicated(config: &RunConfig, replications: u32) -> Result<Replicated, ParamsError> {
    run_replicated_jobs(config, replications, parallel::jobs())
}

/// [`run_replicated`] with an explicit worker count (`jobs == 1` runs the
/// exact serial loop on the calling thread).
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `replications` or `jobs` is zero.
pub fn run_replicated_jobs(
    config: &RunConfig,
    replications: u32,
    jobs: usize,
) -> Result<Replicated, ParamsError> {
    assert!(replications > 0, "need at least one replication");
    let cfgs: Vec<RunConfig> = (0..replications)
        .map(|k| config.clone().seed(replication_seed(config.seed, k)))
        .collect();
    let reports = parallel::par_try_map(jobs, cfgs, |_, cfg| run(&cfg))?;
    Ok(Replicated { reports })
}

/// Percentage improvement of `x` over `base`: `(base − x) / base × 100`.
/// This is the `ΔW̄_{X,BASE} / W̄_BASE` of Tables 8–12.
#[must_use]
pub fn improvement_pct(base: f64, x: f64) -> f64 {
    // dqa-lint: allow(no-float-eq) -- division guard: only exact zero divides badly
    if base == 0.0 {
        0.0
    } else {
        (base - x) / base * 100.0
    }
}

/// Mean waiting time per equal time window of a run *without* warmup
/// truncation — the raw material for Welch's warmup-estimation procedure.
/// The run covers `config.warmup + config.measure` time units split into
/// `windows` slices; slices in which nothing completed repeat the
/// previous value.
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `windows` is zero.
pub fn waiting_time_series(config: &RunConfig, windows: usize) -> Result<Vec<f64>, ParamsError> {
    assert!(windows > 0, "need at least one window");
    let system = DbSystem::new(config.params.clone(), config.policy, config.seed)?;
    let mut engine = Engine::new(system);
    DbSystem::prime(&mut engine);

    let horizon = config.warmup + config.measure;
    let slice = horizon / windows as f64;
    let mut series = Vec::with_capacity(windows);
    let mut prev_count = 0u64;
    let mut prev_sum = 0.0f64;
    let mut last = 0.0f64;
    for k in 1..=windows {
        engine.run_until(SimTime::new(slice * k as f64));
        let m = engine.model().metrics();
        let count = m.completed();
        let sum = m.mean_waiting() * count as f64;
        if count > prev_count {
            last = (sum - prev_sum) / (count - prev_count) as f64;
        }
        series.push(last);
        prev_count = count;
        prev_sum = sum;
    }
    Ok(series)
}

/// Estimates an adequate warmup length (in simulated time units) for
/// `config` by Welch's procedure over `replications` independent runs:
/// the windowed waiting-time curves are averaged, smoothed, and the
/// returned time is where the curve settles into a ±25% band around its
/// steady-state level (waiting times are high-variance, so a tighter band
/// would mistake noise for transient). Returns `Ok(None)` when the curve
/// has not settled within the configured horizon — extend `measure`, add
/// replications, and retry.
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `replications` is zero.
pub fn suggest_warmup(config: &RunConfig, replications: u32) -> Result<Option<f64>, ParamsError> {
    suggest_warmup_jobs(config, replications, parallel::jobs())
}

/// [`suggest_warmup`] with an explicit worker count: the per-replication
/// waiting-time curves are simulated in parallel and averaged in
/// replication order, so the suggestion matches the serial procedure
/// exactly.
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `replications` or `jobs` is zero.
pub fn suggest_warmup_jobs(
    config: &RunConfig,
    replications: u32,
    jobs: usize,
) -> Result<Option<f64>, ParamsError> {
    assert!(replications > 0, "need at least one replication");
    const WINDOWS: usize = 40;
    let cfgs: Vec<RunConfig> = (0..replications)
        .map(|k| config.clone().seed(replication_seed(config.seed, k)))
        .collect();
    let series = parallel::par_try_map(jobs, cfgs, |_, cfg| waiting_time_series(&cfg, WINDOWS))?;
    let slice = (config.warmup + config.measure) / WINDOWS as f64;
    Ok(dqa_sim::stats::welch_truncation(&series, 3, 0.25).map(|cut| cut as f64 * slice))
}

/// The Table-10 capacity question: the largest `mpl` in
/// `mpl_range` for which the policy keeps mean response time at or below
/// `target_response`. Returns `None` if even the smallest `mpl` misses the
/// target.
///
/// Response time grows monotonically with `mpl` (up to noise), so the scan
/// stops at the first violation.
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
pub fn max_mpl_for_response(
    base: &RunConfig,
    target_response: f64,
    mpl_range: std::ops::RangeInclusive<u32>,
    replications: u32,
) -> Result<Option<u32>, ParamsError> {
    max_mpl_for_response_jobs(
        base,
        target_response,
        mpl_range,
        replications,
        parallel::jobs(),
    )
}

/// [`max_mpl_for_response`] with an explicit worker count. The MPL scan
/// is evaluated in chunks of `jobs` probes; the serial early-exit logic
/// is then replayed over the chunk's results in MPL order, so the answer
/// is identical to the one-at-a-time scan (at most `jobs − 1` probes past
/// the first violation are wasted). With `jobs == 1` the chunks have one
/// element and this *is* the serial scan, early exit included.
///
/// # Errors
///
/// Returns [`ParamsError`] if the parameters are invalid.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn max_mpl_for_response_jobs(
    base: &RunConfig,
    target_response: f64,
    mpl_range: std::ops::RangeInclusive<u32>,
    replications: u32,
    jobs: usize,
) -> Result<Option<u32>, ParamsError> {
    assert!(jobs >= 1, "worker count must be at least 1");
    let mpls: Vec<u32> = mpl_range.collect();
    let mut best = None;
    for chunk in mpls.chunks(jobs) {
        // Each probe replicates serially (jobs = 1): the parallelism lives
        // at the probe level, and nesting pools would oversubscribe.
        let probes = parallel::par_try_map(jobs, chunk.to_vec(), |_, mpl| {
            let mut cfg = base.clone();
            cfg.params.mpl = mpl;
            run_replicated_jobs(&cfg, replications, 1).map(|rep| (mpl, rep.mean_response()))
        })?;
        for (mpl, response) in probes {
            if response <= target_response {
                best = Some(mpl);
            } else {
                return Ok(best);
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RunConfig {
        let params = SystemParams::builder()
            .num_sites(3)
            .mpl(5)
            .think_time(100.0)
            .build()
            .unwrap();
        RunConfig::new(params, PolicyKind::Bnq).windows(500.0, 4_000.0)
    }

    #[test]
    fn run_produces_consistent_report() {
        let r = run(&small()).unwrap();
        assert!(r.completed > 100);
        assert_eq!(r.policy, "BNQ");
        assert!(r.mean_response >= r.mean_waiting);
        assert!(r.mean_waiting >= 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.per_class.len(), 2);
        let class_total: u64 = r.per_class.iter().map(|c| c.completed).sum();
        assert_eq!(class_total, r.completed);
    }

    #[test]
    fn response_equals_waiting_plus_service_per_class() {
        let r = run(&small()).unwrap();
        for c in &r.per_class {
            let recomposed = c.mean_waiting + c.mean_service;
            assert!(
                (recomposed - c.mean_response).abs() < 1e-6,
                "{}: {recomposed} vs {}",
                c.name,
                c.mean_response
            );
        }
    }

    #[test]
    fn replications_differ_but_aggregate() {
        let rep = run_replicated(&small(), 3).unwrap();
        assert_eq!(rep.reports.len(), 3);
        let w: Vec<f64> = rep.reports.iter().map(|r| r.mean_waiting).collect();
        assert!(
            w[0] != w[1] || w[1] != w[2],
            "replications identical: {w:?}"
        );
        let m = rep.mean_waiting();
        assert!(m > 0.0);
        assert!(rep.half_width(|r| r.mean_waiting).is_finite());
    }

    #[test]
    fn replication_seeds_wrap_at_u64_max_and_stay_distinct() {
        // Wrapping, not saturating: near-u64::MAX roots still get n
        // distinct replication seeds (saturation would alias the tail).
        let base = u64::MAX - 2;
        let seeds: Vec<u64> = (0..6).map(|k| replication_seed(base, k)).collect();
        assert_eq!(seeds, vec![u64::MAX - 2, u64::MAX - 1, u64::MAX, 0, 1, 2]);
    }

    #[test]
    fn run_replicated_survives_seed_overflow() {
        let cfg = small().seed(u64::MAX - 1).windows(300.0, 1_500.0);
        let rep = run_replicated(&cfg, 4).unwrap();
        assert_eq!(rep.reports.len(), 4);
        // The wrapped seeds are distinct, so the replications differ.
        let w: Vec<f64> = rep.reports.iter().map(|r| r.mean_waiting).collect();
        assert!(
            w.windows(2).any(|p| p[0] != p[1]),
            "replications identical: {w:?}"
        );
    }

    #[test]
    fn report_equality_is_reflexive_across_identical_runs() {
        let a = run(&small()).unwrap();
        let b = run(&small()).unwrap();
        assert_eq!(a, b);
        assert!(a.events > 0, "kernel event count should be recorded");
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(10.0, 5.0) - 50.0).abs() < 1e-12);
        assert!(improvement_pct(10.0, 12.0) < 0.0);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn capacity_search_is_monotone_in_target() {
        let cfg = small().windows(300.0, 2_000.0);
        let loose = max_mpl_for_response(&cfg, 80.0, 2..=8, 1).unwrap();
        let tight = max_mpl_for_response(&cfg, 25.0, 2..=8, 1).unwrap();
        if let (Some(l), Some(t)) = (loose, tight) {
            assert!(
                l >= t,
                "looser target must admit at least as many terminals"
            );
        }
        // An impossible target admits nothing.
        let none = max_mpl_for_response(&cfg, 0.0001, 2..=4, 1).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn sequential_stopping_reaches_the_precision_target() {
        let cfg = small().windows(500.0, 2_000.0);
        let r = run_to_precision(&cfg, 0.1, 100_000.0).unwrap();
        assert!(
            r.waiting_half_width <= 0.1 * r.mean_waiting,
            "half-width {} exceeds 10% of mean {}",
            r.waiting_half_width,
            r.mean_waiting
        );
        // the chunk counter reports the time actually measured
        assert!(r.measured_time >= 2_000.0);
        assert!((r.measured_time / 2_000.0).fract().abs() < 1e-9);
    }

    #[test]
    fn sequential_stopping_respects_the_cap() {
        let cfg = small().windows(500.0, 1_000.0);
        // An absurd target cannot be reached; the cap bounds the run.
        let r = run_to_precision(&cfg, 1e-6, 3_000.0).unwrap();
        assert!(r.measured_time <= 3_000.0 + 1e-9);
    }

    #[test]
    fn response_percentiles_are_ordered_and_bracket_the_mean() {
        let r = run(&small()).unwrap();
        assert!(r.response_p50 <= r.response_p90);
        assert!(r.response_p90 <= r.response_p99);
        // Response distributions here are right-skewed: median < mean < p99.
        assert!(r.response_p50 < r.mean_response);
        assert!(r.mean_response < r.response_p99);
        // The sketch sees the same distribution: ordered tail, and a
        // median agreeing with the histogram's up to bin + sketch error.
        assert!(r.sketch_p50 <= r.sketch_p99);
        assert!(r.sketch_p99 <= r.sketch_p999);
        assert!(
            (r.sketch_p50 - r.response_p50).abs() <= 2.0 + 0.01 * r.response_p50,
            "sketch median {} vs histogram median {}",
            r.sketch_p50,
            r.response_p50
        );
        // No user population configured: the arena fields stay zero.
        assert_eq!(r.peak_active_users, 0);
        assert_eq!(r.user_arena_peak_bytes, 0);
    }

    #[test]
    fn waiting_series_has_requested_length_and_finite_values() {
        let series = waiting_time_series(&small(), 20).unwrap();
        assert_eq!(series.len(), 20);
        assert!(series.iter().all(|w| w.is_finite() && *w >= 0.0));
        // the system does accumulate waiting eventually
        assert!(series.iter().any(|&w| w > 0.0));
    }

    #[test]
    fn suggested_warmup_is_modest_at_moderate_load() {
        // The transient from an empty system at these parameters dies out
        // well within the horizon; Welch should find a settle point in
        // the first half.
        let cfg = small().windows(2_000.0, 10_000.0);
        let suggestion = suggest_warmup(&cfg, 5).unwrap();
        let warmup = suggestion.expect("curve should settle");
        assert!(
            warmup < 6_000.0,
            "suggested warmup {warmup} is over half the horizon"
        );
    }

    #[test]
    fn invalid_params_surface_as_error() {
        let mut cfg = small();
        cfg.params.think_time = -5.0;
        assert!(run(&cfg).is_err());
    }
}
