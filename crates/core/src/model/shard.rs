//! Conservative parallel-in-time execution of the model (DESIGN.md §12).
//!
//! The model's logical-process split (see [`super`]) makes the token-ring
//! subnet the *only* channel between sites, and every ring frame costs at
//! least the minimum transfer time of its frame class. That minimum is a
//! classic conservative-synchronization *lookahead* Δ: an LP event at time
//! `t` can influence another site no earlier than `t + Δ`, because the
//! influence must ride a frame enqueued at `t` whose transmission alone
//! takes at least Δ (ring queueing only adds delay).
//!
//! The executor exploits this with barrier-synchronized windows:
//!
//! 1. Let `tg` be the earliest pending *global* event (ring delivery,
//!    crash, partition edge, …) and `tl` the earliest pending LP event.
//! 2. If `tg ≤ tl`, run the global event with full access — exactly like
//!    the serial executor.
//! 3. Otherwise open the window `[tl, E)` with `E = min(tl + Δ, tg)`:
//!    every LP drains its own events with `t < E` *in parallel*, touching
//!    only its own state, reading the frozen board, and logging
//!    observations and outgoing frames.
//! 4. At the barrier, merge all observation logs and outboxes across LPs
//!    in `(time, site, log order)` order and apply them: observations
//!    update the board/metrics, frames enter the ring (deliveries land at
//!    `≥ send + Δ ≥ E`, so none can have been needed inside the window).
//!
//! Because each LP owns disjoint RNG streams ([`crate::substreams`]), the
//! parallel schedule draws exactly the serial schedule's random numbers,
//! and the barrier merge replays side effects in serial timestamp order —
//! the resulting [`RunReport`](crate::experiment::RunReport) is
//! byte-identical to the serial executor's. Ties between *different*
//! sites' events at the exact same `f64` timestamp are broken
//! (global-first, then by site index) instead of by serial insertion
//! order; with continuous event-time distributions such cross-site
//! collisions have measure zero. `tests/shard_determinism.rs` checks the
//! bitwise guarantee end to end.
//!
//! # What is shardable
//!
//! The gate ([`shardable`]) refuses configurations whose handlers reach
//! across sites *between* barriers:
//!
//! * an active deadline lifecycle (expiry cancellation unwinds a remote
//!   execution off-barrier and LP handlers defer global scheduling),
//! * active admission control (live occupancy checks read other sites'
//!   stations at decision time),
//! * an active redundancy spec (hedged dispatch spawns duplicates and
//!   reaps losers through the global hedge registry between barriers),
//! * a perfect-information board (`status_period == 0` mirrors every
//!   load change to all sites instantly), and
//! * a zero lookahead (some frame class with zero transfer time).
//!
//! Fault injection — crashes, message loss, partitions, scripted
//! environments — is fully shardable: every fault transition is already a
//! barrier-time global event.

use std::fmt;
use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dqa_sim::random::{Dist, RngStream};
use dqa_sim::{EventQueue, SimTime};

use crate::load::LoadTable;
use crate::params::{ParamsError, SiteId, SystemParams};
use crate::policy::PolicyKind;
use crate::replication::Catalog;

use super::obs::Obs;
use super::{event_site, obs, DbSystem, Event, EventSink, Lp, RingMsg, Shared};

// ----------------------------------------------------------------------
// Shardability gate and lookahead
// ----------------------------------------------------------------------

/// Why a configuration cannot run under the parallel executor. See the
/// module docs for the reasoning behind each clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardGate {
    /// The deadline lifecycle is active.
    Deadlines,
    /// Admission control is active.
    Admission,
    /// An active [`RedundancySpec`](crate::params::RedundancySpec):
    /// hedged dispatch spawns duplicates and reaps losers through
    /// off-barrier global state (the hedge registry).
    Redundancy,
    /// `status_period == 0`: the board is perfect-information.
    PerfectBoard,
    /// Some frame class has a zero minimum transfer time.
    ZeroLookahead,
}

impl fmt::Display for ShardGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let why = match self {
            ShardGate::Deadlines => "the deadline lifecycle cancels remote executions off-barrier",
            ShardGate::Admission => {
                "admission control reads other sites' live occupancy at decision time"
            }
            ShardGate::Redundancy => {
                "redundancy-aware dispatch spawns and cancels hedged duplicates off-barrier"
            }
            ShardGate::PerfectBoard => {
                "status_period = 0 mirrors every load change to all sites instantly"
            }
            ShardGate::ZeroLookahead => {
                "a frame class has zero minimum transfer time, so the lookahead is zero"
            }
        };
        write!(f, "configuration is not shardable: {why}")
    }
}

/// Checks that `params` can run under the parallel executor.
///
/// # Errors
///
/// Returns the first [`ShardGate`] clause the configuration violates.
// `!(x > 0.0)` rather than `x <= 0.0`: a NaN-valued parameter must also
// refuse the gate, not slip past it.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn shardable(params: &SystemParams) -> Result<(), ShardGate> {
    if params.deadlines.is_some_and(|d| d.is_active()) {
        return Err(ShardGate::Deadlines);
    }
    if params.admission.is_some_and(|a| a.is_active()) {
        return Err(ShardGate::Admission);
    }
    if params.redundancy.is_some_and(|r| r.is_active()) {
        return Err(ShardGate::Redundancy);
    }
    if !(params.status_period > 0.0) {
        return Err(ShardGate::PerfectBoard);
    }
    if !(lookahead(params) > 0.0) {
        return Err(ShardGate::ZeroLookahead);
    }
    Ok(())
}

/// The conservative lookahead Δ: a strict lower bound on the transfer
/// time of *every* frame the model can put on the ring.
///
/// Frame classes and their minimum costs:
///
/// * dispatch frames — [`SystemParams::dispatch_cost`] per class;
/// * result frames — [`SystemParams::result_cost`] at the one-read floor
///   ([`Dist::sample_count`] never returns less than one read);
/// * propagation-apply dispatches (updates with replication) and
///   migration transfers — at least `msg_length` (migration state growth
///   only adds cost);
/// * costed status broadcasts — `status_msg_length` (§4.4; free
///   exchanges are barrier-time global events and need no bound).
///
/// Ring queueing and partition drops only *delay* or suppress delivery,
/// so the per-frame transmission time remains a lower bound on every
/// cross-site influence delay.
#[must_use]
pub fn lookahead(params: &SystemParams) -> f64 {
    let mut delta = f64::INFINITY;
    for class in 0..params.classes.len() {
        delta = delta.min(params.dispatch_cost(class));
        delta = delta.min(params.result_cost(class, 1.0));
    }
    if params.update_fraction > 0.0 || params.migration.is_some() {
        delta = delta.min(params.msg_length);
    }
    if params.status_period > 0.0 && params.status_msg_length > 0.0 {
        delta = delta.min(params.status_msg_length);
    }
    delta
}

/// An error from [`crate::experiment::run_sharded`]: either the
/// parameters are invalid or the configuration is not shardable.
#[derive(Debug)]
pub enum ShardError {
    /// Parameter validation failed.
    Params(ParamsError),
    /// The shardability gate refused the configuration.
    Unsupported(ShardGate),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Params(e) => e.fmt(f),
            ShardError::Unsupported(g) => g.fmt(f),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ParamsError> for ShardError {
    fn from(e: ParamsError) -> Self {
        ShardError::Params(e)
    }
}

impl From<ShardGate> for ShardError {
    fn from(g: ShardGate) -> Self {
        ShardError::Unsupported(g)
    }
}

// ----------------------------------------------------------------------
// Event sinks
// ----------------------------------------------------------------------

/// The window-time sink: accepts only the owning LP's events.
struct LocalSink<'a> {
    site: SiteId,
    queue: &'a mut EventQueue<Event>,
}

impl EventSink for LocalSink<'_> {
    fn schedule(&mut self, t: SimTime, event: Event) {
        debug_assert_eq!(
            event_site(&event),
            Some(self.site),
            "LP handler scheduled an event it does not own: {event:?}"
        );
        self.queue.push(t, event);
    }
}

/// The barrier-time sink: routes each event to its owning LP's local
/// queue, or to the global queue.
struct RouterSink<'a> {
    global: &'a mut EventQueue<Event>,
    locals: &'a mut [EventQueue<Event>],
}

impl EventSink for RouterSink<'_> {
    fn schedule(&mut self, t: SimTime, event: Event) {
        match event_site(&event) {
            Some(site) => self.locals[site].push(t, event),
            None => self.global.push(t, event),
        }
    }
}

// ----------------------------------------------------------------------
// Window draining (shared by the inline and worker paths)
// ----------------------------------------------------------------------

/// Drains one LP's local queue up to (strictly) `bound`, capped at the
/// inclusive run `deadline`. Returns the number of events executed.
fn drain_window(
    lp: &mut Lp,
    queue: &mut EventQueue<Event>,
    sh: &Shared<'_>,
    bound: SimTime,
    deadline: SimTime,
) -> u64 {
    let mut steps = 0;
    while let Some(t) = queue.peek_time() {
        if t >= bound || t > deadline {
            break;
        }
        let Some((now, event)) = queue.pop() else {
            break;
        };
        let mut sink = LocalSink {
            site: lp.index,
            queue,
        };
        lp.handle(now, event, sh, &mut sink);
        steps += 1;
    }
    steps
}

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

/// One window assignment shipped to a worker: the LP and its local queue
/// move out of the engine for the window's duration and come back in the
/// reply.
struct Task {
    idx: usize,
    lp: Lp,
    queue: EventQueue<Event>,
    board: Arc<LoadTable>,
    bound: SimTime,
    deadline: SimTime,
}

/// A worker's reply for one task.
struct Done {
    idx: usize,
    lp: Lp,
    queue: EventQueue<Event>,
    steps: u64,
}

// `Done` dwarfs `Panicked`, but it is also the only variant the hot path
// ever builds — boxing it would buy nothing except an allocation per
// window per LP.
#[allow(clippy::large_enum_variant)]
enum Reply {
    Done(Done),
    /// A model handler panicked inside the worker; the message is
    /// re-raised on the coordinating thread.
    Panicked(String),
}

/// A persistent pool of window workers. Spawned once per engine — windows
/// are far too frequent to pay a thread spawn each — and shut down by
/// dropping the task senders.
struct Pool {
    txs: Vec<Sender<Task>>,
    rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    fn spawn(jobs: usize, sys: &DbSystem) -> Pool {
        let params = Arc::new(sys.params.clone());
        let catalog = Arc::new(sys.catalog.clone());
        let disk_dist = sys.disk_dist;
        let (reply_tx, reply_rx) = channel();
        let mut txs = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (task_tx, task_rx) = channel::<Task>();
            txs.push(task_tx);
            let replies = reply_tx.clone();
            let params = Arc::clone(&params);
            let catalog = Arc::clone(&catalog);
            handles.push(std::thread::spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    let reply = run_task(&params, &catalog, disk_dist, task);
                    let crashed = matches!(reply, Reply::Panicked(_));
                    if replies.send(reply).is_err() || crashed {
                        break;
                    }
                }
            }));
        }
        Pool {
            txs,
            rx: reply_rx,
            handles,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.txs.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked already reported through the reply
            // channel; joining here must not double-panic during drop.
            let _ = handle.join();
        }
    }
}

/// Executes one window task on a worker thread, catching handler panics
/// so the coordinator can re-raise them instead of deadlocking.
fn run_task(params: &SystemParams, catalog: &Catalog, disk_dist: Dist, task: Task) -> Reply {
    let Task {
        idx,
        mut lp,
        mut queue,
        board,
        bound,
        deadline,
    } = task;
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let sh = Shared {
            params,
            catalog,
            board: &board,
            disk_dist,
            cross: None,
        };
        drain_window(&mut lp, &mut queue, &sh, bound, deadline)
    }));
    match outcome {
        Ok(steps) => Reply::Done(Done {
            idx,
            lp,
            queue,
            steps,
        }),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "window worker panicked".to_string());
            Reply::Panicked(format!("LP {idx} window worker panicked: {msg}"))
        }
    }
}

// ----------------------------------------------------------------------
// The engine
// ----------------------------------------------------------------------

/// The windowed parallel executor: a drop-in replacement for
/// `Engine<DbSystem>` that runs LP windows across a worker pool and
/// produces bit-identical trajectories (see the module docs).
pub struct ShardEngine {
    sys: DbSystem,
    /// Barrier-time events (ring deliveries, faults, free status
    /// exchanges, scripted actions).
    global: EventQueue<Event>,
    /// One local queue per LP, holding only that site's own events.
    locals: Vec<EventQueue<Event>>,
    /// The conservative lookahead Δ.
    delta: f64,
    now: SimTime,
    steps: u64,
    /// `None` when `jobs == 1`: windows drain inline on this thread.
    pool: Option<Pool>,
    /// Hollow LPs swapped into `sys` while the real ones are out on
    /// worker threads; recycled window to window.
    spares: Vec<Lp>,
    /// Scratch for barrier merges (reused allocation).
    merged_obs: Vec<(SimTime, usize, usize, Obs)>,
    merged_out: Vec<(SimTime, usize, usize, RingMsg, f64)>,
    active: Vec<usize>,
}

impl ShardEngine {
    /// Builds the parallel executor around a freshly created system,
    /// seeding its initial events. `jobs` is clamped to `[1, num_sites]`.
    ///
    /// # Errors
    ///
    /// Returns the [`ShardGate`] clause that makes the configuration
    /// unshardable, if any.
    pub fn new(mut sys: DbSystem, jobs: usize) -> Result<ShardEngine, ShardGate> {
        shardable(&sys.params)?;
        let delta = lookahead(&sys.params);
        let n = sys.params.num_sites;
        let mut global = EventQueue::new();
        let mut locals: Vec<EventQueue<Event>> = (0..n).map(|_| EventQueue::new()).collect();
        for (t, event) in sys.initial_events() {
            let mut router = RouterSink {
                global: &mut global,
                locals: &mut locals,
            };
            router.schedule(t, event);
        }
        let jobs = jobs.clamp(1, n);
        let pool = (jobs > 1).then(|| Pool::spawn(jobs, &sys));
        Ok(ShardEngine {
            sys,
            global,
            locals,
            delta,
            now: SimTime::ZERO,
            steps: 0,
            pool,
            spares: Vec::new(),
            merged_obs: Vec::new(),
            merged_out: Vec::new(),
            active: Vec::new(),
        })
    }

    /// The model.
    #[must_use]
    pub fn model(&self) -> &DbSystem {
        &self.sys
    }

    /// The model, mutably (statistics resets between warmup and
    /// measurement).
    pub fn model_mut(&mut self) -> &mut DbSystem {
        &mut self.sys
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events executed so far — identical to the serial engine's count on
    /// the same configuration.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs every event with `t ≤ deadline`, then advances the clock to
    /// `deadline` — the same contract as `Engine::run_until`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let tg = self.global.peek_time();
            let tl = self
                .locals
                .iter()
                .filter_map(EventQueue::peek_time)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            // Global events run first on exact ties: the window bound is
            // exclusive, so an LP event at the same instant waits one
            // iteration.
            let global_next = match (tg, tl) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(g), Some(l)) => g <= l,
            };
            if global_next {
                let Some(t) = tg else { break };
                if t > deadline {
                    break;
                }
                let Some((now, event)) = self.global.pop() else {
                    break;
                };
                self.now = now;
                {
                    let mut router = RouterSink {
                        global: &mut self.global,
                        locals: &mut self.locals,
                    };
                    self.sys.handle_global(now, event, &mut router);
                }
                self.steps += 1;
            } else {
                let Some(start) = tl else { break };
                if start > deadline {
                    break;
                }
                let mut bound = start + self.delta;
                if let Some(g) = tg {
                    if g < bound {
                        bound = g;
                    }
                }
                self.run_window(bound, deadline);
                self.now = if bound < deadline { bound } else { deadline };
            }
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Opens one window: drains every LP's events in `[·, bound)` (capped
    /// at `deadline`) in parallel, then merges side effects at the
    /// barrier.
    fn run_window(&mut self, bound: SimTime, deadline: SimTime) {
        self.active.clear();
        for (i, q) in self.locals.iter().enumerate() {
            if let Some(t) = q.peek_time() {
                if t < bound && t <= deadline {
                    self.active.push(i);
                }
            }
        }
        let parallel = self.pool.is_some() && self.active.len() > 1;
        if parallel {
            self.run_window_pooled(bound, deadline);
        } else {
            let DbSystem {
                params,
                catalog,
                board,
                disk_dist,
                lps,
                ..
            } = &mut self.sys;
            let sh = Shared {
                params,
                catalog,
                board,
                disk_dist: *disk_dist,
                cross: None,
            };
            for &i in &self.active {
                self.steps += drain_window(&mut lps[i], &mut self.locals[i], &sh, bound, deadline);
            }
        }
        self.barrier_flush();
    }

    /// Ships each active LP (and its queue) to a pool worker and swaps
    /// the results back in as they land.
    fn run_window_pooled(&mut self, bound: SimTime, deadline: SimTime) {
        let board = Arc::new(self.sys.board.clone());
        let Some(pool) = &self.pool else {
            unreachable!("pooled window without a pool");
        };
        for (k, &i) in self.active.iter().enumerate() {
            let spare = match self.spares.pop() {
                Some(s) => s,
                None => hollow_lp(&self.sys.params, i),
            };
            let lp = mem::replace(&mut self.sys.lps[i], spare);
            let queue = mem::replace(&mut self.locals[i], EventQueue::new());
            let task = Task {
                idx: i,
                lp,
                queue,
                board: Arc::clone(&board),
                bound,
                deadline,
            };
            if pool.txs[k % pool.txs.len()].send(task).is_err() {
                panic!("window worker pool shut down mid-run");
            }
        }
        let mut failure = None;
        for _ in 0..self.active.len() {
            match pool.rx.recv() {
                Ok(Reply::Done(done)) => {
                    let spare = mem::replace(&mut self.sys.lps[done.idx], done.lp);
                    self.spares.push(spare);
                    self.locals[done.idx] = done.queue;
                    self.steps += done.steps;
                }
                Ok(Reply::Panicked(msg)) => {
                    failure = Some(msg);
                    break;
                }
                Err(_) => {
                    failure = Some("window worker pool disconnected".to_string());
                    break;
                }
            }
        }
        if let Some(msg) = failure {
            panic!("{msg}");
        }
    }

    /// The barrier: merges every active LP's observation log and outbox
    /// across sites in `(time, site, log order)` order — the serial
    /// executor's flush order up to measure-zero cross-site time ties —
    /// and applies them to the board, metrics, and ring.
    fn barrier_flush(&mut self) {
        self.merged_obs.clear();
        self.merged_out.clear();
        for &i in &self.active {
            let lp = &mut self.sys.lps[i];
            for (k, &(t, o)) in lp.obs.iter().enumerate() {
                self.merged_obs.push((t, i, k, o));
            }
            lp.obs.clear();
            for (k, &(t, msg, cost)) in lp.outbox.iter().enumerate() {
                self.merged_out.push((t, i, k, msg, cost));
            }
            lp.outbox.clear();
            assert!(
                lp.deferred.is_empty(),
                "LP {i} deferred a classic-only side effect in a sharded run"
            );
        }
        self.merged_obs.sort_by(|a, b| {
            (a.0, a.1, a.2)
                .partial_cmp(&(b.0, b.1, b.2))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &(t, _, _, o) in &self.merged_obs {
            obs::apply(t, o, &mut self.sys.board, &mut self.sys.metrics);
        }
        self.merged_out.sort_by(|a, b| {
            (a.0, a.1, a.2)
                .partial_cmp(&(b.0, b.1, b.2))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &(t, from, _, msg, cost) in &self.merged_out {
            if let Some(done) = self.sys.ring.send(t, from, msg, cost) {
                self.global.push(done, Event::NetDone);
            }
        }
    }
}

/// A placeholder LP swapped into the system while the real one is out on
/// a worker thread. Never executes an event; its streams and policy are
/// arbitrary.
fn hollow_lp(params: &SystemParams, index: SiteId) -> Lp {
    Lp::new(params, PolicyKind::Local, &RngStream::new(0), index)
}
