//! Event vocabulary of the distributed-database simulation.

use dqa_queueing::PsToken;

use crate::load::SiteLoad;
use crate::params::SiteId;
use crate::query::QueryId;

/// An event in the distributed-database model.
///
/// The lifecycle of a query (Figure 2) reads directly off these events:
/// `Submit` (a terminal's think time expires) → possibly `NetDone` (query
/// shipped to a remote site) → alternating `DiskDone`/`CpuDone` for each
/// page read → possibly `NetDone` (results shipped home) → the next
/// `Submit` for that terminal is scheduled after a think time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A terminal at `site` submits a new query.
    Submit {
        /// The terminal's site (the query's home).
        site: SiteId,
    },
    /// The disk `disk` at `site` finished a page transfer. `epoch` is the
    /// site's crash epoch at schedule time: a crash drains the stations and
    /// bumps the epoch, so completions scheduled before the crash arrive
    /// stale and are ignored (FCFS has no per-job token like the PS server).
    DiskDone {
        /// Executing site.
        site: SiteId,
        /// Disk index within the site.
        disk: usize,
        /// Site crash epoch when the completion was scheduled.
        epoch: u64,
    },
    /// The CPU at `site` announced a completion; `token` validates it
    /// against intervening arrivals (processor sharing reshuffles
    /// completion times, so stale events are ignored).
    CpuDone {
        /// Executing site.
        site: SiteId,
        /// Lazy-cancellation token from the PS server.
        token: PsToken,
    },
    /// The token ring finished transmitting a message.
    NetDone,
    /// Periodic free load-status snapshot (only with `status_period > 0`
    /// and `status_msg_length == 0`): all sites' rows publish at once, at
    /// no network cost.
    StatusExchange,
    /// Site `site` broadcasts its own load row as a *real* ring message
    /// (only with `status_period > 0` and `status_msg_length > 0`).
    StatusSend {
        /// The broadcasting site.
        site: SiteId,
    },
    /// Site `site` fail-stops (fault injection only): its stations drain,
    /// resident queries enter backoff, and the site is marked unavailable.
    SiteDown {
        /// The crashing site.
        site: SiteId,
    },
    /// Site `site` finishes repair and rejoins the system.
    SiteUp {
        /// The recovering site.
        site: SiteId,
    },
    /// A ring message was dropped in flight (fault injection only). The
    /// ring still spent transmission time; this event performs the
    /// recovery bookkeeping for the lost payload.
    MsgLost {
        /// The dropped payload.
        msg: RingMsg,
        /// The sender — the logical process whose query table still holds
        /// the in-flight query (queries move tables only at delivery).
        from: SiteId,
    },
    /// A backed-off query retries after its delay expires (fault
    /// injection or resilience layer). Routed to the logical process of
    /// `site` — the home site, where every backed-off query parks — so
    /// the retry re-allocates with the home terminal's own streams.
    Resubmit {
        /// The retrying query.
        query: QueryId,
        /// The site whose query table holds the backed-off query.
        site: SiteId,
    },
    /// A completed query's lost result set is retransmitted from its
    /// execution site after a backoff (fault injection only). Unlike
    /// [`Event::Resubmit`] this is a *global* event: losing the query on
    /// retry exhaustion frees a terminal at the home site, which crosses
    /// logical-process boundaries and therefore must run at a barrier.
    Retransmit {
        /// The completed query awaiting result delivery.
        query: QueryId,
        /// The execution site whose query table holds it.
        site: SiteId,
    },
    /// A query's deadline expired (deadline lifecycle only). Honored only
    /// if `epoch` still matches the query's `deadline_epoch` — every
    /// re-arm, crash recovery, or cancellation bumps the epoch, so stale
    /// expiries are ignored on delivery (lazy cancellation).
    DeadlineExpire {
        /// The expiring query.
        query: QueryId,
        /// The query's deadline epoch when the expiry was armed.
        epoch: u32,
        /// The site whose query table held the query when armed; a query
        /// that has since moved tables carries a fresh id there, so the
        /// stale expiry misses by construction.
        site: SiteId,
    },
    /// The injected ring partition begins: the sites split into disjoint
    /// contiguous groups and query/result frames crossing a group
    /// boundary are dropped at delivery (fault injection only).
    PartitionStart,
    /// The injected ring partition heals: full connectivity returns.
    PartitionHeal,
    /// Entry `index` of the deterministic fault-environment script fires
    /// (trace replay only): a scripted crash, repair, or partition
    /// toggle that draws no random numbers and schedules no stochastic
    /// follow-up. See [`crate::params::ScriptEntry`].
    Script {
        /// Index into `SystemParams::script`.
        index: usize,
    },
}

/// What a ring message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// A query descriptor traveling to its execution site.
    Dispatch,
    /// Query results returning to the home site.
    Result,
    /// A first-win cancel frame for a losing hedge attempt (redundancy
    /// layer only). Fire-and-forget: it is never retried on loss — a
    /// loser whose cancel never arrives is discarded at completion time
    /// by the hedge group's winner guard instead.
    Cancel,
}

/// A message on the token ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingMsg {
    /// A query descriptor or result set.
    Query {
        /// The query the message belongs to.
        query: QueryId,
        /// Payload kind.
        kind: MsgKind,
        /// Delivery site.
        dest: SiteId,
    },
    /// A load-status broadcast: `site`'s row as of the moment the message
    /// was enqueued. Every site updates its table when the frame passes.
    Status {
        /// The broadcasting site.
        site: SiteId,
        /// The broadcast row (snapshotted at enqueue time).
        load: SiteLoad,
        /// Backpressure bit: the site was at an admission cap when it
        /// broadcast (always `false` without admission control).
        /// Demand-aware allocation treats a full site as "do not route
        /// here".
        full: bool,
    },
}
