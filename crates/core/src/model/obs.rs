//! Deferred metric/board observations from logical-process handlers.
//!
//! The parallel-in-time executor (DESIGN.md §12) runs one logical process
//! (LP) per site, and LP event handlers may only touch their own site's
//! state. Metrics and the shared load board are global, so handlers do not
//! write them directly: they append `(time, Obs)` records to their LP's
//! observation log, and the log is *applied* to the global structures with
//! full access — immediately after the event in the serial executor, and
//! at the next window barrier (merged across LPs in timestamp order) in
//! the sharded executor. Because observation application is commutative
//! across LPs at distinct timestamps, both schedules produce the same
//! global state; ties are broken by `(time, lp index, log order)`, which
//! matches the serial order except on measure-zero exact time collisions
//! between different sites' events.
//!
//! Barrier-time handlers (ring deliveries, crashes, partition edges) run
//! with full access in both executors and mutate [`Metrics`] and the board
//! directly — only per-LP handlers need the log.

use dqa_sim::SimTime;

use crate::load::LoadTable;
use crate::metrics::Metrics;
use crate::params::{ClassId, SiteId};

/// One observation emitted by an LP handler, applied later with full
/// access to the global board and metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Obs {
    /// A query was submitted (`record_submit`).
    Submit {
        /// Allocated away from its home site.
        remote: bool,
    },
    /// A query completed (`record_completion`).
    Completion {
        /// Workload class.
        class: ClassId,
        /// Response time (submission to result delivery).
        response: f64,
        /// Total service received.
        service: f64,
    },
    /// A site's live load changed: mirror the LP's own-row update onto the
    /// board (`allocate`/`release`) and sample the query difference.
    Load {
        /// The site whose row changed (always the emitting LP's own site).
        site: SiteId,
        /// Which counter moved.
        io_bound: bool,
        /// `true` for allocate, `false` for release.
        up: bool,
    },
    /// A backed-off query went around again (`record_retry`).
    Retry,
    /// A query exhausted its retry budget (`record_lost`).
    Lost,
    /// A query completed after surviving at least one retry
    /// (`record_recovered`).
    Recovered,
    /// A mid-execution migration left the site (`record_migration`).
    Migration,
    /// An update spawned a propagation apply job (`record_propagation`).
    Propagation,
    /// Admission control bounced a query into backoff
    /// (`record_admission_rejected`).
    AdmissionRejected,
    /// Admission control redirected a query to a sibling site
    /// (`record_admission_redirected`).
    AdmissionRedirected,
    /// Admission control dropped a query outright
    /// (`record_admission_dropped`).
    AdmissionDropped,
    /// A hedge-eligible query was dispatched at effective redundancy
    /// `level` (`record_hedge_dispatch`); level 1 means the coin or the
    /// load-adaptive controller kept it unhedged.
    HedgeDispatch {
        /// Effective redundancy level (1-based).
        level: u32,
    },
    /// A hedge attempt was reaped at its own site after first-win
    /// cancellation flagged it mid-service (`record_hedge_cancelled`).
    HedgeCancelled {
        /// Service time the attempt had already absorbed.
        wasted: f64,
    },
}

/// Applies one observation to the global board and metrics.
pub(crate) fn apply(now: SimTime, obs: Obs, board: &mut LoadTable, metrics: &mut Metrics) {
    match obs {
        Obs::Submit { remote } => metrics.record_submit(remote),
        Obs::Completion {
            class,
            response,
            service,
        } => metrics.record_completion(class, response, service),
        Obs::Load { site, io_bound, up } => {
            if up {
                board.allocate(site, io_bound);
            } else {
                board.release(site, io_bound);
            }
            metrics.record_query_difference(now, board.query_difference());
        }
        Obs::Retry => metrics.record_retry(),
        Obs::Lost => metrics.record_lost(),
        Obs::Recovered => metrics.record_recovered(),
        Obs::Migration => metrics.record_migration(),
        Obs::Propagation => metrics.record_propagation(),
        Obs::AdmissionRejected => metrics.record_admission_rejected(),
        Obs::AdmissionRedirected => metrics.record_admission_redirected(),
        Obs::AdmissionDropped => metrics.record_admission_dropped(),
        Obs::HedgeDispatch { level } => metrics.record_hedge_dispatch(level as usize),
        Obs::HedgeCancelled { wasted } => metrics.record_hedge_cancelled(wasted),
    }
}
