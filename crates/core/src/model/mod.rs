//! The distributed-database simulation model (Figures 1 and 2).
//!
//! [`DbSystem`] wires the substrate components together into the paper's
//! closed queueing model: per-site terminals (think times), a
//! processor-sharing CPU and FCFS disks per site, a token-ring subnet, the
//! global load table, and a pluggable allocation policy. It implements
//! [`dqa_sim::Model`], so a [`dqa_sim::Engine`] drives it.

mod events;
mod site;

pub use events::{Event, MsgKind, RingMsg};
pub use site::Site;

use dqa_queueing::{PsToken, TokenRing};
use dqa_sim::random::{Dist, RngStream};
use dqa_sim::{Engine, Model, Scheduler, SimTime};

use crate::load::LoadTable;
use crate::metrics::Metrics;
use crate::params::{
    FaultSpec, ParamsError, ScriptAction, SheddingMode, SiteId, SuspicionSpec, SystemParams,
    Workload,
};
use crate::policy::{AllocationContext, Allocator, PolicyKind};
use crate::query::{ActiveQuery, QueryId, QueryKind, QueryPhase, QueryProfile, QueryTable};
use crate::replication::Catalog;
use crate::substreams;

/// Runtime state of the fault-injection layer.
///
/// The layer draws from its *own* RNG substreams
/// ([`substreams::FAULT_CRASH`]..=[`substreams::FAULT_STATUS`], disjoint
/// from the workload's tags), so enabling faults perturbs none of the
/// workload draws: a faulty run and a fault-free run with the same seed
/// share the same submission sequence until the first fault bites, and a
/// `FaultSpec` with all rates zero is byte-identical to `faults: None` —
/// the common-random-numbers property the paper's methodology relies on.
#[derive(Debug)]
struct FaultState {
    spec: FaultSpec,
    /// Crash and repair interval draws.
    rng_crash: RngStream,
    /// Per-delivery message-loss coin flips.
    rng_msg: RngStream,
    /// Retry backoff jitter.
    rng_backoff: RngStream,
    /// Status-exchange dropout coin flips.
    rng_status: RngStream,
    /// Whether the injected ring partition is currently in force.
    partition_active: bool,
}

/// The kind of site a partitioned ring frame may not reach: the token
/// ring splits into `groups` disjoint contiguous blocks of sites.
fn partition_group(site: SiteId, groups: u32, num_sites: usize) -> usize {
    site * groups as usize / num_sites
}

/// Per-(observer, target) state of the missed-broadcast failure detector.
///
/// Every site audits its peers against the costed status broadcasts it
/// receives: a target whose broadcast has not been heard for
/// `threshold` status periods becomes *suspected* (the observer's trust
/// entry in the [`LoadTable`] clears and [`AllocationContext::usable`]
/// quarantines the site); a suspected target that is heard again for
/// `probation` consecutive broadcasts is re-trusted. Detection is
/// per-observer: during a partition, sites suspect only the peers they
/// can no longer hear.
///
/// [`AllocationContext::usable`]: crate::policy::AllocationContext::usable
#[derive(Debug)]
struct SuspicionState {
    spec: SuspicionSpec,
    /// When `observer` last heard `target`'s broadcast, flattened
    /// `observer * n + target`.
    last_heard: Vec<SimTime>,
    /// Consecutive broadcasts heard from a *suspected* target (probation
    /// progress toward re-trust).
    streak: Vec<u32>,
    suspected: Vec<bool>,
}

/// Runtime state of the resilience layer (deadlines, suspicion,
/// admission control).
///
/// Like the fault layer, it draws from its own RNG substreams
/// ([`substreams::DEADLINE`], [`substreams::REALLOC_BACKOFF`]), so a
/// configuration with every resilience knob zero or off is
/// byte-identical to one with the layer absent — the common-random-numbers
/// property the extension experiments rely on.
#[derive(Debug)]
struct ResilienceState {
    /// Per-allocation deadline slack draws.
    rng_deadline: RngStream,
    /// Reallocation / admission-retry backoff jitter.
    rng_backoff: RngStream,
    suspicion: Option<SuspicionState>,
}

/// Which per-query budget a resilience retry draws down. The two
/// lifecycles are budgeted independently: admission rejects happen
/// before any work is placed, deadline reallocations after.
#[derive(Clone, Copy)]
enum RetryCounter {
    /// Deadline reallocation (`DeadlineSpec::max_reallocations`).
    Deadline,
    /// Admission reject-retry (`AdmissionSpec::max_retries`).
    Admission,
}

/// Verdict of the admission check at a chosen execution site's door.
enum Admission {
    /// Proceed at this site (possibly a redirect target).
    Admit(SiteId),
    /// Back off at the home terminal and retry later.
    Reject,
    /// Shed the query outright.
    Drop,
}

/// The complete simulated system.
///
/// Build with [`DbSystem::new`], then either drive it manually through an
/// [`Engine`] (see [`DbSystem::prime`]) or — almost always — use
/// [`crate::experiment::run`], which adds warmup handling and report
/// extraction.
///
/// # Example
///
/// ```
/// use dqa_core::model::DbSystem;
/// use dqa_core::params::SystemParams;
/// use dqa_core::policy::PolicyKind;
/// use dqa_sim::{Engine, SimTime};
///
/// let params = SystemParams::builder().num_sites(2).mpl(5).build()?;
/// let system = DbSystem::new(params, PolicyKind::Lert, 42)?;
/// let mut engine = Engine::new(system);
/// DbSystem::prime(&mut engine);
/// engine.run_until(SimTime::new(5_000.0));
/// assert!(engine.model().metrics().completed() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DbSystem {
    params: SystemParams,
    sites: Vec<Site>,
    ring: TokenRing<RingMsg>,
    load: LoadTable,
    catalog: Catalog,
    allocator: Allocator,
    queries: QueryTable,
    metrics: Metrics,
    disk_dist: Dist,
    rng_think: RngStream,
    rng_class: RngStream,
    rng_reads: RngStream,
    rng_cpu: RngStream,
    rng_disk: RngStream,
    rng_choice: RngStream,
    rng_estimate: RngStream,
    rng_relation: RngStream,
    rng_update: RngStream,
    fault: Option<FaultState>,
    resilience: Option<ResilienceState>,
}

impl DbSystem {
    /// Creates the system in its empty initial state (every terminal about
    /// to start thinking).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `params` fails validation.
    pub fn new(params: SystemParams, policy: PolicyKind, seed: u64) -> Result<Self, ParamsError> {
        params.validate()?;
        let root = RngStream::new(seed);
        let start = SimTime::ZERO;
        Ok(DbSystem {
            sites: (0..params.num_sites)
                .map(|_| Site::new(params.num_disks, start))
                .collect(),
            ring: TokenRing::new(params.num_sites, start),
            // dqa-lint: allow(no-float-eq) -- 0.0 is the exact config sentinel for "perfect information"
            load: LoadTable::new(params.num_sites, params.status_period == 0.0),
            catalog: match params.copies {
                None => Catalog::fully_replicated(params.num_sites, params.num_relations),
                Some(k) => Catalog::new(params.num_sites, params.num_relations, k),
            },
            allocator: Allocator::new(policy, seed),
            queries: QueryTable::new(),
            metrics: Metrics::new(params.classes.len(), start),
            disk_dist: Dist::uniform_deviation(params.disk_time, params.disk_time_dev),
            rng_think: root.substream(substreams::THINK),
            rng_class: root.substream(substreams::CLASS),
            rng_reads: root.substream(substreams::READS),
            rng_cpu: root.substream(substreams::CPU),
            rng_disk: root.substream(substreams::DISK),
            rng_choice: root.substream(substreams::CHOICE),
            rng_estimate: root.substream(substreams::ESTIMATE),
            rng_relation: root.substream(substreams::RELATION),
            rng_update: root.substream(substreams::UPDATE),
            fault: params.faults.map(|spec| FaultState {
                spec,
                rng_crash: root.substream(substreams::FAULT_CRASH),
                rng_msg: root.substream(substreams::FAULT_MSG),
                rng_backoff: root.substream(substreams::FAULT_BACKOFF),
                rng_status: root.substream(substreams::FAULT_STATUS),
                partition_active: false,
            }),
            resilience: if params.deadlines.is_some()
                || params.suspicion.is_some()
                || params.admission.is_some()
            {
                let n = params.num_sites;
                Some(ResilienceState {
                    rng_deadline: root.substream(substreams::DEADLINE),
                    rng_backoff: root.substream(substreams::REALLOC_BACKOFF),
                    suspicion: params.suspicion.map(|spec| SuspicionState {
                        spec,
                        last_heard: vec![SimTime::ZERO; n * n],
                        streak: vec![0; n * n],
                        suspected: vec![false; n * n],
                    }),
                })
            } else {
                None
            },
            params,
        })
    }

    /// Schedules the initial events: one first `Submit` per terminal
    /// (after an initial think time) and, if configured, the periodic
    /// status exchange.
    pub fn prime(engine: &mut Engine<DbSystem>) {
        let mut initial = Vec::new();
        {
            let model = engine.model_mut();
            match model.params.workload {
                Workload::Closed => {
                    for site in 0..model.params.num_sites {
                        for _ in 0..model.params.mpl {
                            let think = model.rng_think.exponential(model.params.think_time);
                            initial.push((SimTime::ZERO + think, Event::Submit { site }));
                        }
                    }
                }
                Workload::Open { arrival_rate } => {
                    for site in 0..model.params.num_sites {
                        let gap = model.rng_think.exponential(1.0 / arrival_rate);
                        initial.push((SimTime::ZERO + gap, Event::Submit { site }));
                    }
                }
            }
            let n_sites = model.params.num_sites;
            if let Some(f) = &mut model.fault {
                if f.spec.mtbf > 0.0 {
                    for site in 0..n_sites {
                        let ttf = f.rng_crash.exponential(f.spec.mtbf);
                        initial.push((SimTime::ZERO + ttf, Event::SiteDown { site }));
                    }
                }
                if f.spec.has_partition() {
                    initial.push((SimTime::ZERO + f.spec.partition_at, Event::PartitionStart));
                    initial.push((
                        SimTime::ZERO + f.spec.partition_at + f.spec.partition_for,
                        Event::PartitionHeal,
                    ));
                }
            }
            // Scripted fault-environment actions fire exactly as written
            // (validate guarantees a fault spec exists for them).
            for (index, entry) in model.params.script.iter().enumerate() {
                initial.push((SimTime::ZERO + entry.at, Event::Script { index }));
            }
            if model.params.status_period > 0.0 {
                if model.params.status_msg_length > 0.0 {
                    // Costed broadcasts: stagger the sites across the
                    // period so status frames do not collide in bursts.
                    let n = model.params.num_sites as f64;
                    for site in 0..model.params.num_sites {
                        let offset = model.params.status_period * (site as f64 + 1.0) / n;
                        initial.push((SimTime::ZERO + offset, Event::StatusSend { site }));
                    }
                } else {
                    initial.push((
                        SimTime::ZERO + model.params.status_period,
                        Event::StatusExchange,
                    ));
                }
            }
        }
        for (t, e) in initial {
            engine.schedule(t, e);
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_submit(&mut self, now: SimTime, home: SiteId, sched: &mut Scheduler<Event>) {
        // Under an open workload the source is self-perpetuating: the
        // next arrival at this site is independent of completions.
        if let Workload::Open { arrival_rate } = self.params.workload {
            let gap = self.rng_think.exponential(1.0 / arrival_rate);
            sched.after(gap, Event::Submit { site: home });
        }
        // A terminal at a crashed site cannot submit. Closed model: the
        // terminal waits out a backoff and tries again (the query is not
        // yet drawn, so no work is lost). Open model: the arrival bounces.
        if !self.sites[home].is_up() {
            match self.params.workload {
                Workload::Closed => {
                    let delay = self.backoff_delay(1);
                    sched.after(delay, Event::Submit { site: home });
                }
                Workload::Open { .. } => self.metrics.record_lost(),
            }
            return;
        }
        // Draw the query's class and size.
        let class = self.draw_class();
        let spec = &self.params.classes[class];
        let reads_total = Dist::exponential(spec.num_reads).sample_count(&mut self.rng_reads);
        let est_reads = if self.params.estimate_error > 0.0 {
            let e = self.params.estimate_error;
            f64::from(reads_total) * self.rng_estimate.uniform(1.0 - e, 1.0 + e)
        } else {
            f64::from(reads_total)
        };

        let relation = self.rng_relation.below(self.params.num_relations);
        let profile = QueryProfile {
            class,
            num_reads: est_reads,
            page_cpu_time: spec.page_cpu_time,
            home,
            io_bound: self.params.is_io_bound(spec.page_cpu_time),
            relation,
        };

        // The allocation decision (Figure 3 with the policy's cost
        // function), based on the published load table and restricted to
        // the sites holding the query's relation.
        let exec = {
            let ctx = AllocationContext {
                params: &self.params,
                load: &self.load,
                arrival_site: home,
            };
            self.allocator
                .select_site_among(&profile, &ctx, self.catalog.candidates(relation))
        };
        let kind = if self.params.update_fraction > 0.0
            && self.rng_update.bernoulli(self.params.update_fraction)
        {
            QueryKind::Update
        } else {
            QueryKind::Read
        };

        // Every holder of the relation is down (fault injection, partial
        // replication): the SelectSite fallback returned the arrival site,
        // which holds no copy. The query backs off at its home terminal —
        // unallocated — and retries when a holder may be back.
        if !self.catalog.holds(exec, relation) {
            debug_assert!(self.params.faults.is_some());
            self.metrics.record_submit(false);
            let id = self.queries.insert_with(|id| ActiveQuery {
                id,
                profile,
                exec: home,
                reads_total,
                reads_done: 0,
                submitted: now,
                service: 0.0,
                phase: QueryPhase::Backoff,
                kind,
                retries: 0,
                deadline_epoch: 0,
                res_retries: 0,
                adm_retries: 0,
                expired: false,
            });
            self.schedule_retry(now, id, sched);
            return;
        }

        // Admission control at the chosen site's door. The site checks its
        // own *live* state (a site knows itself), not the published table.
        let exec = match self.admit_or_shed(exec, home, relation) {
            Admission::Admit(site) => site,
            Admission::Drop => {
                self.metrics.record_submit(false);
                self.metrics.record_admission_dropped();
                if matches!(self.params.workload, Workload::Closed) {
                    let think = self.rng_think.exponential(self.params.think_time);
                    sched.after(think, Event::Submit { site: home });
                }
                return;
            }
            Admission::Reject => {
                self.metrics.record_submit(false);
                let id = self.queries.insert_with(|id| ActiveQuery {
                    id,
                    profile,
                    exec: home,
                    reads_total,
                    reads_done: 0,
                    submitted: now,
                    service: 0.0,
                    phase: QueryPhase::Backoff,
                    kind,
                    retries: 0,
                    deadline_epoch: 0,
                    res_retries: 0,
                    adm_retries: 0,
                    expired: false,
                });
                let a = self.params.admission.expect("admission layer active");
                if self.resilience_retry(
                    now,
                    id,
                    a.backoff_base,
                    a.max_retries,
                    RetryCounter::Admission,
                    sched,
                ) {
                    self.metrics.record_admission_rejected();
                } else {
                    self.metrics.record_admission_dropped();
                }
                return;
            }
        };

        self.load.allocate(exec, profile.io_bound);
        self.metrics
            .record_query_difference(now, self.load.query_difference());

        let remote = exec != home;
        self.metrics.record_submit(remote);
        let id = self.queries.insert_with(|id| ActiveQuery {
            id,
            profile,
            exec,
            reads_total,
            reads_done: 0,
            submitted: now,
            service: 0.0,
            phase: if remote {
                QueryPhase::Transfer
            } else {
                QueryPhase::Disk
            },
            kind,
            retries: 0,
            deadline_epoch: 0,
            res_retries: 0,
            adm_retries: 0,
            expired: false,
        });
        self.arm_deadline(now, id, sched);

        if remote {
            let msg = RingMsg::Query {
                query: id,
                kind: MsgKind::Dispatch,
                dest: exec,
            };
            let cost = self.params.dispatch_cost(class);
            if let Some(done) = self.ring.send(now, home, msg, cost) {
                sched.at(done, Event::NetDone);
            }
        } else {
            self.start_read(now, id, sched);
        }
    }

    /// Sends the query to a disk at its execution site for its next page
    /// read.
    fn start_read(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let q = self.queries.get_mut(id).expect("query in flight");
        q.phase = QueryPhase::Disk;
        let site_id = q.exec;
        let service = self.disk_dist.sample(&mut self.rng_disk);
        q.service += service;

        let site = &mut self.sites[site_id];
        debug_assert!(site.is_up(), "read started at a down site");
        let epoch = site.epoch();
        let random_pick = self.rng_choice.below(site.disks.len());
        let disk = site.choose_disk(self.params.disk_choice, random_pick);
        if let Some(done) = site.disks[disk].arrive(now, id, service) {
            sched.at(
                done,
                Event::DiskDone {
                    site: site_id,
                    disk,
                    epoch,
                },
            );
        }
    }

    fn handle_disk_done(
        &mut self,
        now: SimTime,
        site_id: SiteId,
        disk: usize,
        epoch: u64,
        sched: &mut Scheduler<Event>,
    ) {
        // A crash between schedule and delivery drained the disk queue;
        // the event refers to a job that no longer exists there.
        if epoch != self.sites[site_id].epoch() {
            return;
        }
        let (id, next) = self.sites[site_id].disks[disk].complete(now);
        if let Some(t) = next {
            sched.at(
                t,
                Event::DiskDone {
                    site: site_id,
                    disk,
                    epoch,
                },
            );
        }

        // The deadline expired while this page read was in service: FCFS
        // service is immutable once started, so the read finished, but
        // the query goes no further.
        let expired = {
            let q = self.queries.get(id).expect("query in flight");
            debug_assert_eq!(q.exec, site_id);
            q.expired
        };
        if expired {
            self.cancel_and_reallocate(now, id, sched);
            return;
        }

        // The page is in memory; process it on the CPU.
        let q = self.queries.get_mut(id).expect("query in flight");
        q.phase = QueryPhase::Cpu;
        // A faster CPU finishes the same page in proportionally less time.
        let work = self
            .rng_cpu
            .exponential(self.params.classes[q.profile.class].page_cpu_time)
            / self.params.cpu_speed(site_id);
        q.service += work;
        if let Some((t, token)) = self.sites[site_id].cpu.arrive(now, id, work) {
            sched.at(
                t,
                Event::CpuDone {
                    site: site_id,
                    token,
                },
            );
        }
    }

    fn handle_cpu_done(
        &mut self,
        now: SimTime,
        site_id: SiteId,
        token: PsToken,
        sched: &mut Scheduler<Event>,
    ) {
        // Processor sharing reshuffles completion times on every arrival;
        // stale announcements are ignored.
        let Some((id, next)) = self.sites[site_id].cpu.complete(now, token) else {
            return;
        };
        if let Some((t, tok)) = next {
            sched.at(
                t,
                Event::CpuDone {
                    site: site_id,
                    token: tok,
                },
            );
        }

        let q = self.queries.get_mut(id).expect("query in flight");
        q.reads_done += 1;
        if !q.execution_finished() {
            if let Some(spec) = self.params.migration {
                // Apply jobs are pinned to their replica.
                if q.kind != QueryKind::Propagation
                    && q.reads_done.is_multiple_of(spec.check_every_reads)
                    && self.try_migrate(now, id, &spec, sched)
                {
                    return;
                }
            }
            self.start_read(now, id, sched);
            return;
        }

        // Execution complete: the query leaves the site's load.
        let (io_bound, home, remote, kind, class, reads_total) = (
            q.profile.io_bound,
            q.profile.home,
            q.is_remote(),
            q.kind,
            q.profile.class,
            q.reads_total,
        );
        self.load.release(site_id, io_bound);
        self.metrics
            .record_query_difference(now, self.load.query_difference());

        match kind {
            QueryKind::Propagation => {
                // The replica is now up to date; nothing returns anywhere.
                self.queries.remove(id);
                self.metrics.record_propagation();
                return;
            }
            QueryKind::Update => self.spawn_propagations(now, id, site_id, sched),
            QueryKind::Read => {}
        }

        if remote {
            self.queries.get_mut(id).expect("in flight").phase = QueryPhase::Return;
            let msg = RingMsg::Query {
                query: id,
                kind: MsgKind::Result,
                dest: home,
            };
            let cost = self.params.result_cost(class, f64::from(reads_total));
            if let Some(done) = self.ring.send(now, site_id, msg, cost) {
                sched.at(done, Event::NetDone);
            }
        } else {
            self.complete_query(now, id, sched);
        }
    }

    /// Ships read-one-write-all apply jobs to every other holder of the
    /// finished update's relation. Each job travels the ring like a
    /// dispatch, then cycles the replica's disks and CPU for
    /// `propagation_factor × reads` page writes.
    fn spawn_propagations(
        &mut self,
        now: SimTime,
        update: QueryId,
        exec: SiteId,
        sched: &mut Scheduler<Event>,
    ) {
        if self.params.propagation_factor <= 0.0 {
            return;
        }
        let (relation, class, reads_total, io_bound, page_cpu_time) = {
            let q = self.queries.get(update).expect("query in flight");
            (
                q.profile.relation,
                q.profile.class,
                q.reads_total,
                q.profile.io_bound,
                q.profile.page_cpu_time,
            )
        };
        let apply_reads =
            ((f64::from(reads_total) * self.params.propagation_factor).round() as u32).max(1);
        // Walk the copy set by index: collecting the holders first would
        // allocate a Vec on every completed update.
        for j in 0..self.catalog.candidates(relation).len() {
            let holder = self.catalog.candidates(relation)[j];
            if holder == exec {
                continue;
            }
            let id = self.queries.insert_with(|id| ActiveQuery {
                id,
                profile: QueryProfile {
                    class,
                    num_reads: f64::from(apply_reads),
                    page_cpu_time,
                    home: holder,
                    io_bound,
                    relation,
                },
                exec: holder,
                reads_total: apply_reads,
                reads_done: 0,
                submitted: now,
                service: 0.0,
                phase: QueryPhase::Transfer,
                kind: QueryKind::Propagation,
                retries: 0,
                deadline_epoch: 0,
                res_retries: 0,
                adm_retries: 0,
                expired: false,
            });
            self.load.allocate(holder, io_bound);
            let msg = RingMsg::Query {
                query: id,
                kind: MsgKind::Dispatch,
                dest: holder,
            };
            if let Some(done) = self.ring.send(now, exec, msg, self.params.msg_length) {
                sched.at(done, Event::NetDone);
            }
        }
        self.metrics
            .record_query_difference(now, self.load.query_difference());
    }

    /// Re-evaluates a partially executed query's placement (§6.2
    /// extension). Returns `true` if the query was put on the wire toward
    /// a better site.
    fn try_migrate(
        &mut self,
        now: SimTime,
        id: QueryId,
        spec: &crate::params::MigrationSpec,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let (current, remaining, relation, io_bound, reads_done) = {
            let q = self.queries.get(id).expect("query in flight");
            let remaining_reads = (q.profile.num_reads - f64::from(q.reads_done)).max(1.0);
            let mut remaining = q.profile;
            remaining.num_reads = remaining_reads;
            (
                q.exec,
                remaining,
                q.profile.relation,
                q.profile.io_bound,
                q.reads_done,
            )
        };
        let state_penalty = self.params.msg_length * spec.state_growth * f64::from(reads_done);
        // The Figure-6 cost functions are self-exclusive (an arriving
        // query is not yet in any count); a re-evaluated query must
        // likewise not see itself as a competitor at its current site.
        self.load.release(current, io_bound);
        let target = {
            let ctx = AllocationContext {
                params: &self.params,
                load: &self.load,
                arrival_site: current,
            };
            self.allocator.migration_target(
                &remaining,
                current,
                &ctx,
                self.catalog.candidates(relation),
                spec.min_gain,
                state_penalty,
            )
        };
        let Some(target) = target else {
            self.load.allocate(current, io_bound);
            return false;
        };

        // The query leaves its current site and travels — with its
        // accumulated partial results — to the new one.
        self.load.allocate(target, io_bound);
        self.metrics
            .record_query_difference(now, self.load.query_difference());
        self.metrics.record_migration();
        {
            let q = self.queries.get_mut(id).expect("query in flight");
            q.exec = target;
            q.phase = QueryPhase::Transfer;
        }
        let len = self.params.msg_length * (1.0 + spec.state_growth * f64::from(reads_done));
        let msg = RingMsg::Query {
            query: id,
            kind: MsgKind::Dispatch,
            dest: target,
        };
        if let Some(done) = self.ring.send(now, current, msg, len) {
            sched.at(done, Event::NetDone);
        }
        true
    }

    fn handle_net_done(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let (msg, from, next) = self.ring.transmit_done(now);
        if let Some(t) = next {
            sched.at(t, Event::NetDone);
        }
        // The frame occupied the ring for its full transmission time
        // whether or not it arrives; loss is decided at delivery.
        if let Some(f) = &mut self.fault {
            if f.spec.msg_loss > 0.0 && f.rng_msg.bernoulli(f.spec.msg_loss) {
                sched.at(now, Event::MsgLost { msg });
                return;
            }
        }
        // An active partition drops query frames that cross a group
        // boundary at delivery (the ring time is spent regardless).
        // Status broadcasts still publish rows everywhere — the load table
        // is a modeling abstraction, not a routed message — but the
        // suspicion detector only *hears* senders in the observer's own
        // group, so cross-group peers drift into quarantine.
        let crossing = self.fault.as_ref().is_some_and(|f| {
            f.partition_active
                && match msg {
                    RingMsg::Query { dest, .. } => {
                        let g = f.spec.partition_groups;
                        let n = self.params.num_sites;
                        partition_group(from, g, n) != partition_group(dest, g, n)
                    }
                    RingMsg::Status { .. } => false,
                }
        });
        if crossing {
            self.metrics.record_partition_drop();
            match msg {
                RingMsg::Query {
                    query,
                    kind: MsgKind::Dispatch,
                    ..
                } => self.fail_execution(now, query, sched),
                RingMsg::Query {
                    query,
                    kind: MsgKind::Result,
                    ..
                } => self.schedule_retry(now, query, sched),
                RingMsg::Status { .. } => unreachable!("status frames are never dropped here"),
            }
            return;
        }
        match msg {
            RingMsg::Query { query, kind, dest } => {
                if !self.sites[dest].is_up() {
                    // The destination crashed while the message was in
                    // flight: undeliverable (but not a subnet loss).
                    match kind {
                        MsgKind::Dispatch => self.fail_execution(now, query, sched),
                        MsgKind::Result => self.schedule_retry(now, query, sched),
                    }
                    return;
                }
                match kind {
                    MsgKind::Dispatch => {
                        // The deadline expired while the dispatch was on
                        // the wire: cancel instead of starting execution.
                        if self.queries.get(query).expect("query in flight").expired {
                            self.cancel_and_reallocate(now, query, sched);
                        } else {
                            self.start_read(now, query, sched);
                        }
                    }
                    MsgKind::Result => self.complete_query(now, query, sched),
                }
            }
            // A broadcast frame passes every site: all tables update.
            RingMsg::Status { site, load, full } => {
                self.load.publish_row(site, load);
                self.load.set_full(site, full);
                self.hear_status(now, site);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault handlers (all unreachable when `params.faults` is `None`)
    // ------------------------------------------------------------------

    /// Jittered exponential backoff for retry `attempt` (1-based):
    /// `backoff_base · 2^(attempt−1) · U(0.5, 1.5)`.
    fn backoff_delay(&mut self, attempt: u32) -> f64 {
        let f = self.fault.as_mut().expect("fault layer active");
        let exp = attempt.saturating_sub(1).min(16);
        f.spec.backoff_base * f64::from(1u32 << exp) * f.rng_backoff.uniform(0.5, 1.5)
    }

    /// Consumes one retry attempt for `id`: either schedules a `Resubmit`
    /// after a backoff delay or — once the budget is exhausted — abandons
    /// the query. The caller must already have released any load-table
    /// slot the query held.
    fn schedule_retry(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let max_retries = self
            .fault
            .as_ref()
            .expect("fault layer active")
            .spec
            .max_retries;
        let attempts = {
            let q = self.queries.get_mut(id).expect("query in flight");
            q.retries += 1;
            q.retries
        };
        if attempts > max_retries {
            self.lose_query(now, id, sched);
        } else {
            self.metrics.record_retry();
            let delay = self.backoff_delay(attempts);
            sched.after(delay, Event::Resubmit { query: id });
        }
    }

    /// The query's execution was destroyed (site crash or lost dispatch):
    /// its partial work is wasted, its load slot is freed, and it enters
    /// backoff for a fresh attempt.
    fn fail_execution(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let (exec, io_bound) = {
            let q = self.queries.get_mut(id).expect("query in flight");
            debug_assert!(!matches!(q.phase, QueryPhase::Return | QueryPhase::Backoff));
            q.phase = QueryPhase::Backoff;
            // Wasted partial work shows up as waiting time, not service.
            q.reads_done = 0;
            q.service = 0.0;
            // Any armed deadline refers to the destroyed attempt; a fresh
            // one is armed if the query is ever re-allocated.
            q.expired = false;
            q.deadline_epoch += 1;
            (q.exec, q.profile.io_bound)
        };
        self.load.release(exec, io_bound);
        self.metrics
            .record_query_difference(now, self.load.query_difference());
        self.schedule_retry(now, id, sched);
    }

    /// The query exhausted its retry budget and is abandoned. Closed
    /// model: its terminal nevertheless returns to thinking, preserving
    /// the closed population.
    fn lose_query(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let _ = now;
        let q = self.queries.remove(id).expect("query in flight");
        self.metrics.record_lost();
        if matches!(self.params.workload, Workload::Closed) && q.kind != QueryKind::Propagation {
            let think = self.rng_think.exponential(self.params.think_time);
            sched.after(
                think,
                Event::Submit {
                    site: q.profile.home,
                },
            );
        }
    }

    /// The fail-stop state change shared by stochastic crashes and
    /// scripted ones: drain the stations, mark the site unavailable, and
    /// push every resident query into fault recovery. Schedules no
    /// repair — that is the caller's (stochastic or scripted) business.
    fn crash_site(&mut self, now: SimTime, site: SiteId, sched: &mut Scheduler<Event>) {
        let victims = self.sites[site].crash(now);
        self.load.set_available(site, false);
        let frac = self.load.available_sites() as f64 / self.params.num_sites as f64;
        self.metrics.record_availability(now, frac);
        for id in victims {
            self.fail_execution(now, id, sched);
        }
    }

    /// The repair state change shared by stochastic and scripted
    /// recoveries: the site rejoins, its availability row returns, and
    /// its suspicion-observer row is refreshed (it heard nothing while
    /// down, so every peer gets a full detection window instead of being
    /// suspected wholesale on the first sweep). Schedules no next crash.
    fn recover_site(&mut self, now: SimTime, site: SiteId) {
        self.sites[site].recover();
        self.load.set_available(site, true);
        if let Some(s) = self.resilience.as_mut().and_then(|r| r.suspicion.as_mut()) {
            let n = self.params.num_sites;
            for target in 0..n {
                s.last_heard[site * n + target] = now;
            }
        }
        let frac = self.load.available_sites() as f64 / self.params.num_sites as f64;
        self.metrics.record_availability(now, frac);
    }

    /// Site `site` fail-stops (stochastic crash process).
    fn handle_site_down(&mut self, now: SimTime, site: SiteId, sched: &mut Scheduler<Event>) {
        self.crash_site(now, site, sched);
        let f = self.fault.as_mut().expect("fault layer active");
        // An MTTR of zero means instant repair: skip the draw (the
        // exponential sampler requires a positive mean) and schedule the
        // recovery at the current instant.
        let repair = if f.spec.mttr > 0.0 {
            f.rng_crash.exponential(f.spec.mttr)
        } else {
            0.0
        };
        sched.after(repair, Event::SiteUp { site });
    }

    /// Site `site` finishes repair (stochastic crash process).
    fn handle_site_up(&mut self, now: SimTime, site: SiteId, sched: &mut Scheduler<Event>) {
        self.recover_site(now, site);
        let f = self.fault.as_mut().expect("fault layer active");
        if f.spec.mtbf > 0.0 {
            let ttf = f.rng_crash.exponential(f.spec.mtbf);
            sched.after(ttf, Event::SiteDown { site });
        }
    }

    /// Entry `index` of the deterministic fault-environment script fires.
    /// Scripted actions draw no random numbers and schedule no stochastic
    /// follow-ups; actions that match the current state (crashing a down
    /// site, healing an inactive partition) are no-ops, so scripts are
    /// idempotent under replay.
    fn handle_script(&mut self, now: SimTime, index: usize, sched: &mut Scheduler<Event>) {
        let entry = self.params.script[index];
        match entry.action {
            ScriptAction::SiteDown(site) => {
                if self.sites[site].is_up() {
                    self.crash_site(now, site, sched);
                }
            }
            ScriptAction::SiteUp(site) => {
                if !self.sites[site].is_up() {
                    self.recover_site(now, site);
                }
            }
            ScriptAction::PartitionStart => {
                self.fault
                    .as_mut()
                    .expect("fault layer active")
                    .partition_active = true;
            }
            ScriptAction::PartitionHeal => {
                self.fault
                    .as_mut()
                    .expect("fault layer active")
                    .partition_active = false;
            }
        }
    }

    /// A ring message was dropped in flight.
    fn handle_msg_lost(&mut self, now: SimTime, msg: RingMsg, sched: &mut Scheduler<Event>) {
        self.metrics.record_msg_lost();
        match msg {
            RingMsg::Query {
                query,
                kind: MsgKind::Dispatch,
                ..
            } => self.fail_execution(now, query, sched),
            RingMsg::Query {
                query,
                kind: MsgKind::Result,
                ..
            } => self.schedule_retry(now, query, sched),
            // A lost broadcast just means everyone keeps stale rows until
            // the next period.
            RingMsg::Status { .. } => {}
        }
    }

    /// A backed-off query's retry delay expired.
    fn handle_resubmit(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let (phase, kind, home) = {
            let q = self.queries.get(id).expect("query in flight");
            (q.phase, q.kind, q.profile.home)
        };
        match phase {
            // Results were lost on the wire: retransmit them (the
            // execution site keeps them logged until acknowledged).
            QueryPhase::Return => {
                let (exec, class, reads_total) = {
                    let q = self.queries.get(id).expect("query in flight");
                    (q.exec, q.profile.class, q.reads_total)
                };
                if self.sites[exec].is_up() {
                    let msg = RingMsg::Query {
                        query: id,
                        kind: MsgKind::Result,
                        dest: home,
                    };
                    let cost = self.params.result_cost(class, f64::from(reads_total));
                    if let Some(done) = self.ring.send(now, exec, msg, cost) {
                        sched.at(done, Event::NetDone);
                    }
                } else {
                    // The log is unreachable while its site is down.
                    self.schedule_retry(now, id, sched);
                }
            }
            // A fresh execution attempt: re-allocate failure-aware.
            QueryPhase::Backoff => {
                if !self.sites[home].is_up() {
                    // The query's own site is (still) down; keep waiting.
                    self.schedule_retry(now, id, sched);
                    return;
                }
                let (profile, relation) = {
                    let q = self.queries.get(id).expect("query in flight");
                    (q.profile, q.profile.relation)
                };
                // Apply jobs are pinned to their replica; everything else
                // re-runs the failure-aware allocation from home.
                let exec = if kind == QueryKind::Propagation {
                    home
                } else {
                    let ctx = AllocationContext {
                        params: &self.params,
                        load: &self.load,
                        arrival_site: home,
                    };
                    self.allocator.select_site_among(
                        &profile,
                        &ctx,
                        self.catalog.candidates(relation),
                    )
                };
                if !self.catalog.holds(exec, relation) {
                    // Still no holder reachable: keep backing off.
                    self.schedule_retry(now, id, sched);
                    return;
                }
                // Admission applies to re-allocations too; apply jobs are
                // pinned to their replica and exempt.
                let exec = if kind == QueryKind::Propagation {
                    exec
                } else {
                    match self.admit_or_shed(exec, home, relation) {
                        Admission::Admit(site) => site,
                        Admission::Drop => {
                            self.metrics.record_admission_dropped();
                            self.shed_query(now, id, sched);
                            return;
                        }
                        Admission::Reject => {
                            let a = self.params.admission.expect("admission layer active");
                            if self.resilience_retry(
                                now,
                                id,
                                a.backoff_base,
                                a.max_retries,
                                RetryCounter::Admission,
                                sched,
                            ) {
                                self.metrics.record_admission_rejected();
                            } else {
                                self.metrics.record_admission_dropped();
                            }
                            return;
                        }
                    }
                };
                self.load.allocate(exec, profile.io_bound);
                self.metrics
                    .record_query_difference(now, self.load.query_difference());
                let remote = exec != home;
                {
                    let q = self.queries.get_mut(id).expect("query in flight");
                    q.exec = exec;
                    q.phase = if remote {
                        QueryPhase::Transfer
                    } else {
                        QueryPhase::Disk
                    };
                }
                self.arm_deadline(now, id, sched);
                if remote {
                    let msg = RingMsg::Query {
                        query: id,
                        kind: MsgKind::Dispatch,
                        dest: exec,
                    };
                    let cost = self.params.dispatch_cost(profile.class);
                    if let Some(done) = self.ring.send(now, home, msg, cost) {
                        sched.at(done, Event::NetDone);
                    }
                } else {
                    self.start_read(now, id, sched);
                }
            }
            other => debug_assert!(false, "Resubmit for query in phase {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Resilience handlers (deadlines, suspicion, admission control; all
    // unreachable when the corresponding specs are absent or inactive)
    // ------------------------------------------------------------------

    /// Arms a fresh deadline for `id`'s current execution attempt: a slack
    /// of `floor + Exp(mean)` from now. Re-armed on every (re)allocation,
    /// so the budgeted retries each get a full window. Apply jobs carry no
    /// deadline — they are background system work.
    fn arm_deadline(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let _ = now;
        let Some(spec) = self.params.deadlines else {
            return;
        };
        if !spec.is_active() {
            return;
        }
        let epoch = {
            let q = self.queries.get(id).expect("query in flight");
            if q.kind == QueryKind::Propagation {
                return;
            }
            q.deadline_epoch
        };
        let r = self.resilience.as_mut().expect("resilience layer active");
        let slack = spec.floor + r.rng_deadline.exponential(spec.mean);
        sched.after(slack, Event::DeadlineExpire { query: id, epoch });
    }

    /// A query's deadline expired. Honored only if the armed `epoch` still
    /// matches (completion, crash recovery, and cancellation all bump it).
    /// The unwind is phase-exact: a waiting disk job is pulled from its
    /// queue, a CPU job is removed from the PS server (returning its
    /// unserved work), and work that cannot be recalled — a frame on the
    /// wire, a page read in immutable FCFS service — is flagged and
    /// cancelled at the next event boundary.
    fn handle_deadline_expire(
        &mut self,
        now: SimTime,
        id: QueryId,
        epoch: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let Some(q) = self.queries.get(id) else {
            return; // already completed or shed
        };
        if q.deadline_epoch != epoch {
            return; // stale expiry for a superseded attempt
        }
        let (phase, exec) = (q.phase, q.exec);
        match phase {
            // Results already exist (delivering them is cheaper than
            // redoing the work) or the query is already being unwound.
            QueryPhase::Return | QueryPhase::Backoff => {}
            // The dispatch frame cannot be recalled from the ring: flag
            // the query; the delivery handler cancels instead of starting.
            QueryPhase::Transfer => {
                self.queries.get_mut(id).expect("query in flight").expired = true;
            }
            QueryPhase::Cpu => {
                let (_unserved, next) = self.sites[exec]
                    .cpu
                    .remove(now, &id)
                    .expect("Cpu-phase query resident in its PS server");
                if let Some((t, token)) = next {
                    sched.at(t, Event::CpuDone { site: exec, token });
                }
                self.cancel_and_reallocate(now, id, sched);
            }
            QueryPhase::Disk => {
                // FCFS service is immutable once started: an in-service
                // page read finishes and the cancellation happens at its
                // `DiskDone`. A waiting job is removed on the spot.
                if self.sites[exec].disks.iter().any(|d| d.is_in_service(&id)) {
                    self.queries.get_mut(id).expect("query in flight").expired = true;
                    return;
                }
                let removed = self.sites[exec]
                    .disks
                    .iter_mut()
                    .find_map(|d| d.remove_waiting(now, &id));
                debug_assert!(
                    removed.is_some(),
                    "Disk-phase query neither in service nor waiting"
                );
                self.cancel_and_reallocate(now, id, sched);
            }
        }
    }

    /// Cancels `id`'s current execution attempt after a deadline timeout
    /// (the caller has already unwound any station state) and either
    /// re-allocates it — next-best site, after a jittered backoff — or
    /// abandons it once the reallocation budget is spent.
    fn cancel_and_reallocate(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let spec = self.params.deadlines.expect("deadline layer active");
        let (exec, io_bound, class) = {
            let q = self.queries.get_mut(id).expect("query in flight");
            debug_assert!(!matches!(q.phase, QueryPhase::Return | QueryPhase::Backoff));
            q.phase = QueryPhase::Backoff;
            // The abandoned attempt's partial work is wasted, exactly as
            // in a crash recovery; the armed expiry (if any) goes stale.
            q.reads_done = 0;
            q.service = 0.0;
            q.expired = false;
            q.deadline_epoch += 1;
            (q.exec, q.profile.io_bound, q.profile.class)
        };
        self.load.release(exec, io_bound);
        self.metrics
            .record_query_difference(now, self.load.query_difference());
        self.metrics.record_deadline_timeout(class);
        if self.resilience_retry(
            now,
            id,
            spec.backoff_base,
            spec.max_reallocations,
            RetryCounter::Deadline,
            sched,
        ) {
            self.metrics.record_deadline_reallocation(class);
        } else {
            self.metrics.record_deadline_abandoned(class);
        }
    }

    /// Consumes one resilience retry for `id` against the given budget:
    /// schedules a jittered-backoff `Resubmit` and returns `true`, or
    /// sheds the query and returns `false` once the budget is exhausted.
    /// Deadline reallocations and admission rejects count against
    /// *separate* per-query counters — a query turned away repeatedly at
    /// admission has done no work yet, so it must not arrive with its
    /// deadline reallocation budget already spent.
    fn resilience_retry(
        &mut self,
        now: SimTime,
        id: QueryId,
        base: f64,
        budget: u32,
        counter: RetryCounter,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let attempts = {
            let q = self.queries.get_mut(id).expect("query in flight");
            match counter {
                RetryCounter::Deadline => {
                    q.res_retries += 1;
                    q.res_retries
                }
                RetryCounter::Admission => {
                    q.adm_retries += 1;
                    q.adm_retries
                }
            }
        };
        if attempts > budget {
            self.shed_query(now, id, sched);
            false
        } else {
            let delay = self.resilience_backoff(base, attempts);
            sched.after(delay, Event::Resubmit { query: id });
            true
        }
    }

    /// Jittered exponential backoff on the resilience layer's own RNG
    /// substream: `base · 2^(attempt−1) · U(0.5, 1.5)`.
    fn resilience_backoff(&mut self, base: f64, attempt: u32) -> f64 {
        let r = self.resilience.as_mut().expect("resilience layer active");
        let exp = attempt.saturating_sub(1).min(16);
        base * f64::from(1u32 << exp) * r.rng_backoff.uniform(0.5, 1.5)
    }

    /// Removes a shed query (deadline abandonment or admission drop). The
    /// caller records the per-cause metric. Closed model: the terminal
    /// returns to thinking, preserving the closed population.
    fn shed_query(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let _ = now;
        let q = self.queries.remove(id).expect("query in flight");
        if matches!(self.params.workload, Workload::Closed) && q.kind != QueryKind::Propagation {
            let think = self.rng_think.exponential(self.params.think_time);
            sched.after(
                think,
                Event::Submit {
                    site: q.profile.home,
                },
            );
        }
    }

    /// Whether `site` is at an admission limit *right now* (live state):
    /// its stations hold `mpl_cap` or more resident queries, or
    /// `queue_limit` or more queries are allocated to it.
    fn site_is_full(&self, site: SiteId) -> bool {
        let Some(a) = self.params.admission else {
            return false;
        };
        if let Some(cap) = a.mpl_cap {
            if self.sites[site].resident_queries() as u32 >= cap {
                return true;
            }
        }
        if let Some(limit) = a.queue_limit {
            if self.load.live(site).total() >= limit {
                return true;
            }
        }
        false
    }

    /// The admission verdict for a query headed to `exec`. A full site
    /// sheds by its configured mode; `Redirect` re-routes to the
    /// least-loaded usable holder of `relation` (falling back to a reject
    /// when every alternative is also full, down, or quarantined).
    fn admit_or_shed(&mut self, exec: SiteId, home: SiteId, relation: usize) -> Admission {
        let Some(a) = self.params.admission else {
            return Admission::Admit(exec);
        };
        if !a.is_active() || !self.site_is_full(exec) {
            return Admission::Admit(exec);
        }
        match a.mode {
            SheddingMode::Drop => Admission::Drop,
            SheddingMode::RejectRetry => Admission::Reject,
            SheddingMode::Redirect => {
                let target = self
                    .catalog
                    .candidates(relation)
                    .iter()
                    .copied()
                    .filter(|&s| {
                        s != exec
                            && self.load.is_available(s)
                            && self.load.is_trusted(home, s)
                            && !self.site_is_full(s)
                    })
                    .min_by_key(|&s| (self.load.view(s).total(), s));
                match target {
                    Some(t) => {
                        self.metrics.record_admission_redirected();
                        Admission::Admit(t)
                    }
                    None => Admission::Reject,
                }
            }
        }
    }

    /// The suspicion sweep a site runs when its own broadcast timer fires:
    /// any peer not heard for `threshold` status periods becomes suspected
    /// and loses this observer's trust.
    fn sweep_suspicion(&mut self, now: SimTime, observer: SiteId) {
        let Some(s) = self.resilience.as_mut().and_then(|r| r.suspicion.as_mut()) else {
            return;
        };
        let n = self.params.num_sites;
        let horizon = f64::from(s.spec.threshold) * self.params.status_period;
        for target in 0..n {
            if target == observer {
                continue;
            }
            let k = observer * n + target;
            if !s.suspected[k] && now - s.last_heard[k] > horizon {
                s.suspected[k] = true;
                s.streak[k] = 0;
                self.load.set_trusted(observer, target, false);
            }
        }
    }

    /// A status broadcast from `sender` was delivered: every observer that
    /// can hear it (same partition group, and itself up) refreshes its
    /// detector entry; a suspected sender works off its rejoin probation
    /// one heard broadcast at a time.
    fn hear_status(&mut self, now: SimTime, sender: SiteId) {
        let n = self.params.num_sites;
        let partition_groups = self
            .fault
            .as_ref()
            .and_then(|f| f.partition_active.then_some(f.spec.partition_groups));
        let Some(s) = self.resilience.as_mut().and_then(|r| r.suspicion.as_mut()) else {
            return;
        };
        for observer in 0..n {
            if observer == sender || !self.sites[observer].is_up() {
                continue;
            }
            if let Some(g) = partition_groups {
                if partition_group(observer, g, n) != partition_group(sender, g, n) {
                    continue;
                }
            }
            let k = observer * n + sender;
            s.last_heard[k] = now;
            if s.suspected[k] {
                s.streak[k] += 1;
                if s.streak[k] >= s.spec.probation {
                    s.suspected[k] = false;
                    s.streak[k] = 0;
                    self.load.set_trusted(observer, sender, true);
                }
            }
        }
    }

    /// The query's results reached its terminal: record statistics and put
    /// the terminal back into think state.
    fn complete_query(&mut self, now: SimTime, id: QueryId, sched: &mut Scheduler<Event>) {
        let q = self.queries.remove(id).expect("query in flight");
        let response = now - q.submitted;
        if q.retries > 0 {
            self.metrics.record_recovered();
        }
        self.metrics
            .record_completion(q.profile.class, response, q.service);
        // Closed model: the terminal thinks, then submits its next query.
        // Open model: the departure leaves; arrivals are source-driven.
        if matches!(self.params.workload, Workload::Closed) {
            let think = self.rng_think.exponential(self.params.think_time);
            sched.after(
                think,
                Event::Submit {
                    site: q.profile.home,
                },
            );
        }
    }

    fn draw_class(&mut self) -> usize {
        let u = self.rng_class.next_f64();
        let mut acc = 0.0;
        for (c, spec) in self.params.classes.iter().enumerate() {
            acc += spec.probability;
            if u < acc {
                return c;
            }
        }
        self.params.classes.len() - 1
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// The system parameters.
    #[must_use]
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The metrics accumulated since the last reset.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The live load table.
    #[must_use]
    pub fn load(&self) -> &LoadTable {
        &self.load
    }

    /// The sites (for station-level statistics).
    #[must_use]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The token ring (for subnet statistics).
    #[must_use]
    pub fn ring(&self) -> &TokenRing<RingMsg> {
        &self.ring
    }

    /// The allocation policy's display name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.allocator.name()
    }

    /// The relation catalog in force.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of queries currently in flight (allocated or in transit).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queries.len()
    }

    /// Mean CPU utilization across sites, through `now` (the `ρ_c` of the
    /// paper's tables).
    #[must_use]
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.sites
            .iter()
            .map(|s| s.cpu.utilization(now))
            .sum::<f64>()
            / self.sites.len() as f64
    }

    /// Mean per-disk utilization across sites, through `now` (`ρ_d`).
    #[must_use]
    pub fn disk_utilization(&self, now: SimTime) -> f64 {
        self.sites
            .iter()
            .map(|s| s.disk_utilization(now))
            .sum::<f64>()
            / self.sites.len() as f64
    }

    /// Subnet (token-ring) utilization through `now`.
    #[must_use]
    pub fn subnet_utilization(&self, now: SimTime) -> f64 {
        self.ring.utilization(now)
    }

    /// Verifies the closed-model invariant: every one of the
    /// `mpl × num_sites` terminals is either thinking or has exactly one
    /// query in flight, and the load table agrees with the query states.
    ///
    /// # Panics
    ///
    /// Panics (with a diagnostic) if the invariant is violated; meant for
    /// tests and debug assertions.
    pub fn check_invariants(&self) {
        if matches!(self.params.workload, Workload::Closed) {
            let terminals = self.params.mpl as usize * self.params.num_sites;
            let terminal_queries = self
                .queries
                .values()
                .filter(|q| q.kind != QueryKind::Propagation)
                .count();
            assert!(
                terminal_queries <= terminals,
                "{terminal_queries} terminal queries in flight but only {terminals} terminals"
            );
        }
        // Load table counts = queries allocated and not yet finished
        // (phases Transfer, Disk, Cpu). Returning and backed-off queries
        // hold no load-table slot.
        let executing = self
            .queries
            .values()
            .filter(|q| !matches!(q.phase, QueryPhase::Return | QueryPhase::Backoff))
            .count() as u32;
        assert_eq!(
            self.load.total_in_system(),
            executing,
            "load table disagrees with in-flight query phases"
        );
        // Station residents are exactly the queries in Disk/Cpu phases.
        let at_stations: usize = self.sites.iter().map(Site::resident_queries).sum();
        let disk_or_cpu = self
            .queries
            .values()
            .filter(|q| matches!(q.phase, QueryPhase::Disk | QueryPhase::Cpu))
            .count();
        assert_eq!(at_stations, disk_or_cpu, "station residency mismatch");
    }

    /// Discards the warmup transient: restarts every statistic at `now`
    /// while leaving the system state (queries, queues, ring) untouched.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.metrics.reset(now);
        self.metrics
            .record_query_difference(now, self.load.query_difference());
        for s in &mut self.sites {
            s.reset_stats(now);
        }
        self.ring.reset_stats(now);
    }
}

impl Model for DbSystem {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::Submit { site } => self.handle_submit(now, site, sched),
            Event::DiskDone { site, disk, epoch } => {
                self.handle_disk_done(now, site, disk, epoch, sched);
            }
            Event::CpuDone { site, token } => self.handle_cpu_done(now, site, token, sched),
            Event::NetDone => self.handle_net_done(now, sched),
            Event::StatusExchange => {
                // A dropout models a failed exchange round: every site
                // keeps its stale rows until the next period.
                let dropped = match &mut self.fault {
                    Some(f) if f.spec.status_loss > 0.0 => {
                        f.rng_status.bernoulli(f.spec.status_loss)
                    }
                    _ => false,
                };
                if !dropped {
                    self.load.publish();
                    // The free exchange also refreshes every backpressure
                    // bit (there are no per-site frames to carry them).
                    if self.params.admission.is_some_and(|a| a.is_active()) {
                        for site in 0..self.params.num_sites {
                            let full = self.site_is_full(site);
                            self.load.set_full(site, full);
                        }
                    }
                }
                sched.after(self.params.status_period, Event::StatusExchange);
            }
            Event::StatusSend { site } => {
                let dropped = match &mut self.fault {
                    Some(f) if f.spec.status_loss > 0.0 => {
                        f.rng_status.bernoulli(f.spec.status_loss)
                    }
                    _ => false,
                };
                // A down site broadcasts nothing, but its schedule
                // survives the outage.
                if self.sites[site].is_up() && !dropped {
                    // The broadcaster also audits its peers: anyone whose
                    // broadcast it has missed too long becomes suspected.
                    self.sweep_suspicion(now, site);
                    let msg = RingMsg::Status {
                        site,
                        load: self.load.live(site),
                        full: self.site_is_full(site),
                    };
                    if let Some(done) =
                        self.ring
                            .send(now, site, msg, self.params.status_msg_length)
                    {
                        sched.at(done, Event::NetDone);
                    }
                }
                sched.after(self.params.status_period, Event::StatusSend { site });
            }
            Event::SiteDown { site } => self.handle_site_down(now, site, sched),
            Event::SiteUp { site } => self.handle_site_up(now, site, sched),
            Event::MsgLost { msg } => self.handle_msg_lost(now, msg, sched),
            Event::Resubmit { query } => self.handle_resubmit(now, query, sched),
            Event::DeadlineExpire { query, epoch } => {
                self.handle_deadline_expire(now, query, epoch, sched);
            }
            Event::PartitionStart => {
                self.fault
                    .as_mut()
                    .expect("fault layer active")
                    .partition_active = true;
            }
            Event::PartitionHeal => {
                self.fault
                    .as_mut()
                    .expect("fault layer active")
                    .partition_active = false;
            }
            Event::Script { index } => self.handle_script(now, index, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SystemParams {
        SystemParams::builder()
            .num_sites(3)
            .mpl(4)
            .think_time(100.0)
            .build()
            .unwrap()
    }

    fn run_system(policy: PolicyKind, seed: u64, until: f64) -> Engine<DbSystem> {
        let sys = DbSystem::new(small_params(), policy, seed).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(until));
        engine
    }

    #[test]
    fn queries_complete_under_every_policy() {
        for policy in [
            PolicyKind::Local,
            PolicyKind::Bnq,
            PolicyKind::Bnqrd,
            PolicyKind::Lert,
            PolicyKind::Random,
            PolicyKind::Threshold(2),
            PolicyKind::LertNoNet,
        ] {
            let engine = run_system(policy, 11, 3_000.0);
            let m = engine.model().metrics();
            assert!(
                m.completed() > 50,
                "{policy:?} completed only {}",
                m.completed()
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let a = run_system(PolicyKind::Lert, 5, 2_000.0);
        let b = run_system(PolicyKind::Lert, 5, 2_000.0);
        assert_eq!(
            a.model().metrics().completed(),
            b.model().metrics().completed()
        );
        assert_eq!(
            a.model().metrics().mean_waiting(),
            b.model().metrics().mean_waiting()
        );
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_system(PolicyKind::Lert, 5, 2_000.0);
        let b = run_system(PolicyKind::Lert, 6, 2_000.0);
        assert_ne!(
            a.model().metrics().mean_waiting(),
            b.model().metrics().mean_waiting()
        );
    }

    #[test]
    fn invariants_hold_throughout_a_run() {
        let sys = DbSystem::new(small_params(), PolicyKind::Bnqrd, 3).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        for k in 1..=60 {
            engine.run_until(SimTime::new(f64::from(k) * 50.0));
            engine.model().check_invariants();
        }
    }

    #[test]
    fn local_policy_never_uses_the_ring() {
        let engine = run_system(PolicyKind::Local, 1, 3_000.0);
        assert_eq!(engine.model().ring().messages_sent(), 0);
        assert_eq!(engine.model().metrics().transfers(), 0);
        assert_eq!(engine.model().subnet_utilization(engine.now()), 0.0);
    }

    #[test]
    fn dynamic_policies_do_transfer() {
        let engine = run_system(PolicyKind::Bnq, 1, 3_000.0);
        assert!(engine.model().metrics().transfers() > 0);
        assert!(engine.model().ring().messages_sent() > 0);
    }

    #[test]
    fn utilizations_are_fractions() {
        let engine = run_system(PolicyKind::Lert, 9, 3_000.0);
        let now = engine.now();
        let m = engine.model();
        for u in [
            m.cpu_utilization(now),
            m.disk_utilization(now),
            m.subnet_utilization(now),
        ] {
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        }
        assert!(m.cpu_utilization(now) > 0.0);
    }

    #[test]
    fn reset_stats_preserves_state_but_clears_metrics() {
        let mut engine = run_system(PolicyKind::Bnq, 2, 2_000.0);
        let in_flight = engine.model().in_flight();
        let now = engine.now();
        engine.model_mut().reset_stats(now);
        assert_eq!(engine.model().metrics().completed(), 0);
        assert_eq!(engine.model().in_flight(), in_flight);
        engine.model().check_invariants();
        // and the system keeps running fine afterwards
        engine.run_until(SimTime::new(4_000.0));
        assert!(engine.model().metrics().completed() > 0);
    }

    #[test]
    fn status_exchange_publishes_periodically() {
        let params = SystemParams::builder()
            .num_sites(2)
            .mpl(3)
            .think_time(50.0)
            .status_period(25.0)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Bnq, 4).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(2_000.0));
        // The system still works with stale information.
        assert!(engine.model().metrics().completed() > 10);
        engine.model().check_invariants();
    }

    #[test]
    fn single_site_system_degenerates_to_local() {
        let params = SystemParams::builder()
            .num_sites(1)
            .mpl(5)
            .think_time(100.0)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 8).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(2_000.0));
        assert_eq!(engine.model().metrics().transfers(), 0);
        assert!(engine.model().metrics().completed() > 0);
    }

    #[test]
    fn open_workload_arrivals_match_the_rate() {
        use crate::params::Workload;
        let rate = 0.02; // per site, well below capacity
        let params = SystemParams::builder()
            .num_sites(4)
            .workload(Workload::Open { arrival_rate: rate })
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 81).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        let horizon = 50_000.0;
        engine.run_until(SimTime::new(horizon));
        engine.model().check_invariants();
        let m = engine.model().metrics();
        // Stable: completions track offered arrivals (4 sites x rate).
        let expected = 4.0 * rate * horizon;
        let got = m.completed() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "completions {got} vs offered {expected}"
        );
        // Utilization-law sanity: rho_cpu = lambda_site * mean CPU demand.
        let rho = engine.model().cpu_utilization(engine.now());
        let demand = 20.0 * 0.525; // mean reads x mean page CPU
        assert!(
            (rho - rate * demand).abs() < 0.02,
            "rho {rho} vs lambda*D {}",
            rate * demand
        );
    }

    #[test]
    fn open_workload_detects_overload() {
        use crate::params::Workload;
        // Per-site capacity: CPU demand 10.5/query -> ~0.095 queries/unit.
        // Offer 0.15: the backlog must grow without bound.
        let params = SystemParams::builder()
            .num_sites(2)
            .workload(Workload::Open { arrival_rate: 0.15 })
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Local, 82).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(5_000.0));
        let mid = engine.model().in_flight();
        engine.run_until(SimTime::new(10_000.0));
        let late = engine.model().in_flight();
        assert!(
            late > mid && late > 50,
            "overloaded system should accumulate queries: {mid} -> {late}"
        );
    }

    #[test]
    fn updates_propagate_to_every_replica() {
        let params = SystemParams::builder()
            .num_sites(4)
            .mpl(4)
            .think_time(150.0)
            .update_fraction(0.5)
            .propagation_factor(0.25)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 71).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        for k in 1..=8 {
            engine.run_until(SimTime::new(f64::from(k) * 500.0));
            engine.model().check_invariants();
        }
        let m = engine.model().metrics();
        assert!(m.completed() > 100);
        // Full replication, 4 sites: each update spawns 3 apply jobs, and
        // roughly half the queries are updates.
        let per_completion = m.propagations() as f64 / m.completed() as f64;
        assert!(
            (1.0..2.0).contains(&per_completion),
            "expected ~1.5 propagations per completion, got {per_completion}"
        );
    }

    #[test]
    fn read_only_workload_never_propagates() {
        let engine = run_system(PolicyKind::Bnq, 14, 2_000.0);
        assert_eq!(engine.model().metrics().propagations(), 0);
    }

    #[test]
    fn zero_propagation_factor_disables_apply_jobs() {
        let params = SystemParams::builder()
            .num_sites(3)
            .mpl(4)
            .think_time(100.0)
            .update_fraction(0.5)
            .propagation_factor(0.0)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Bnq, 72).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(2_000.0));
        assert_eq!(engine.model().metrics().propagations(), 0);
        assert!(engine.model().metrics().completed() > 50);
    }

    #[test]
    fn heterogeneous_cpu_speeds_shift_work_under_lert() {
        // One fast site, two slow ones: LERT should route CPU-heavy work
        // toward the fast CPU, so its utilization-weighted share of
        // completions exceeds 1/3.
        let params = SystemParams::builder()
            .num_sites(3)
            .mpl(6)
            .think_time(80.0)
            .cpu_speeds(Some(vec![3.0, 0.75, 0.75]))
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 61).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(8_000.0));
        let now = engine.now();
        let m = engine.model();
        m.check_invariants();
        assert!(m.metrics().completed() > 200);
        // The fast site's CPU serves more *work* per unit busy time; LERT
        // keeps it busier with CPU-bound queries than the slow sites.
        let fast_load = m.sites()[0].cpu.total_service();
        let slow_load = m.sites()[1].cpu.total_service();
        let _ = now;
        assert!(
            fast_load < slow_load * 4.0,
            "sanity: work still spread across sites"
        );
    }

    #[test]
    fn cpu_speed_validation() {
        let wrong_len = SystemParams::builder()
            .num_sites(3)
            .cpu_speeds(Some(vec![1.0, 2.0]))
            .build();
        assert!(wrong_len.is_err());
        let negative = SystemParams::builder()
            .num_sites(2)
            .cpu_speeds(Some(vec![1.0, -1.0]))
            .build();
        assert!(negative.is_err());
    }

    #[test]
    fn migration_moves_queries_and_preserves_invariants() {
        use crate::params::MigrationSpec;
        let params = SystemParams::builder()
            .num_sites(4)
            .mpl(6)
            .think_time(80.0)
            .migration(Some(MigrationSpec {
                check_every_reads: 4,
                min_gain: 1.0,
                state_growth: 0.25,
            }))
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 31).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        for k in 1..=10 {
            engine.run_until(SimTime::new(f64::from(k) * 400.0));
            engine.model().check_invariants();
        }
        let m = engine.model().metrics();
        assert!(m.completed() > 100);
        assert!(
            m.migrations() > 0,
            "a loaded LERT system should find profitable migrations"
        );
    }

    #[test]
    fn huge_min_gain_disables_migration() {
        use crate::params::MigrationSpec;
        let params = SystemParams::builder()
            .num_sites(3)
            .mpl(5)
            .think_time(80.0)
            .migration(Some(MigrationSpec {
                check_every_reads: 1,
                min_gain: 1e9,
                state_growth: 0.0,
            }))
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 32).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(2_000.0));
        assert_eq!(engine.model().metrics().migrations(), 0);
    }

    #[test]
    fn costed_status_broadcasts_ride_the_ring() {
        let params = SystemParams::builder()
            .num_sites(3)
            .mpl(4)
            .think_time(100.0)
            .status_period(20.0)
            .status_msg_length(0.5)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Bnq, 6).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(2_000.0));
        let m = engine.model();
        // 3 sites x (2000 / 20) periods of broadcasts plus query traffic.
        let status_msgs = 3 * (2_000.0_f64 / 20.0) as u64;
        assert!(
            m.ring().messages_sent() > status_msgs,
            "ring carried {} messages, expected > {status_msgs} including broadcasts",
            m.ring().messages_sent()
        );
        assert!(m.metrics().completed() > 50);
        m.check_invariants();
    }

    #[test]
    fn own_site_load_is_always_live() {
        // Even with an infinite exchange period (nothing ever published),
        // the THRESHOLD policy still reacts to its own site's load — a
        // site knows itself.
        let params = SystemParams::builder()
            .num_sites(2)
            .mpl(6)
            .think_time(40.0)
            .status_period(1e6)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Threshold(0), 9).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(3_000.0));
        // Threshold 0 transfers whenever the local site is non-empty,
        // which requires seeing the local live count.
        assert!(engine.model().metrics().transfers() > 0);
    }

    #[test]
    fn partial_replication_respects_the_catalog() {
        // Single-copy catalog: every query must execute at its relation's
        // only holder, so LOCAL-at-arrival is impossible for most queries
        // and transfers are forced.
        let params = SystemParams::builder()
            .num_sites(4)
            .mpl(4)
            .think_time(80.0)
            .num_relations(8)
            .copies(Some(1))
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Lert, 21).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(3_000.0));
        let m = engine.model();
        assert!(m.metrics().completed() > 50);
        // With 4 sites and uniform relations, ~3/4 of queries are remote.
        let frac = m.metrics().transfer_fraction();
        assert!(
            (0.55..0.95).contains(&frac),
            "transfer fraction {frac} inconsistent with single-copy placement"
        );
        m.check_invariants();
    }

    #[test]
    fn full_replication_is_the_default_catalog() {
        let sys = DbSystem::new(small_params(), PolicyKind::Bnq, 1).unwrap();
        assert_eq!(sys.catalog().candidates(0).len(), 3);
    }

    #[test]
    fn local_policy_with_partial_replication_uses_primaries() {
        // LOCAL + single copy = the static-materialization strawman: each
        // relation's primary does all its work, wherever queries arrive.
        let params = SystemParams::builder()
            .num_sites(3)
            .mpl(3)
            .think_time(80.0)
            .num_relations(3)
            .copies(Some(1))
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Local, 2).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(2_000.0));
        // Queries do complete, and remote executions happen (ring in use).
        assert!(engine.model().metrics().completed() > 20);
        assert!(engine.model().metrics().transfers() > 0);
        engine.model().check_invariants();
    }

    #[test]
    fn class_mix_matches_probabilities() {
        let params = SystemParams::builder()
            .num_sites(2)
            .mpl(10)
            .think_time(20.0)
            .class_io_prob(0.3)
            .build()
            .unwrap();
        let sys = DbSystem::new(params, PolicyKind::Local, 13).unwrap();
        let mut engine = Engine::new(sys);
        DbSystem::prime(&mut engine);
        engine.run_until(SimTime::new(20_000.0));
        let m = engine.model().metrics();
        let io = m.class(0).waiting.count() as f64;
        let cpu = m.class(1).waiting.count() as f64;
        let frac = io / (io + cpu);
        assert!((frac - 0.3).abs() < 0.05, "I/O fraction {frac}");
    }
}
